"""Summary statistics for realized migration traffic (Table 1, Fig 7)."""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..errors import SchedulingError

#: The key contract every result ``summary_dict()`` follows —
#: :meth:`repro.cluster.SimulationResult.summary_dict`,
#: :meth:`repro.sim.DetailedResult.summary_dict`, and
#: :meth:`repro.sim.ExecutionResult.summary_dict` all return these
#: top-level keys (plus class-specific extras), and every entry of
#: their ``"sites"`` mapping carries at least the per-site keys.  All
#: traffic values are GB; ``peak_step_gb`` is the largest single-step
#: total.  Consumers (manifests, reports, notebooks) can aggregate any
#: result class through this shared schema.
#:
#: Sites that ran behind a non-empty supply stack additionally carry a
#: ``"supply"`` block (``per_site_supply`` keys, all MWh) with the
#: stack's energy accounting from
#: :meth:`repro.supply.SupplyEvaluation.summary`; raw-trace sites omit
#: the block entirely, keeping legacy summaries byte-identical.
SUMMARY_SCHEMA = {
    "top_level": (
        "total_transfer_gb",
        "out_gb",
        "in_gb",
        "peak_step_gb",
        "sites",
    ),
    "per_site": ("out_gb", "in_gb"),
    "per_site_supply": (
        "charge_mwh",
        "discharge_mwh",
        "grid_import_mwh",
        "curtailed_mwh",
        "final_soc_mwh",
        "cost_usd",
        "carbon_kg",
    ),
}


@dataclass(frozen=True)
class TransferSummary:
    """Table 1's row for one policy.

    All values in GB over per-step total transfer (out + in, summed
    across sites), matching the paper's reporting.

    Attributes:
        policy: Policy label, e.g. ``"Greedy"`` or ``"MIP-peak"``.
        total_gb: Sum over the horizon.
        p99_gb: 99th percentile of per-step transfer.
        peak_gb: Maximum per-step transfer.
        std_gb: Standard deviation of per-step transfer.
        zero_fraction: Share of steps with no transfer (Fig 7's CDF
            left edge: greedy ~81%, MIP ~94%, MIP-peak ~74%).
        cost_usd: Grid purchase cost the policy's run accrued, summed
            across sites (0 when the run had no priced grid).
        carbon_kg: Grid purchase emissions, idem.
    """

    policy: str
    total_gb: float
    p99_gb: float
    peak_gb: float
    std_gb: float
    zero_fraction: float
    cost_usd: float = 0.0
    carbon_kg: float = 0.0


def summarize_transfers(
    policy: str,
    transfer_bytes: np.ndarray,
    cost_usd: float = 0.0,
    carbon_kg: float = 0.0,
) -> TransferSummary:
    """Build a :class:`TransferSummary` from a per-step byte series.

    ``cost_usd`` / ``carbon_kg`` attach the run's grid-purchase ledger
    (summed across sites) so the Table-1 comparison can rank policies
    on money and emissions next to traffic.
    """
    transfer_bytes = np.asarray(transfer_bytes, dtype=float)
    if transfer_bytes.ndim != 1 or len(transfer_bytes) == 0:
        raise SchedulingError(
            f"transfer series must be 1-D non-empty, got shape"
            f" {transfer_bytes.shape}"
        )
    gb = transfer_bytes / 1e9
    return TransferSummary(
        policy=policy,
        total_gb=float(gb.sum()),
        p99_gb=float(np.percentile(gb, 99)),
        peak_gb=float(gb.max()),
        std_gb=float(gb.std()),
        zero_fraction=float(np.mean(gb <= 1e-12)),
        cost_usd=float(cost_usd),
        carbon_kg=float(carbon_kg),
    )


@dataclass
class PolicyComparison:
    """A set of policy summaries with the paper's headline ratios."""

    summaries: list[TransferSummary]

    def by_policy(self, policy: str) -> TransferSummary:
        """Summary for one named policy."""
        for summary in self.summaries:
            if summary.policy == policy:
                return summary
        raise KeyError(f"no summary for policy {policy!r}")

    def improvement_total(self, better: str, baseline: str) -> float:
        """Fractional total-overhead reduction of ``better`` vs baseline.

        The paper reports MIP improving total overhead by >30% over
        greedy: ``1 - total(MIP) / total(greedy)``.
        """
        base = self.by_policy(baseline).total_gb
        if base <= 0:
            return 0.0
        return 1.0 - self.by_policy(better).total_gb / base

    def improvement_p99(self, better: str, baseline: str) -> float:
        """p99 ratio baseline/better (paper: MIP-peak >4.2x vs greedy)."""
        improved = self.by_policy(better).p99_gb
        if improved <= 0:
            return float("inf")
        return self.by_policy(baseline).p99_gb / improved

    def improvement_std(self, better: str, baseline: str) -> float:
        """Std ratio baseline/better (paper: MIP-peak 2.7x less bursty)."""
        improved = self.by_policy(better).std_gb
        if improved <= 0:
            return float("inf")
        return self.by_policy(baseline).std_gb / improved

    def summary_dict(self) -> dict[str, dict]:
        """Policy name → summary fields (used by the run manifest)."""
        return {s.policy: asdict(s) for s in self.summaries}

    def as_table(self) -> str:
        """Fixed-width text rendition of Table 1.

        The cost/carbon columns render only when some policy accrued a
        grid-purchase ledger, so flat-budget runs keep the classic
        five-column table.
        """
        priced = any(s.cost_usd or s.carbon_kg for s in self.summaries)
        header = (
            f"{'Policy':<10} {'Total':>12} {'99%ile':>10} {'Peak':>10}"
            f" {'Std':>10} {'Zero%':>7}"
        )
        if priced:
            header += f" {'Cost$':>12} {'CO2kg':>12}"
        lines = [header, "-" * len(header)]
        for s in self.summaries:
            line = (
                f"{s.policy:<10} {s.total_gb:>12,.0f} {s.p99_gb:>10,.0f}"
                f" {s.peak_gb:>10,.0f} {s.std_gb:>10,.0f}"
                f" {100 * s.zero_fraction:>6.1f}%"
            )
            if priced:
                line += f" {s.cost_usd:>12,.2f} {s.carbon_kg:>12,.1f}"
            lines.append(line)
        return "\n".join(lines)
