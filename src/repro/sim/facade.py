"""One front door for every simulation engine: :func:`simulate`.

The repo grew three ways to run the same physics — single-site
:meth:`~repro.cluster.Datacenter.run`, the columnar cross-site
:class:`~repro.sim.fleet.FleetEngine`, and the placement-replay
``execute_placement_detailed`` — each with its own calling convention.
:func:`simulate` routes by the shape of its first argument(s) so
callers say *what* to simulate and the facade picks the engine:

=============================================  =========================
Input shape                                    Engine
=============================================  =========================
``simulate(datacenter, requests)``             ``Datacenter.run``
``simulate(fleet_site)``                       ``FleetEngine`` (1 site)
``simulate([fleet_site, ...])``                ``FleetEngine``
``simulate(problem, placement, traces)``       detailed placement replay
=============================================  =========================

All routes produce the engines' existing result types unchanged (the
golden equivalence guarantees are between engines, not calling
conventions), so migrating a call site is a pure rename.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cluster import Datacenter, SimulationResult
from ..errors import ConfigurationError
from ..sched import Placement, SchedulingProblem
from .detailed import DetailedResult, _execute_placement_detailed
from .fleet import FleetEngine, FleetSite

__all__ = ["simulate"]


def simulate(
    target,
    *args,
    engine: str = "event",
    record_events: bool = True,
    **kwargs,
) -> SimulationResult | dict[str, SimulationResult] | DetailedResult:
    """Run a simulation, routing to the right engine by input shape.

    Args:
        target: What to simulate — a :class:`~repro.cluster.Datacenter`
            (pass the VM requests as the second argument), a single
            :class:`FleetSite`, a sequence of them, or a
            :class:`~repro.sched.SchedulingProblem` (pass the
            :class:`~repro.sched.Placement` and the actual traces as
            the second and third arguments).
        engine: Engine variant where the route supports one
            (``"event"`` / ``"dense"`` / ``"soa"`` for datacenters;
            ``"event"`` / ``"dense"`` for placement replay; fleet runs
            are inherently columnar and ignore it).
        record_events: Keep per-VM event logs on fleet runs (single
            datacenters record events per their own construction flag).
        **kwargs: Route-specific options passed through (for placement
            replay: ``cluster``, ``eviction_order``, ``supply``,
            ``supply_mode``).

    Returns:
        The routed engine's native result: a
        :class:`~repro.cluster.SimulationResult` for a datacenter or a
        single fleet site, a ``{site name: SimulationResult}`` dict for
        a fleet, a :class:`DetailedResult` for placement replay.
    """
    if isinstance(target, Datacenter):
        if len(args) != 1:
            raise ConfigurationError(
                "simulate(datacenter, requests) takes exactly the"
                " request list"
            )
        return target.run(args[0], engine=engine, **kwargs)
    if isinstance(target, FleetSite):
        if args:
            raise ConfigurationError(
                "simulate(fleet_site) takes no extra positional"
                " arguments — requests live on the FleetSite"
            )
        results = FleetEngine(
            [target], record_events=record_events
        ).run()
        return results[target.name]
    if isinstance(target, SchedulingProblem):
        if len(args) != 2:
            raise ConfigurationError(
                "simulate(problem, placement, actual_traces) takes"
                " exactly the placement and the actual traces"
            )
        placement, actual_traces = args
        if not isinstance(placement, Placement) or not isinstance(
            actual_traces, Mapping
        ):
            raise ConfigurationError(
                "simulate(problem, ...) expects (Placement,"
                " {site: PowerTrace})"
            )
        return _execute_placement_detailed(
            target, placement, actual_traces, engine=engine, **kwargs
        )
    if isinstance(target, Sequence) and not isinstance(
        target, (str, bytes)
    ):
        sites = list(target)
        if sites and all(isinstance(s, FleetSite) for s in sites):
            if args:
                raise ConfigurationError(
                    "simulate([sites...]) takes no extra positional"
                    " arguments"
                )
            return FleetEngine(
                sites, record_events=record_events
            ).run()
    raise ConfigurationError(
        "simulate() cannot route input of type"
        f" {type(target).__name__!r}; expected a Datacenter, FleetSite,"
        " sequence of FleetSite, or SchedulingProblem"
    )
