"""Batched cross-site fleet engine: one columnar program, many sites.

The paper's §2.3 catalog analysis aggregates hundreds of EU wind/solar
sites; simulating them one :meth:`~repro.cluster.datacenter.Datacenter.run`
at a time leaves every fixed cost — column allocation, event-log
appends, per-site observability spans, window-scan dispatch — multiplied
by the fleet size.  :class:`FleetEngine` advances **all sites through
one program**:

* **Site-major matrices.**  Open-loop sites stack their precomputed
  core-budget series into one ``(n_sites, n_steps)`` ``int64`` array,
  and every per-step measurement column (running cores, queue length,
  power, migration bytes, …) is carved as a row view out of one shared
  site-major matrix per column (:meth:`StepColumns.from_views`) — the
  fleet's state lives in a handful of 2D arrays, not thousands of
  per-site allocations.  The budget-threshold wake scan — the event
  engine's "when can this site's state change because of power?"
  question — runs as one vectorized 2D comparison per block across
  every live site, instead of one 1D scan per site per window.

* **Shared wake heap keyed ``(step, site)``.**  Each site keeps at most
  one live entry: the earliest of its next arrival, VM finish, queue
  expiry, or budget-threshold crossing.  The engine pops wakes in
  global time order; because sites are mutually independent within a
  block, a popped site drains its whole chain of in-block wakes in one
  tight inlined loop (locals hoisted, no re-push per wake) before the
  next site is popped.

* **Block synchronization.**  The 2D crossing scans cover blocks of
  ``block_steps`` grid steps; a site that processes a wake rescans only
  its own remaining block row (1D) under its updated thresholds, and
  sites untouched by a block cost one row of the shared comparison.

* **Lazy forward-fill.**  Skipped steps carry the running / allocated /
  queue-length state of the last processed step.  Per-site processed
  step lists let the finalizer reconstruct every skipped span with one
  ``np.repeat`` per column instead of one slice write per window.

Each site is an ordinary :class:`Datacenter` advanced through the
engine-state protocol (:meth:`Datacenter.prepare_run` /
:meth:`Datacenter.process_wake` / :meth:`Datacenter.finish_run`), so
the fleet path shares every line of phase logic with the per-site
engines — the golden tests pin fleet output bit-identical (records and
summaries) to N independent ``Datacenter.run`` calls.

Closed-loop supply sites (stateful :class:`SupplyStack` dispatched
against live demand) cannot share the budget matrix — their budgets
depend on each site's own demand trajectory — so the engine routes them
through the skip-ahead closed-loop event engine per site, inside the
same fleet run.

By default fleet sites skip the per-VM event log
(``record_events=False``): at 500 sites × 1 year the audit trail is
pure overhead.  Pass ``record_events=True`` to keep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from .. import obs
from ..cluster.datacenter import (
    Datacenter,
    DatacenterConfig,
    EngineState,
    SimulationResult,
    StepColumns,
)
from ..errors import ConfigurationError
from ..supply import SupplyStack
from ..traces import PowerTrace
from ..workload import VMRequest

# Sentinels for the vectorized threshold scan: budgets are int64, so a
# lower bound below any budget / an upper bound above any budget turn
# the corresponding comparison off without branching.
_NO_LOWER = -(2**62)
_NO_UPPER = 2**62


def crossing_scan(
    window: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> int | None:
    """First column of ``window`` where any row crosses its thresholds.

    The fleet engine's budget-threshold question as a standalone
    helper: row ``i`` crosses at column ``j`` when
    ``window[i, j] < lower[i]`` (a budget drop that forces evictions)
    or ``window[i, j] >= upper[i]`` (a rise that can resume or launch
    work).  Disable a bound with :data:`_NO_LOWER` / :data:`_NO_UPPER`.
    Returns the first crossing column index, or ``None`` when no step
    in the window crosses — shared with the detailed multi-site
    executor's event engine, whose sites wake together.
    """
    if window.shape[1] == 0:
        return None
    mask = (window < lower[:, None]) | (window >= upper[:, None])
    flat = mask.any(axis=0)
    hit = int(flat.argmax())
    return hit if flat[hit] else None


@dataclass(frozen=True)
class FleetSite:
    """One site of a fleet run.

    Attributes:
        name: Site label (keys the result mapping).
        config: Datacenter configuration.
        trace: Power trace driving the site.
        requests: VM arrivals to replay at the site.
        supply: Optional supply stack composed over the trace.
        supply_mode: ``"open"`` (precomputed delivery) or ``"closed"``
            (per-step dispatch against live demand).
    """

    name: str
    config: DatacenterConfig
    trace: PowerTrace
    requests: Sequence[VMRequest]
    supply: SupplyStack | None = None
    supply_mode: str = "open"


@dataclass(slots=True)
class _SiteRun:
    """Engine-internal per-site bookkeeping."""

    index: int
    site: FleetSite
    datacenter: Datacenter
    state: EngineState
    processed_steps: list[int] = field(default_factory=list)
    # Threshold bounds under which the current budget row scan is
    # valid; refreshed after every processed wake chain.
    lower: int = _NO_LOWER
    upper: int = _NO_UPPER


class FleetEngine:
    """Advance many datacenter sites through one columnar program.

    Args:
        sites: Fleet members; traces may differ in length (sites are
            grouped by grid length for the shared budget matrix).
        record_events: Keep each site's per-VM event log.  Off by
            default — fleet runs record per-step columns only.
        block_steps: Grid steps covered by each shared crossing scan.
    """

    def __init__(
        self,
        sites: Sequence[FleetSite],
        *,
        record_events: bool = False,
        block_steps: int = 4096,
    ):
        if not sites:
            raise ConfigurationError("fleet needs at least one site")
        if block_steps <= 0:
            raise ConfigurationError(
                f"block size must be positive: {block_steps}"
            )
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate site names: {names}")
        self.sites = tuple(sites)
        self.record_events = record_events
        self.block_steps = block_steps

    # ------------------------------------------------------------------

    def run(self) -> dict[str, SimulationResult]:
        """Execute every site; returns results keyed by site name.

        Result-identical to running each site's :meth:`Datacenter.run`
        with ``engine="event"`` independently (records, summaries, and
        supply telemetry — golden-tested).
        """
        datacenters = [
            Datacenter(
                site.config,
                site.trace,
                supply=site.supply,
                supply_mode=site.supply_mode,
                record_events=self.record_events,
            )
            for site in self.sites
        ]
        # Open-loop sites grouped by grid length share one site-major
        # matrix per measurement column; each site's StepColumns are
        # row views into those matrices (the fleet's columnar state).
        members_by_length: dict[int, list[int]] = {}
        for i, dc in enumerate(datacenters):
            if not dc.closed_loop:
                members_by_length.setdefault(
                    dc.power_trace.grid.n, []
                ).append(i)
        cols_by_site: dict[int, StepColumns] = {}
        for n, members in members_by_length.items():
            matrices = {
                name: np.zeros(
                    (len(members), n),
                    dtype=(
                        float
                        if name in StepColumns.FLOAT_COLUMNS
                        else np.int64
                    ),
                )
                for name in StepColumns.__slots__[1:]
            }
            for row, i in enumerate(members):
                cols_by_site[i] = StepColumns.from_views(
                    n, {name: mat[row] for name, mat in matrices.items()}
                )
        runs = [
            _SiteRun(
                i, site, dc,
                dc.prepare_run(site.requests, cols_by_site.get(i)),
            )
            for i, (site, dc) in enumerate(zip(self.sites, datacenters))
        ]
        n_steps = max(r.state.n for r in runs)
        with obs.span(
            "fleet.run", n_sites=len(runs), n_steps=n_steps
        ):
            open_loop = [r for r in runs if not r.state.closed]
            closed = [r for r in runs if r.state.closed]
            # Closed-loop sites dispatch against their own live demand;
            # their budgets cannot enter the shared matrix.  They run
            # through the skip-ahead closed-loop event engine instead.
            for run in closed:
                run.state.processed = run.datacenter._run_closed_event(
                    run.state.n,
                    run.state.arrivals_by_step,
                    run.state.cols,
                    run.state.dispatcher,
                )
            # Open-loop sites share one columnar program per grid
            # length (budget rows must be the same width to stack).
            by_length: dict[int, list[_SiteRun]] = {}
            for run in open_loop:
                by_length.setdefault(run.state.n, []).append(run)
            for n, group in sorted(by_length.items()):
                self._run_group(n, group)
            results = {}
            for run in runs:
                if not run.state.closed:
                    run.state.processed = len(run.processed_steps)
                results[run.site.name] = run.datacenter.finish_run(
                    run.state, engine="fleet"
                )
        return results

    # ------------------------------------------------------------------

    def _run_group(self, n: int, group: list[_SiteRun]) -> None:
        """The columnar program over one same-length site group."""
        if n == 0:
            return
        budgets = np.vstack([r.state.budgets for r in group])
        heap: list[tuple[int, int]] = []  # (step, group index)
        live = list(range(len(group)))
        block = self.block_steps
        b0 = 0
        while b0 < n and live:
            b1 = min(b0 + block, n)
            # One 2D threshold scan covers every live site's block row:
            # a budget below ``lower`` forces evictions, one at/above
            # ``upper`` can resume or launch — exactly the per-site
            # event engine's window scan, batched.
            idx = np.array(live)
            window = budgets[idx, b0:b1]
            lower = np.array([group[g].lower for g in live])
            upper = np.array([group[g].upper for g in live])
            mask = (window < lower[:, None]) | (window >= upper[:, None])
            hits = mask.argmax(axis=1)
            hit_valid = mask[np.arange(len(live)), hits]
            survivors = []
            for row, g in enumerate(live):
                run = group[g]
                wake = run.datacenter.next_event_step(run.state)
                if hit_valid[row]:
                    crossing = b0 + int(hits[row])
                    if crossing < wake:
                        wake = crossing
                if wake < b1:
                    heappush(heap, (wake, g))
                    survivors.append(g)
                elif wake < n or run.upper != _NO_UPPER or (
                    run.lower != _NO_LOWER
                ):
                    # An event or a possible crossing remains ahead;
                    # re-examine at the next block.
                    survivors.append(g)
                # else: drained site — no events, no queue, no paused
                # work, nothing running.  Its remaining steps are one
                # forward-fill at finalize.
            live = survivors
            # Pop wakes in global time order.  Sites are mutually
            # independent, so a popped site drains its entire chain of
            # in-block wakes in one tight loop — the engine-state
            # protocol (process_wake / wake_bounds / next_event_step)
            # inlined with its locals hoisted; each site costs one heap
            # pop per block instead of one push+pop per wake.
            while heap:
                step, g = heappop(heap)
                run = group[g]
                dc = run.datacenter
                state = run.state
                step_fn = dc._step
                cols = state.cols
                arrivals_by_step = state.arrivals_by_step
                arrival_steps = state.arrival_steps
                n_arrivals = len(arrival_steps)
                ai = state.arrival_index
                finish_heap = dc._finish_heap
                expiry_heap = state.expiry_heap
                budget_row = budgets[g]
                processed = run.processed_steps
                patience = dc.config.queue_patience_steps
                while True:
                    # --- process_wake, inlined ---
                    processed.append(step)
                    if ai < n_arrivals and arrival_steps[ai] == step:
                        arrivals = arrivals_by_step[step]
                        ai += 1
                    else:
                        arrivals = ()
                    step_fn(
                        step, int(budget_row[step]), arrivals, cols, True
                    )
                    queue = dc._queue
                    if queue and queue[-1][1] == step:
                        expiry = step + patience + 1
                        if expiry < n:
                            heappush(expiry_heap, expiry)
                    # --- wake_bounds, inlined ---
                    running = dc._running_cores
                    paused = dc._paused
                    upper_b: int | None = None
                    if paused:
                        upper_b = running + paused[0].cores
                    if queue:
                        launch = dc._launch_wake_threshold()
                        if launch is not None and (
                            upper_b is None or launch < upper_b
                        ):
                            upper_b = launch
                    # --- next_event_step, inlined ---
                    wake = n
                    if ai < n_arrivals:
                        wake = arrival_steps[ai]
                    while finish_heap and finish_heap[0] <= step:
                        heappop(finish_heap)
                    if finish_heap and finish_heap[0] < wake:
                        wake = finish_heap[0]
                    while expiry_heap and expiry_heap[0] <= step:
                        heappop(expiry_heap)
                    if expiry_heap and expiry_heap[0] < wake:
                        wake = expiry_heap[0]
                    # --- in-block crossing rescan ---
                    start = step + 1
                    if start < b1 and (running or upper_b is not None):
                        scan_stop = b1 if wake > b1 else wake
                        if start < scan_stop:
                            row = budget_row[start:scan_stop]
                            if upper_b is None:
                                cross = row < running
                            elif running:
                                cross = (row < running) | (row >= upper_b)
                            else:
                                cross = row >= upper_b
                            hit = cross.argmax()
                            if cross[hit]:
                                wake = start + int(hit)
                    if wake < b1:
                        step = wake
                        continue
                    break
                state.arrival_index = ai
                state.last = step
                run.lower = running if running > 0 else _NO_LOWER
                run.upper = _NO_UPPER if upper_b is None else upper_b
            b0 = b1
        self._finalize_group(n, group)

    @staticmethod
    def _finalize_group(n: int, group: list[_SiteRun]) -> None:
        """Forward-fill every skipped step from the processed ones.

        A skipped step carries the state of the last processed step —
        which :meth:`Datacenter._step` already wrote into its own
        column slot — so the fill is ``np.repeat`` of the processed
        steps' values over the gaps up to the next processed step.
        Steps before the first wake keep the zero initialization
        (nothing admitted or running yet), matching the per-site
        engine's initial-state fill.
        """
        for run in group:
            proc = run.processed_steps
            if not proc:
                continue
            idx = np.array(proc)
            lengths = np.diff(np.append(idx, n))
            cols = run.state.cols
            first = proc[0]
            for column in (
                cols.running_cores,
                cols.allocated_cores,
                cols.queue_length,
            ):
                column[first:] = np.repeat(column[idx], lengths)
