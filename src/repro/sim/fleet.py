"""Batched cross-site fleet engine: one columnar program, many sites.

The paper's §2.3 catalog analysis aggregates hundreds of EU wind/solar
sites; simulating them one :meth:`~repro.cluster.datacenter.Datacenter.run`
at a time leaves every fixed cost — column allocation, event-log
appends, per-site observability spans, window-scan dispatch — multiplied
by the fleet size.  :class:`FleetEngine` advances **all sites through
one program**:

* **Site-major matrices.**  Sites stack their per-step measurement
  columns (running cores, queue length, power, migration bytes, …) as
  row views carved out of one shared site-major matrix per column
  (:meth:`StepColumns.from_views`), and open-loop sites additionally
  stack their precomputed core-budget series into one
  ``(n_sites, n_steps)`` ``int64`` array — the fleet's state lives in a
  handful of 2D arrays, not thousands of per-site allocations.  The
  budget-threshold wake scan — the event engine's "when can this
  site's state change because of power?" question — runs as one
  vectorized 2D comparison per block across every live site, instead
  of one 1D scan per site per window.

* **SoA step kernels.**  Each site's cluster state advances through a
  :class:`~repro.cluster.kernel.StepKernel` — VM and server state as
  parallel arrays indexed by integers, not object graphs — so a wake
  costs flat array reads instead of attribute chases.  The kernels are
  golden-pinned bit-identical to the object model.

* **Shared wake heap keyed ``(step, site)``.**  Each site keeps at most
  one live entry: the earliest of its next arrival, VM finish, queue
  expiry, or budget-threshold crossing.  The engine pops wakes in
  global time order; because sites are mutually independent within a
  block, a popped site drains its whole chain of in-block wakes in one
  tight kernel loop (:meth:`StepKernel.drain_block`) before the next
  site is popped.

* **Block synchronization.**  The 2D crossing scans cover blocks of
  ``block_steps`` grid steps; a site that processes a wake rescans only
  its own remaining block row (1D) under its updated thresholds, and
  sites untouched by a block cost one row of the shared comparison.

* **Lazy forward-fill.**  Skipped steps carry the running / allocated /
  queue-length state of the last processed step.  Per-site processed
  step lists let the finalizer reconstruct every skipped span with one
  ``np.repeat`` per column instead of one slice write per window.

* **Batched closed-loop dispatch.**  Closed-loop supply sites
  (stateful :class:`SupplyStack` dispatched against live demand)
  cannot share the budget matrix — their budgets depend on each site's
  own demand trajectory — but their *supply dynamics* batch: a
  same-length group advances in lockstep through
  :class:`~repro.supply.batch.BatchedDispatch`, one ``(S,)``-shaped
  battery/grid update per step, with only wake steps (arrival, finish,
  expiry, or a delivered-power threshold crossing) touching a site's
  step kernel.  Groups below ``closed_batch_min_sites`` — where S
  scalar span kernels beat one array program — and stacks with exotic
  component types run the per-site skip-ahead closed-loop event engine
  instead, inside the same fleet run.

The per-site engines share every line of phase logic with the fleet
path (the same kernels, the same dispatch arithmetic), and the golden
tests pin fleet output bit-identical (records and summaries) to N
independent ``Datacenter.run`` calls.

By default fleet sites skip the per-VM event log
(``record_events=False``): at 500 sites × 1 year the audit trail is
pure overhead.  Pass ``record_events=True`` to keep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from .. import obs
from ..cluster.datacenter import (
    Datacenter,
    DatacenterConfig,
    EngineState,
    SimulationResult,
    StepColumns,
)
from ..errors import ConfigurationError
from ..supply import SupplyStack
from ..supply.batch import BatchedDispatch
from ..traces import PowerTrace
from ..workload import VMRequest

# Sentinels for the vectorized threshold scan: budgets are int64, so a
# lower bound below any budget / an upper bound above any budget turn
# the corresponding comparison off without branching.
_NO_LOWER = -(2**62)
_NO_UPPER = 2**62


def crossing_scan(
    window: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> int | None:
    """First column of ``window`` where any row crosses its thresholds.

    The fleet engine's budget-threshold question as a standalone
    helper: row ``i`` crosses at column ``j`` when
    ``window[i, j] < lower[i]`` (a budget drop that forces evictions)
    or ``window[i, j] >= upper[i]`` (a rise that can resume or launch
    work).  Disable a bound with :data:`_NO_LOWER` / :data:`_NO_UPPER`.
    Returns the first crossing column index, or ``None`` when no step
    in the window crosses — shared with the detailed multi-site
    executor's event engine, whose sites wake together.
    """
    if window.shape[1] == 0:
        return None
    mask = (window < lower[:, None]) | (window >= upper[:, None])
    flat = mask.any(axis=0)
    hit = int(flat.argmax())
    return hit if flat[hit] else None


@dataclass(frozen=True)
class FleetSite:
    """One site of a fleet run.

    Attributes:
        name: Site label (keys the result mapping).
        config: Datacenter configuration.
        trace: Power trace driving the site.
        requests: VM arrivals to replay at the site.
        supply: Optional supply stack composed over the trace.
        supply_mode: ``"open"`` (precomputed delivery) or ``"closed"``
            (per-step dispatch against live demand).
    """

    name: str
    config: DatacenterConfig
    trace: PowerTrace
    requests: Sequence[VMRequest]
    supply: SupplyStack | None = None
    supply_mode: str = "open"


@dataclass(slots=True)
class _SiteRun:
    """Engine-internal per-site bookkeeping."""

    index: int
    site: FleetSite
    datacenter: Datacenter
    state: EngineState
    processed_steps: list[int] = field(default_factory=list)
    # Threshold bounds under which the current budget row scan is
    # valid; refreshed after every processed wake chain.
    lower: int = _NO_LOWER
    upper: int = _NO_UPPER


class FleetEngine:
    """Advance many datacenter sites through one columnar program.

    Args:
        sites: Fleet members; traces may differ in length (sites are
            grouped by grid length for the shared budget matrix).
        record_events: Keep each site's per-VM event log.  Off by
            default — fleet runs record per-step columns only.
        block_steps: Grid steps covered by each shared crossing scan.
        closed_batch_min_sites: Smallest same-length closed-loop group
            advanced through the batched lockstep dispatcher; smaller
            groups run the per-site span-kernel engine, which wins
            while per-step numpy overhead outweighs the batching.
    """

    def __init__(
        self,
        sites: Sequence[FleetSite],
        *,
        record_events: bool = False,
        block_steps: int = 4096,
        closed_batch_min_sites: int = 16,
    ):
        if not sites:
            raise ConfigurationError("fleet needs at least one site")
        if block_steps <= 0:
            raise ConfigurationError(
                f"block size must be positive: {block_steps}"
            )
        if closed_batch_min_sites <= 0:
            raise ConfigurationError(
                "closed batch threshold must be positive:"
                f" {closed_batch_min_sites}"
            )
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate site names: {names}")
        self.sites = tuple(sites)
        self.record_events = record_events
        self.block_steps = block_steps
        self.closed_batch_min_sites = closed_batch_min_sites

    # ------------------------------------------------------------------

    def run(self) -> dict[str, SimulationResult]:
        """Execute every site; returns results keyed by site name.

        Result-identical to running each site's :meth:`Datacenter.run`
        with ``engine="event"`` independently (records, summaries, and
        supply telemetry — golden-tested).
        """
        datacenters = [
            Datacenter(
                site.config,
                site.trace,
                supply=site.supply,
                supply_mode=site.supply_mode,
                record_events=self.record_events,
            )
            for site in self.sites
        ]
        # Sites grouped by grid length share one site-major matrix per
        # measurement column; each site's StepColumns are row views
        # into those matrices (the fleet's columnar state).
        members_by_length: dict[int, list[int]] = {}
        for i, dc in enumerate(datacenters):
            members_by_length.setdefault(
                dc.power_trace.grid.n, []
            ).append(i)
        cols_by_site: dict[int, StepColumns] = {}
        for n, members in members_by_length.items():
            matrices = {
                name: np.zeros(
                    (len(members), n),
                    dtype=(
                        float
                        if name in StepColumns.FLOAT_COLUMNS
                        else np.int64
                    ),
                )
                for name in StepColumns.__slots__[1:]
            }
            for row, i in enumerate(members):
                cols_by_site[i] = StepColumns.from_views(
                    n, {name: mat[row] for name, mat in matrices.items()}
                )
        runs = [
            _SiteRun(
                i, site, dc,
                dc.prepare_run(site.requests, cols_by_site[i], kernel=True),
            )
            for i, (site, dc) in enumerate(zip(self.sites, datacenters))
        ]
        n_steps = max(r.state.n for r in runs)
        with obs.span(
            "fleet.run", n_sites=len(runs), n_steps=n_steps
        ):
            open_loop = [r for r in runs if not r.state.closed]
            closed = [r for r in runs if r.state.closed]
            # Closed-loop sites dispatch against their own live demand;
            # their budgets cannot enter the shared matrix.  Large
            # same-length groups with batchable stacks advance in
            # lockstep through one vectorized dispatcher; the rest run
            # the per-site skip-ahead closed-loop event engine.
            closed_by_length: dict[int, list[_SiteRun]] = {}
            for run in closed:
                closed_by_length.setdefault(run.state.n, []).append(run)
            for n, cgroup in sorted(closed_by_length.items()):
                batchable = []
                solo = []
                for run in cgroup:
                    if BatchedDispatch.supports(run.state.dispatcher):
                        batchable.append(run)
                    else:
                        solo.append(run)
                if n and len(batchable) >= self.closed_batch_min_sites:
                    self._run_closed_group(n, batchable)
                    for run in batchable:
                        run.state.processed = len(run.processed_steps)
                else:
                    solo = batchable + solo
                for run in solo:
                    run.state.processed = run.datacenter._run_closed_event(
                        run.state.n,
                        run.state.kernel,
                        run.state.cols,
                        run.state.dispatcher,
                    )
            # Open-loop sites share one columnar program per grid
            # length (budget rows must be the same width to stack).
            by_length: dict[int, list[_SiteRun]] = {}
            for run in open_loop:
                by_length.setdefault(run.state.n, []).append(run)
            for n, group in sorted(by_length.items()):
                self._run_group(n, group)
            results = {}
            for run in runs:
                if not run.state.closed:
                    run.state.processed = len(run.processed_steps)
                results[run.site.name] = run.datacenter.finish_run(
                    run.state, engine="fleet"
                )
        return results

    # ------------------------------------------------------------------

    def _run_group(self, n: int, group: list[_SiteRun]) -> None:
        """The columnar program over one same-length open-loop group."""
        if n == 0:
            return
        budgets = np.vstack([r.state.budgets for r in group])
        heap: list[tuple[int, int]] = []  # (step, group index)
        live = list(range(len(group)))
        block = self.block_steps
        b0 = 0
        while b0 < n and live:
            b1 = min(b0 + block, n)
            # One 2D threshold scan covers every live site's block row:
            # a budget below ``lower`` forces evictions, one at/above
            # ``upper`` can resume or launch — exactly the per-site
            # event engine's window scan, batched.
            idx = np.array(live)
            window = budgets[idx, b0:b1]
            lower = np.array([group[g].lower for g in live])
            upper = np.array([group[g].upper for g in live])
            mask = (window < lower[:, None]) | (window >= upper[:, None])
            hits = mask.argmax(axis=1)
            hit_valid = mask[np.arange(len(live)), hits]
            survivors = []
            for row, g in enumerate(live):
                run = group[g]
                wake = run.state.kernel.next_event()
                if hit_valid[row]:
                    crossing = b0 + int(hits[row])
                    if crossing < wake:
                        wake = crossing
                if wake < b1:
                    heappush(heap, (wake, g))
                    survivors.append(g)
                elif wake < n or run.upper != _NO_UPPER or (
                    run.lower != _NO_LOWER
                ):
                    # An event or a possible crossing remains ahead;
                    # re-examine at the next block.
                    survivors.append(g)
                # else: drained site — no events, no queue, no paused
                # work, nothing running.  Its remaining steps are one
                # forward-fill at finalize.
            live = survivors
            # Pop wakes in global time order.  Sites are mutually
            # independent, so a popped site drains its entire chain of
            # in-block wakes in one tight kernel loop — each site costs
            # one heap pop per block instead of one push+pop per wake.
            while heap:
                step, g = heappop(heap)
                run = group[g]
                wake, running, upper_b = run.state.kernel.drain_block(
                    step, budgets[g], b1, run.processed_steps
                )
                run.lower = running if running > 0 else _NO_LOWER
                run.upper = _NO_UPPER if upper_b is None else upper_b
            b0 = b1
        self._finalize_group(n, group)

    # ------------------------------------------------------------------

    def _run_closed_group(self, n: int, group: list[_SiteRun]) -> None:
        """Lockstep closed-loop program over one same-length group.

        Every step, one :meth:`BatchedDispatch.step_many` advances all
        sites' supply state against their current demand.  A site's
        kernel runs only at wake steps — a scheduled arrival / finish /
        expiry (the shared event heap), or a delivered-power crossing
        of its wake thresholds in normalized space (the same exact
        thresholds :meth:`Datacenter._norm_bounds` gives the per-site
        span kernel, so the wake pattern — and therefore every column
        and telemetry value — is bit-identical to per-site runs).
        """
        batch = BatchedDispatch([r.state.dispatcher for r in group])
        s = len(group)
        kernels = [r.state.kernel for r in group]
        dcs = [r.datacenter for r in group]
        norm_fns = [dc.power_model.norm_for_cores for dc in dcs]
        budget_fns = [dc.power_model.core_budget for dc in dcs]
        demand = np.zeros(s)
        lo = np.full(s, -np.inf)
        up = np.full(s, np.inf)
        # Every site wakes at step 0, like the per-site engine's first
        # iteration; the heap keys (step, group index).
        events: list[tuple[int, int]] = [(0, g) for g in range(s)]
        for t in range(n):
            due: list[int] = []
            while events and events[0][0] <= t:
                _, g = heappop(events)
                due.append(g)
                # Event steps dispatch against the step's own demand —
                # arrivals and finish buckets included — exactly as
                # the per-site wake iteration does; between wakes the
                # window demand set below carries.
                demand[g] = norm_fns[g](kernels[g].demand_at(t))
            delivered = batch.step_many(t, demand)
            clipped = np.clip(delivered, 0.0, 1.0)
            crossing = (clipped < lo) | (clipped >= up)
            if not due and not crossing.any():
                continue
            wakers = set(due)
            wakers.update(np.flatnonzero(crossing).tolist())
            for g in sorted(wakers):
                kernel = kernels[g]
                kernel.step_wake(t, budget_fns[g](float(clipped[g])))
                group[g].processed_steps.append(t)
                demand[g] = max(norm_fns[g](kernel.window_demand()), 0.0)
                lo_n, up_n = dcs[g]._norm_bounds(*kernel.wake_bounds())
                lo[g] = -np.inf if lo_n is None else lo_n
                up[g] = np.inf if up_n is None else up_n
                nxt = kernel.next_event()
                if nxt < n:
                    heappush(events, (nxt, g))
        batch.finalize()
        # Power columns come straight from the delivered matrix, budget
        # rows through the same clip + budget series the per-site
        # engine applies step by step.
        for g, run in enumerate(group):
            cols = run.state.cols
            clipped_row = np.clip(
                run.state.dispatcher.evaluation.delivered, 0.0, 1.0
            )
            cols.norm_power[:] = clipped_row
            cols.core_budget[:] = dcs[g]._budget_series(clipped_row)
        self._finalize_group(n, group)

    @staticmethod
    def _finalize_group(n: int, group: list[_SiteRun]) -> None:
        """Forward-fill every skipped step from the processed ones.

        A skipped step carries the state of the last processed step —
        which the step kernel already wrote into its own column slot —
        so the fill is ``np.repeat`` of the processed steps' values
        over the gaps up to the next processed step.  Steps before the
        first wake keep the zero initialization (nothing admitted or
        running yet), matching the per-site engine's initial-state
        fill.
        """
        for run in group:
            proc = run.processed_steps
            if not proc:
                continue
            idx = np.array(proc)
            lengths = np.diff(np.append(idx, n))
            cols = run.state.cols
            first = proc[0]
            for column in (
                cols.running_cores,
                cols.allocated_cores,
                cols.queue_length,
            ):
                column[first:] = np.repeat(column[idx], lengths)
