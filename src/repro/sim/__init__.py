"""Multi-site execution: run placements against *actual* generation.

Schedulers plan on forecasts; this package replays their placements
against the true traces, producing the realized migration traffic that
Table 1 and Figure 7 report.  Execution follows the displaced-stable-
cores semantics of :mod:`repro.sched.overhead`, optionally honouring a
plan's preemptive displacement trajectory (MIP-peak moves VMs early to
flatten spikes).
"""

from .engine import ExecutionResult, SiteExecution, execute_placement
from .detailed import (
    DetailedResult,
    DetailedSiteRecord,
    execute_placement_detailed,
)
from .facade import simulate
from .fleet import FleetEngine, FleetSite
from .results import (
    SUMMARY_SCHEMA,
    PolicyComparison,
    TransferSummary,
    summarize_transfers,
)

__all__ = [
    "ExecutionResult",
    "SiteExecution",
    "execute_placement",
    "DetailedResult",
    "DetailedSiteRecord",
    "execute_placement_detailed",
    "FleetEngine",
    "FleetSite",
    "PolicyComparison",
    "simulate",
    "SUMMARY_SCHEMA",
    "TransferSummary",
    "summarize_transfers",
]
