"""Per-VM multi-site execution: the detailed counterpart to the fluid
displacement model of :mod:`repro.sim.engine`.

Every site runs a real :class:`~repro.cluster.datacenter.Datacenter`
(servers, packing, round-robin eviction), all advancing in lock-step.
A VM evicted from its site hands off to the group member with the most
free powered cores and re-enters there as an in-migration; if nowhere
has room it waits in a displaced pool and retries each step.  Stable
VMs follow that migrate path; degradable VMs pause in place, exactly as
the paper prescribes.

Like the single-site simulator, the executor has two result-identical
engines sharing one step implementation: ``engine="dense"`` advances
every grid step; ``engine="event"`` (the default) wakes only at VM
arrivals, scheduled completions (min-heap), and *budget-threshold
crossings* found by the fleet engine's site-major scan
(:func:`repro.sim.fleet.crossing_scan`): a site's budget dropping below
its running cores, or rising to where a paused VM could resume or a
displaced VM could land.  Between wakes no site state can change —
budgets stay inside every site's thresholds, so overflow, resume
eligibility, and displaced-landing feasibility are all unchanged from
the last processed step — and the skipped records are exact
forward-fills (the displaced pool still accrues homeless VM-steps over
the span).

The fluid engine answers "how many bytes"; this one also answers
"which VM, onto which server, after how many hops" — and running both
on the same placement quantifies the fluid approximation's error
(see tests/test_detailed_sim.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Mapping

import numpy as np

from .. import obs
from ..cluster import ClusterSpec
from ..cluster.datacenter import _ServerPool
from ..cluster.migration import EvictionOrder, EvictionPlanner
from ..cluster.vm import VM, VMState
from ..errors import ConfigurationError, SchedulingError
from ..sched.problem import Placement, SchedulingProblem
from ..supply import SupplyDispatcher, SupplyEvaluation, SupplyStack
from .fleet import _NO_LOWER, _NO_UPPER, crossing_scan
from ..traces import PowerTrace
from ..workload import VMClass, VMRequest


@dataclass(frozen=True)
class DetailedSiteRecord:
    """Per-step accounting for one site in the detailed run."""

    step: int
    budget: int
    running_cores: int
    out_bytes: float
    in_bytes: float
    n_evicted: int
    n_landed: int
    n_paused: int
    n_resumed: int


class _DetailedColumns:
    """Columnar per-step measurements for one site."""

    __slots__ = (
        "n", "budget", "running_cores", "out_bytes", "in_bytes",
        "n_evicted", "n_landed", "n_paused", "n_resumed",
    )

    def __init__(self, n: int, budget: np.ndarray):
        self.n = n
        self.budget = budget
        self.running_cores = np.zeros(n, dtype=np.int64)
        self.out_bytes = np.zeros(n)
        self.in_bytes = np.zeros(n)
        self.n_evicted = np.zeros(n, dtype=np.int64)
        self.n_landed = np.zeros(n, dtype=np.int64)
        self.n_paused = np.zeros(n, dtype=np.int64)
        self.n_resumed = np.zeros(n, dtype=np.int64)


class DetailedResult:
    """Output of a detailed multi-site execution.

    Measurements are stored columnar per site; :attr:`records` (the
    per-site lists of :class:`DetailedSiteRecord`) is materialized
    lazily on first access.  Series accessors return the stored arrays
    directly — treat them as read-only.
    """

    def __init__(
        self,
        site_names: tuple[str, ...],
        columns: dict[str, _DetailedColumns],
        homeless_vm_steps: int,
        supply: dict[str, SupplyEvaluation] | None = None,
    ):
        self.site_names = site_names
        self.columns = columns
        self.homeless_vm_steps = homeless_vm_steps
        #: Per-site supply telemetry for sites that ran with a
        #: non-empty supply stack (empty dict otherwise).
        self.supply = supply or {}
        self._records: dict[str, list[DetailedSiteRecord]] | None = None
        self._total_transfer: np.ndarray | None = None

    @property
    def records(self) -> dict[str, list[DetailedSiteRecord]]:
        """Per-site step records (built from the columns on demand)."""
        if self._records is None:
            self._records = {}
            for name, c in self.columns.items():
                self._records[name] = [
                    DetailedSiteRecord(*row)
                    for row in zip(
                        range(c.n),
                        c.budget.tolist(),
                        c.running_cores.tolist(),
                        c.out_bytes.tolist(),
                        c.in_bytes.tolist(),
                        c.n_evicted.tolist(),
                        c.n_landed.tolist(),
                        c.n_paused.tolist(),
                        c.n_resumed.tolist(),
                    )
                ]
        return self._records

    def out_bytes_series(self, name: str) -> np.ndarray:
        """Out-migration bytes per step at one site."""
        return self.columns[name].out_bytes

    def in_bytes_series(self, name: str) -> np.ndarray:
        """In-migration (landing) bytes per step at one site."""
        return self.columns[name].in_bytes

    def total_transfer_series(self) -> np.ndarray:
        """Per-step migration bytes over all sites (out side counted).

        Each migration is one transfer; counting the out side only
        avoids double-counting the same bytes on landing.
        """
        if self._total_transfer is None:
            self._total_transfer = np.sum(
                [self.columns[name].out_bytes for name in self.site_names],
                axis=0,
            )
        return self._total_transfer

    def total_transfer_gb(self) -> float:
        """Total realized migration traffic in GB."""
        return float(self.total_transfer_series().sum()) / 1e9

    def summary_dict(self) -> dict:
        """JSON-ready summary following the shared result schema.

        See :data:`repro.sim.results.SUMMARY_SCHEMA` for the key
        contract shared with
        :meth:`~repro.sim.engine.ExecutionResult.summary_dict` and
        :meth:`~repro.cluster.datacenter.SimulationResult.summary_dict`.
        ``homeless_vm_steps`` is this class's extra key.
        """
        per_site: dict[str, dict] = {
            name: {
                "out_gb": float(self.columns[name].out_bytes.sum()) / 1e9,
                "in_gb": float(self.columns[name].in_bytes.sum()) / 1e9,
            }
            for name in self.site_names
        }
        for name, evaluation in self.supply.items():
            per_site[name]["supply"] = evaluation.summary()
        step_total = np.sum(
            [
                self.columns[name].out_bytes + self.columns[name].in_bytes
                for name in self.site_names
            ],
            axis=0,
        )
        return {
            "total_transfer_gb": self.total_transfer_gb(),
            "out_gb": sum(s["out_gb"] for s in per_site.values()),
            "in_gb": sum(s["in_gb"] for s in per_site.values()),
            "peak_step_gb": (
                float(step_total.max()) / 1e9 if step_total.size else 0.0
            ),
            "sites": per_site,
            "homeless_vm_steps": int(self.homeless_vm_steps),
        }


class _SiteState:
    """One site's cluster state inside the detailed executor."""

    def __init__(
        self,
        name: str,
        cluster: ClusterSpec,
        eviction_order: EvictionOrder = EvictionOrder.FIRST_PLACED,
    ):
        self.name = name
        self.cluster = cluster
        self.pool = _ServerPool(cluster)
        self.planner = EvictionPlanner(
            cluster.n_servers, eviction_order, pause_degradable=True
        )
        self.running_cores = 0
        self.paused: list[VM] = []

    def free_powered_cores(self, budget: int) -> int:
        """Cores available for new VMs under the current budget."""
        return max(0, budget - self.running_cores)

    def place(self, vm: VM) -> bool:
        """Try to place ``vm``; True on success."""
        server = self.pool.find(vm, "bestfit")
        if server is None:
            return False
        self.pool.host(server, vm)
        self.running_cores += vm.cores
        return True

    def evict(self, vm: VM) -> None:
        """Remove a running VM from this site."""
        server = self.pool.servers[vm.server_id]
        self.pool.release(server, vm)
        vm.evict()
        self.running_cores -= vm.cores

    def pause(self, vm: VM) -> None:
        """Pause a degradable VM in place."""
        vm.pause()
        self.running_cores -= vm.cores
        self.paused.append(vm)

    def resume_paused(self, budget: int) -> list[VM]:
        """Resume paused VMs while the budget allows; returns them.

        The returned VMs are exactly the RUNNING VMs whose finish needs
        re-scheduling — everything else running already carries a
        finish step.
        """
        resumed: list[VM] = []
        still_paused: list[VM] = []
        for vm in self.paused:
            if (
                vm.state is VMState.PAUSED
                and self.running_cores + vm.cores <= budget
            ):
                vm.resume()
                self.running_cores += vm.cores
                resumed.append(vm)
            else:
                still_paused.append(vm)
        self.paused = still_paused
        return resumed


def _build_vms(
    problem: SchedulingProblem, placement: Placement
) -> dict[str, dict[int, list[VM]]]:
    """Materialize per-site, per-arrival-step VM objects."""
    arrivals: dict[str, dict[int, list[VM]]] = {
        name: {} for name in problem.site_names
    }
    vm_id = 0
    for app in problem.apps:
        per_site = placement.assignment.get(app.app_id, {})
        stable_count = round(app.stable_fraction * app.vm_count)
        built = 0
        for name, count in per_site.items():
            for _ in range(count):
                vm_class = (
                    VMClass.STABLE
                    if built < stable_count
                    else VMClass.DEGRADABLE
                )
                request = VMRequest(
                    vm_id, app.arrival_step, app.duration_steps,
                    app.vm_type, vm_class,
                )
                arrivals[name].setdefault(app.arrival_step, []).append(
                    VM(request)
                )
                vm_id += 1
                built += 1
    return arrivals


def _norm_covering_cores(cores: int, total_cores: int) -> float:
    """Least normalized power whose floored budget covers ``cores``.

    The detailed executor's budget map is ``floor(norm * total)``; the
    closed-form inverse ``cores / total`` can truncate one core low, so
    nudge upward by ulps until it covers (bounded — the map is monotone
    and reaches ``cores`` by 1.0).
    """
    if cores <= 0:
        return 0.0
    if cores >= total_cores:
        return 1.0
    norm = cores / total_cores
    while int(np.floor(norm * total_cores)) < cores and norm < 1.0:
        norm = min(float(np.nextafter(norm, np.inf)), 1.0)
    return norm


def _execute_placement_detailed(
    problem: SchedulingProblem,
    placement: Placement,
    actual_traces: Mapping[str, PowerTrace],
    cluster: ClusterSpec | None = None,
    *,
    engine: str = "event",
    eviction_order: EvictionOrder = EvictionOrder.FIRST_PLACED,
    supply: "Mapping[str, SupplyStack] | SupplyStack | None" = None,
    supply_mode: str = "closed",
) -> DetailedResult:
    """Run a placement through per-VM site simulators.

    Args:
        problem: The planning problem (grid, apps, bytes/core unused
            here — real VM memory sizes drive traffic).
        placement: VM counts per (app, site).
        actual_traces: True generation per site, on the problem grid.
        cluster: Per-site cluster shape; sized to each site's
            total_cores with the paper's 40-core servers when omitted.
        engine: ``"event"`` (default) skips provably no-op steps;
            ``"dense"`` executes every grid step.  Both produce
            identical results.
        eviction_order: Victim choice within a server during eviction
            (the paper leaves it unspecified; first-placed by default).
        supply: Optional supply stack(s) composed behind the actual
            traces — one stack for every site, or a per-site mapping
            (sites absent from the mapping run on the raw trace).
            Empty stacks are strict pass-throughs.
        supply_mode: ``"closed"`` (default) dispatches each site's
            stack every step against that site's live demand, which
            forces per-step execution (battery SoC evolves every step,
            so the event engine's no-op-window proof does not hold);
            ``"open"`` firms each trace up front and leaves both
            engines untouched.

    Returns:
        Per-site records plus cross-site handoff accounting.
    """
    if engine not in ("event", "dense"):
        raise ConfigurationError(f"unknown simulation engine: {engine!r}")
    if supply_mode not in ("closed", "open"):
        raise ConfigurationError(f"unknown supply mode: {supply_mode!r}")
    placement.validate_complete(problem)
    grid = problem.grid
    n = grid.n
    states: dict[str, _SiteState] = {}
    budgets: dict[str, np.ndarray] = {}
    evaluations: dict[str, SupplyEvaluation] = {}
    dispatchers: dict[str, SupplyDispatcher] = {}
    for site in problem.sites:
        trace = actual_traces.get(site.name)
        if trace is None:
            raise SchedulingError(
                f"no actual trace for site {site.name!r}"
            )
        if len(trace) != n:
            raise SchedulingError(
                f"trace for {site.name} has {len(trace)} steps,"
                f" expected {n}"
            )
        shape = cluster or ClusterSpec(
            n_servers=max(1, site.total_cores // 40)
        )
        states[site.name] = _SiteState(site.name, shape, eviction_order)
        if isinstance(supply, SupplyStack):
            stack: SupplyStack | None = supply
        elif supply is not None:
            stack = supply.get(site.name)
        else:
            stack = None
        if stack is not None and stack.stateless:
            stack = None
        values = trace.values
        if stack is not None:
            if supply_mode == "closed":
                dispatchers[site.name] = stack.dispatcher(trace)
                evaluations[site.name] = dispatchers[site.name].evaluation
            else:
                evaluation = stack.evaluate_open_loop(trace)
                evaluations[site.name] = evaluation
                values = evaluation.delivered
        budgets[site.name] = np.floor(
            values * shape.total_cores
        ).astype(int)

    arrivals = _build_vms(problem, placement)
    columns: dict[str, _DetailedColumns] = {
        name: _DetailedColumns(n, budgets[name]) for name in states
    }
    # VMs displaced and not yet landed anywhere.
    displaced_pool: list[VM] = []
    finish_at: dict[int, list[tuple[VM, str]]] = {}
    finish_heap: list[int] = []
    vm_site: dict[int, str] = {}
    homeless_vm_steps = 0

    def schedule_finish(vm: VM, site_name: str, step: int) -> None:
        finish = step + vm.remaining_steps
        vm.finish_step = finish
        bucket = finish_at.get(finish)
        if bucket is None:
            finish_at[finish] = [(vm, site_name)]
            heappush(finish_heap, finish)
        else:
            bucket.append((vm, site_name))
        vm_site[vm.vm_id] = site_name

    site_order = {name: index for index, name in enumerate(states)}

    def site_demand_cores(step: int) -> dict[str, int]:
        """Per-site cores wanting power this step (closed loop only).

        Running cores minus those completing this step, plus paused VMs
        and this step's assigned arrivals.  Displaced VMs are excluded —
        they have no home site until they land, so no single battery
        should discharge on their behalf.
        """
        finishing: dict[str, int] = {}
        for vm, _bucket_site in finish_at.get(step, []):
            if vm.state is VMState.RUNNING and vm.finish_step == step:
                home = vm_site[vm.vm_id]
                finishing[home] = finishing.get(home, 0) + vm.cores
        demand: dict[str, int] = {}
        for name, state in states.items():
            cores = state.running_cores - finishing.get(name, 0)
            for vm in state.paused:
                if vm.state is VMState.PAUSED:
                    cores += vm.cores
            for vm in arrivals[name].get(step, []):
                cores += vm.cores
            demand[name] = min(max(cores, 0), state.cluster.total_cores)
        return demand

    def process(step: int) -> None:
        """One lock-step advance of every site (shared by both engines)."""
        nonlocal displaced_pool, homeless_vm_steps
        if dispatchers:
            demand = site_demand_cores(step)
            step_budget = {}
            for name, state in states.items():
                dispatcher = dispatchers.get(name)
                if dispatcher is None:
                    step_budget[name] = int(budgets[name][step])
                    continue
                total = state.cluster.total_cores
                delivered = dispatcher.dispatch(
                    step, _norm_covering_cores(demand[name], total)
                )
                delivered = min(max(delivered, 0.0), 1.0)
                budget = int(np.floor(delivered * total))
                # Record the dispatched (firmed) budget, not the base.
                budgets[name][step] = budget
                step_budget[name] = budget
        else:
            step_budget = {
                name: int(budgets[name][step]) for name in states
            }
        # 1. Completions.  The bucket's site name can be stale when a
        # VM was evicted and re-landed with an unchanged finish step
        # (same-step handoff); vm_site holds the authoritative host.
        for vm, _bucket_site in finish_at.pop(step, []):
            if vm.state is not VMState.RUNNING or vm.finish_step != step:
                continue
            state = states[vm_site[vm.vm_id]]
            server = state.pool.servers[vm.server_id]
            vm.state = VMState.COMPLETED
            vm.finish_step = None
            state.pool.release(server, vm)
            vm.server_id = None
            state.running_cores -= vm.cores

        # 2. Power down: pause degradable, evict stable.
        for name, state in states.items():
            budget = step_budget[name]
            overflow = state.running_cores - budget
            if overflow > 0:
                cols = columns[name]
                to_migrate, to_pause = state.planner.plan(
                    state.pool.servers, overflow
                )
                for vm in to_pause:
                    if vm.finish_step is not None:
                        vm.remaining_steps = max(
                            1, vm.finish_step - step
                        )
                    vm.finish_step = None
                    state.pause(vm)
                    cols.n_paused[step] += 1
                for vm in to_migrate:
                    if vm.finish_step is not None:
                        vm.remaining_steps = max(
                            1, vm.finish_step - step
                        )
                    vm.finish_step = None
                    state.evict(vm)
                    displaced_pool.append(vm)
                    cols.out_bytes[step] += vm.memory_bytes
                    cols.n_evicted[step] += 1

        # 3. Resume paused VMs where power recovered.  Only the VMs
        # resumed here lack a finish step (arrivals and landings are
        # scheduled at placement), so re-scheduling scans exactly them
        # instead of every server in the fleet.
        for name, state in states.items():
            resumed = state.resume_paused(step_budget[name])
            columns[name].n_resumed[step] += len(resumed)
            for vm in resumed:
                schedule_finish(vm, name, step)

        # 4. Fresh arrivals at their assigned sites.
        for name, state in states.items():
            budget = step_budget[name]
            for vm in arrivals[name].get(step, []):
                if (
                    state.running_cores + vm.cores <= budget
                    and state.place(vm)
                ):
                    schedule_finish(vm, name, step)
                else:
                    displaced_pool.append(vm)

        # 5. Displaced VMs land at the group member with most headroom.
        # Candidates are sorted once per step (headroom descending,
        # ties by site declaration order — exactly the stable order the
        # per-VM re-sort used to produce) and the ranking is maintained
        # incrementally as landings consume headroom: only the landed
        # site's headroom shrinks, so it slides toward the back of the
        # list in one O(S) pass instead of re-sorting every site with
        # fresh key evaluation for each VM (O(V·S) vs O(V·S log S)).
        headroom = {
            name: state.free_powered_cores(step_budget[name])
            for name, state in states.items()
        }
        ranked = sorted(
            states.values(),
            key=lambda s: (-headroom[s.name], site_order[s.name]),
        )
        still_displaced: list[VM] = []
        for vm in displaced_pool:
            landed = False
            for position, state in enumerate(ranked):
                if state.running_cores + vm.cores > step_budget[state.name]:
                    continue
                if state.place(vm):
                    schedule_finish(vm, state.name, step)
                    was_migrated = vm.state is VMState.RUNNING and (
                        vm.migrations > 0
                    )
                    if was_migrated:
                        cols = columns[state.name]
                        cols.in_bytes[step] += vm.memory_bytes
                        cols.n_landed[step] += 1
                    landed = True
                    headroom[state.name] = state.free_powered_cores(
                        step_budget[state.name]
                    )
                    new_key = (
                        -headroom[state.name], site_order[state.name],
                    )
                    ranked.pop(position)
                    while position < len(ranked) and (
                        -headroom[ranked[position].name],
                        site_order[ranked[position].name],
                    ) < new_key:
                        position += 1
                    ranked.insert(position, state)
                    break
            if not landed:
                still_displaced.append(vm)
                homeless_vm_steps += 1
        displaced_pool = still_displaced

        for name, state in states.items():
            columns[name].running_cores[step] = state.running_cores

    run_span = obs.span(
        "sim.detailed", engine=engine, n_steps=n, n_sites=len(states)
    )
    run_span.__enter__()
    # Wake count lives in a plain local int — the step loops allocate
    # nothing per step for observability.
    processed = 0
    if engine == "dense" or dispatchers:
        # Closed-loop supply dispatch makes every step stateful (SoC /
        # grid budget evolve from every balance), so the event engine's
        # skip windows are unsound there — both engines run dense.
        for step in range(n):
            process(step)
        processed = n
    else:
        # Event-driven: wake at arrivals, scheduled finishes, and
        # budget-threshold crossings — the fleet engine's site-major
        # scan over one stacked budget matrix.  A skipped step is
        # provably a no-op when every site's budget stays at or above
        # its running cores (no power-down) and below the smallest
        # budget that could resume a paused VM or land a displaced one
        # (no resume, no landing) — so skipped records are forward-fills
        # (plus the displaced pool's homeless accrual).  Landing
        # thresholds ignore packing feasibility, so a crossing wake may
        # process a step where nothing lands; that is a conservative
        # extra wake, never a missed change.
        arrival_steps = sorted(
            {
                step
                for per_site in arrivals.values()
                for step in per_site
                if step < n
            }
        )
        n_arrival_steps = len(arrival_steps)
        arrival_index = 0
        state_list = list(states.values())
        n_sites = len(state_list)
        if n_sites:
            budget_matrix = np.stack([budgets[name] for name in states])
        lower = np.full(n_sites, _NO_LOWER, dtype=np.int64)
        upper = np.full(n_sites, _NO_UPPER, dtype=np.int64)

        def refresh_thresholds() -> None:
            """Per-site wake bounds from the last processed step.

            Pool and pause state only mutate at processed steps, so
            these bounds stay valid across the whole skip window.
            """
            min_displaced = min(
                (vm.cores for vm in displaced_pool), default=None
            )
            for i, state in enumerate(state_list):
                running = state.running_cores
                lower[i] = running if running > 0 else _NO_LOWER
                rise = min(
                    (vm.cores for vm in state.paused), default=None
                )
                if min_displaced is not None and (
                    rise is None or min_displaced < rise
                ):
                    rise = min_displaced
                upper[i] = _NO_UPPER if rise is None else running + rise

        last = -1
        while True:
            nxt = n
            while (
                arrival_index < n_arrival_steps
                and arrival_steps[arrival_index] <= last
            ):
                arrival_index += 1
            if arrival_index < n_arrival_steps:
                nxt = arrival_steps[arrival_index]
            while finish_heap and finish_heap[0] <= last:
                heappop(finish_heap)
            if finish_heap and finish_heap[0] < nxt:
                nxt = finish_heap[0]
            window_start = last + 1
            if n_sites and window_start < min(nxt, n):
                hit = crossing_scan(
                    budget_matrix[:, window_start:min(nxt, n)],
                    lower, upper,
                )
                if hit is not None:
                    nxt = window_start + hit
            if window_start < nxt:
                span = min(nxt, n) - window_start
                homeless_vm_steps += len(displaced_pool) * span
                for name, state in states.items():
                    columns[name].running_cores[
                        window_start:window_start + span
                    ] = state.running_cores
            if nxt >= n:
                break
            process(nxt)
            refresh_thresholds()
            processed += 1
            last = nxt

    if obs.enabled():
        obs.count("detailed.wakes", processed, engine=engine)
        obs.count("detailed.steps_skipped", n - processed, engine=engine)
        cols = columns.values()
        obs.count(
            "detailed.evictions", int(sum(c.n_evicted.sum() for c in cols))
        )
        obs.count(
            "detailed.landings", int(sum(c.n_landed.sum() for c in cols))
        )
        obs.count(
            "detailed.pauses", int(sum(c.n_paused.sum() for c in cols))
        )
        obs.count(
            "detailed.resumes", int(sum(c.n_resumed.sum() for c in cols))
        )
        obs.gauge("detailed.homeless_vm_steps", int(homeless_vm_steps))
    for name, evaluation in evaluations.items():
        evaluation.emit_metrics(site=name)
    run_span.__exit__(None, None, None)
    return DetailedResult(
        tuple(problem.site_names), columns, homeless_vm_steps,
        supply=evaluations or None,
    )


def execute_placement_detailed(*args, **kwargs) -> DetailedResult:
    """Deprecated alias — route through :func:`repro.sim.simulate`.

    ``simulate(problem, placement, actual_traces, ...)`` dispatches by
    input shape to the same engine; this name survives as a shim for
    existing callers and will eventually be removed.
    """
    import warnings

    warnings.warn(
        "execute_placement_detailed() is deprecated; call"
        " repro.sim.simulate(problem, placement, actual_traces, ...)"
        " instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_placement_detailed(*args, **kwargs)
