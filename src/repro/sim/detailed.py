"""Per-VM multi-site execution: the detailed counterpart to the fluid
displacement model of :mod:`repro.sim.engine`.

Every site runs a real :class:`~repro.cluster.datacenter.Datacenter`
(servers, packing, round-robin eviction), all advancing in lock-step.
A VM evicted from its site hands off to the group member with the most
free powered cores and re-enters there as an in-migration; if nowhere
has room it waits in a displaced pool and retries each step.  Stable
VMs follow that migrate path; degradable VMs pause in place, exactly as
the paper prescribes.

The fluid engine answers "how many bytes"; this one also answers
"which VM, onto which server, after how many hops" — and running both
on the same placement quantifies the fluid approximation's error
(see tests/test_detailed_sim.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..cluster import ClusterSpec, Datacenter, DatacenterConfig
from ..cluster.datacenter import _ServerPool
from ..cluster.migration import EvictionPlanner
from ..cluster.vm import VM, VMState
from ..errors import SchedulingError
from ..sched.problem import Placement, SchedulingProblem
from ..traces import PowerTrace
from ..units import TimeGrid
from ..workload import VMClass, VMRequest, VMType


@dataclass(frozen=True)
class DetailedSiteRecord:
    """Per-step accounting for one site in the detailed run."""

    step: int
    budget: int
    running_cores: int
    out_bytes: float
    in_bytes: float
    n_evicted: int
    n_landed: int
    n_paused: int
    n_resumed: int


@dataclass
class DetailedResult:
    """Output of a detailed multi-site execution."""

    site_names: tuple[str, ...]
    records: dict[str, list[DetailedSiteRecord]]
    homeless_vm_steps: int

    def out_bytes_series(self, name: str) -> np.ndarray:
        """Out-migration bytes per step at one site."""
        return np.array([r.out_bytes for r in self.records[name]])

    def in_bytes_series(self, name: str) -> np.ndarray:
        """In-migration (landing) bytes per step at one site."""
        return np.array([r.in_bytes for r in self.records[name]])

    def total_transfer_series(self) -> np.ndarray:
        """Per-step migration bytes over all sites (out side counted).

        Each migration is one transfer; counting the out side only
        avoids double-counting the same bytes on landing.
        """
        return np.sum(
            [self.out_bytes_series(name) for name in self.site_names],
            axis=0,
        )

    def total_transfer_gb(self) -> float:
        """Total realized migration traffic in GB."""
        return float(self.total_transfer_series().sum()) / 1e9


class _SiteState:
    """One site's cluster state inside the detailed executor."""

    def __init__(self, name: str, cluster: ClusterSpec):
        self.name = name
        self.cluster = cluster
        self.pool = _ServerPool(cluster)
        self.planner = EvictionPlanner(
            cluster.n_servers, pause_degradable=True
        )
        self.running_cores = 0
        self.paused: list[VM] = []

    def free_powered_cores(self, budget: int) -> int:
        """Cores available for new VMs under the current budget."""
        return max(0, budget - self.running_cores)

    def place(self, vm: VM) -> bool:
        """Try to place ``vm``; True on success."""
        server = self.pool.find(vm, "bestfit")
        if server is None:
            return False
        self.pool.host(server, vm)
        self.running_cores += vm.cores
        return True

    def evict(self, vm: VM) -> None:
        """Remove a running VM from this site."""
        server = self.pool.servers[vm.server_id]
        self.pool.release(server, vm)
        vm.evict()
        self.running_cores -= vm.cores

    def pause(self, vm: VM) -> None:
        """Pause a degradable VM in place."""
        vm.pause()
        self.running_cores -= vm.cores
        self.paused.append(vm)

    def resume_paused(self, budget: int) -> int:
        """Resume paused VMs while the budget allows; returns count."""
        resumed = 0
        still_paused: list[VM] = []
        for vm in self.paused:
            if (
                vm.state is VMState.PAUSED
                and self.running_cores + vm.cores <= budget
            ):
                vm.resume()
                self.running_cores += vm.cores
                resumed += 1
            else:
                still_paused.append(vm)
        self.paused = still_paused
        return resumed


def _build_vms(
    problem: SchedulingProblem, placement: Placement
) -> dict[str, dict[int, list[VM]]]:
    """Materialize per-site, per-arrival-step VM objects."""
    arrivals: dict[str, dict[int, list[VM]]] = {
        name: {} for name in problem.site_names
    }
    vm_id = 0
    for app in problem.apps:
        per_site = placement.assignment.get(app.app_id, {})
        stable_count = round(app.stable_fraction * app.vm_count)
        built = 0
        for name, count in per_site.items():
            for _ in range(count):
                vm_class = (
                    VMClass.STABLE
                    if built < stable_count
                    else VMClass.DEGRADABLE
                )
                request = VMRequest(
                    vm_id, app.arrival_step, app.duration_steps,
                    app.vm_type, vm_class,
                )
                arrivals[name].setdefault(app.arrival_step, []).append(
                    VM(request)
                )
                vm_id += 1
                built += 1
    return arrivals


def execute_placement_detailed(
    problem: SchedulingProblem,
    placement: Placement,
    actual_traces: Mapping[str, PowerTrace],
    cluster: ClusterSpec | None = None,
) -> DetailedResult:
    """Run a placement through per-VM site simulators.

    Args:
        problem: The planning problem (grid, apps, bytes/core unused
            here — real VM memory sizes drive traffic).
        placement: VM counts per (app, site).
        actual_traces: True generation per site, on the problem grid.
        cluster: Per-site cluster shape; sized to each site's
            total_cores with the paper's 40-core servers when omitted.

    Returns:
        Per-site records plus cross-site handoff accounting.
    """
    placement.validate_complete(problem)
    grid = problem.grid
    states: dict[str, _SiteState] = {}
    budgets: dict[str, np.ndarray] = {}
    for site in problem.sites:
        trace = actual_traces.get(site.name)
        if trace is None:
            raise SchedulingError(
                f"no actual trace for site {site.name!r}"
            )
        if len(trace) != grid.n:
            raise SchedulingError(
                f"trace for {site.name} has {len(trace)} steps,"
                f" expected {grid.n}"
            )
        shape = cluster or ClusterSpec(
            n_servers=max(1, site.total_cores // 40)
        )
        states[site.name] = _SiteState(site.name, shape)
        budgets[site.name] = np.floor(
            trace.values * shape.total_cores
        ).astype(int)

    arrivals = _build_vms(problem, placement)
    records: dict[str, list[DetailedSiteRecord]] = {
        name: [] for name in states
    }
    # VMs displaced and not yet landed anywhere.
    displaced_pool: list[VM] = []
    finish_at: dict[int, list[tuple[VM, str]]] = {}
    vm_site: dict[int, str] = {}
    homeless_vm_steps = 0

    def schedule_finish(vm: VM, site_name: str, step: int) -> None:
        finish = step + vm.remaining_steps
        vm.finish_step = finish
        finish_at.setdefault(finish, []).append((vm, site_name))
        vm_site[vm.vm_id] = site_name

    site_order = {name: index for index, name in enumerate(states)}

    for step in range(grid.n):
        step_stats = {
            name: dict(out_b=0.0, in_b=0.0, ev=0, land=0, pa=0, re=0)
            for name in states
        }
        step_budget = {
            name: int(budgets[name][step]) for name in states
        }
        # 1. Completions.  The bucket's site name can be stale when a
        # VM was evicted and re-landed with an unchanged finish step
        # (same-step handoff); vm_site holds the authoritative host.
        for vm, _bucket_site in finish_at.pop(step, []):
            if vm.state is not VMState.RUNNING or vm.finish_step != step:
                continue
            state = states[vm_site[vm.vm_id]]
            server = state.pool.servers[vm.server_id]
            vm.state = VMState.COMPLETED
            vm.finish_step = None
            state.pool.release(server, vm)
            vm.server_id = None
            state.running_cores -= vm.cores

        # 2. Power down: pause degradable, evict stable.
        for name, state in states.items():
            budget = step_budget[name]
            overflow = state.running_cores - budget
            if overflow > 0:
                to_migrate, to_pause = state.planner.plan(
                    state.pool.servers, overflow
                )
                for vm in to_pause:
                    if vm.finish_step is not None:
                        vm.remaining_steps = max(
                            1, vm.finish_step - step
                        )
                    vm.finish_step = None
                    state.pause(vm)
                    step_stats[name]["pa"] += 1
                for vm in to_migrate:
                    if vm.finish_step is not None:
                        vm.remaining_steps = max(
                            1, vm.finish_step - step
                        )
                    vm.finish_step = None
                    state.evict(vm)
                    displaced_pool.append(vm)
                    step_stats[name]["out_b"] += vm.memory_bytes
                    step_stats[name]["ev"] += 1

        # 3. Resume paused VMs where power recovered, then re-schedule
        # finishes for anything RUNNING without one (the resumed VMs).
        for name, state in states.items():
            resumed = state.resume_paused(step_budget[name])
            step_stats[name]["re"] += resumed
        for name, state in states.items():
            for server in state.pool.servers:
                for vm in server.running_vms():
                    if vm.finish_step is None:
                        schedule_finish(vm, name, step)

        # 4. Fresh arrivals at their assigned sites.
        for name, state in states.items():
            budget = step_budget[name]
            for vm in arrivals[name].get(step, []):
                if (
                    state.running_cores + vm.cores <= budget
                    and state.place(vm)
                ):
                    schedule_finish(vm, name, step)
                else:
                    displaced_pool.append(vm)

        # 5. Displaced VMs land at the group member with most headroom.
        # Candidates are sorted once per step (headroom descending,
        # ties by site declaration order — exactly the stable order the
        # per-VM re-sort used to produce) and the ranking is maintained
        # incrementally as landings consume headroom: only the landed
        # site's headroom shrinks, so it slides toward the back of the
        # list in one O(S) pass instead of re-sorting every site with
        # fresh key evaluation for each VM (O(V·S) vs O(V·S log S)).
        headroom = {
            name: state.free_powered_cores(step_budget[name])
            for name, state in states.items()
        }
        ranked = sorted(
            states.values(),
            key=lambda s: (-headroom[s.name], site_order[s.name]),
        )
        still_displaced: list[VM] = []
        for vm in displaced_pool:
            landed = False
            for position, state in enumerate(ranked):
                if state.running_cores + vm.cores > step_budget[state.name]:
                    continue
                if state.place(vm):
                    schedule_finish(vm, state.name, step)
                    was_migrated = vm.state is VMState.RUNNING and (
                        vm.migrations > 0
                    )
                    if was_migrated:
                        step_stats[state.name]["in_b"] += vm.memory_bytes
                        step_stats[state.name]["land"] += 1
                    landed = True
                    headroom[state.name] = state.free_powered_cores(
                        step_budget[state.name]
                    )
                    new_key = (
                        -headroom[state.name], site_order[state.name],
                    )
                    ranked.pop(position)
                    while position < len(ranked) and (
                        -headroom[ranked[position].name],
                        site_order[ranked[position].name],
                    ) < new_key:
                        position += 1
                    ranked.insert(position, state)
                    break
            if not landed:
                still_displaced.append(vm)
                homeless_vm_steps += 1
        displaced_pool = still_displaced

        for name in states:
            stats = step_stats[name]
            records[name].append(
                DetailedSiteRecord(
                    step=step,
                    budget=step_budget[name],
                    running_cores=states[name].running_cores,
                    out_bytes=stats["out_b"],
                    in_bytes=stats["in_b"],
                    n_evicted=stats["ev"],
                    n_landed=stats["land"],
                    n_paused=stats["pa"],
                    n_resumed=stats["re"],
                )
            )

    return DetailedResult(
        tuple(problem.site_names), records, homeless_vm_steps
    )
