"""Execute a placement against actual generation traces.

Semantics per site and step (the displaced-stable-cores model):

- ``deficit = max(0, total_load - actual_capacity)``.
- Degradable VMs pause in place first, absorbing up to their core count
  of the deficit at zero network cost.
- The remainder displaces stable VMs: ``required_u = max(0,
  stable_load - actual_capacity)``.
- If the scheduler planned a displacement trajectory (MIP-peak's
  preemptive migrations), executed displacement is
  ``max(required_u, planned_u)`` — the plan may move VMs *earlier* than
  strictly necessary to spread traffic, but reality can always force
  more.  Displacement never exceeds the stable load present.
- Rising displacement emits out-migration bytes, falling displacement
  emits in-migration bytes, at ``bytes_per_core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import SchedulingError
from ..sched.overhead import (
    migration_series_from_displacement,
    placement_load_series,
)
from ..sched.problem import Placement, SchedulingProblem


@dataclass(frozen=True)
class SiteExecution:
    """Realized behaviour of one site over the horizon.

    Attributes:
        name: Site name.
        capacity: Actual powered-core series.
        stable_load: Placed stable cores per step.
        total_load: Placed total cores per step.
        displaced: Executed displaced-stable-core series.
        paused_degradable: Degradable cores paused in place per step.
        out_bytes: Out-migration traffic per step.
        in_bytes: In-migration traffic per step.
    """

    name: str
    capacity: np.ndarray
    stable_load: np.ndarray
    total_load: np.ndarray
    displaced: np.ndarray
    paused_degradable: np.ndarray
    out_bytes: np.ndarray
    in_bytes: np.ndarray

    def stable_availability(self) -> float:
        """Fraction of stable core-steps served locally (not displaced).

        Displaced stable VMs keep running elsewhere — that is the whole
        point of multi-VB — so this measures how much of the stable load
        the site carried itself.
        """
        demand = float(np.sum(self.stable_load))
        if demand <= 0:
            return 1.0
        return 1.0 - float(np.sum(self.displaced)) / demand

    def degradable_availability(self) -> float:
        """Fraction of degradable core-steps actually running."""
        degradable = self.total_load - self.stable_load
        demand = float(np.sum(degradable))
        if demand <= 0:
            return 1.0
        return 1.0 - float(np.sum(self.paused_degradable)) / demand


@dataclass(frozen=True)
class ExecutionResult:
    """Realized multi-site execution of one placement."""

    sites: tuple[SiteExecution, ...]

    def __post_init__(self) -> None:
        # Name lookup happens per-site per-metric in analysis loops;
        # index once so site() is O(1) instead of a linear scan.
        object.__setattr__(
            self, "_by_name", {site.name: site for site in self.sites}
        )

    def site(self, name: str) -> SiteExecution:
        """Execution record of one named site."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no site named {name!r}") from None

    def total_transfer_series(self) -> np.ndarray:
        """Per-step migration bytes summed over sites and directions."""
        return np.sum(
            [site.out_bytes + site.in_bytes for site in self.sites],
            axis=0,
        )

    def total_transfer_gb(self) -> float:
        """Total realized migration traffic in GB (Table 1's unit)."""
        return float(self.total_transfer_series().sum()) / 1e9

    def summary_dict(self) -> dict:
        """JSON-ready summary (used by the run manifest).

        Follows :data:`repro.sim.results.SUMMARY_SCHEMA` — the key
        contract shared with
        :meth:`repro.cluster.SimulationResult.summary_dict` and
        :meth:`repro.sim.DetailedResult.summary_dict`.
        """
        step_total = self.total_transfer_series()
        return {
            "total_transfer_gb": self.total_transfer_gb(),
            "out_gb": float(
                sum(site.out_bytes.sum() for site in self.sites)
            )
            / 1e9,
            "in_gb": float(
                sum(site.in_bytes.sum() for site in self.sites)
            )
            / 1e9,
            "peak_step_gb": (
                float(step_total.max()) / 1e9 if step_total.size else 0.0
            ),
            "sites": {
                site.name: {
                    "stable_availability": site.stable_availability(),
                    "degradable_availability": (
                        site.degradable_availability()
                    ),
                    "out_gb": float(site.out_bytes.sum()) / 1e9,
                    "in_gb": float(site.in_bytes.sum()) / 1e9,
                }
                for site in self.sites
            },
        }


def execute_placement(
    problem: SchedulingProblem,
    placement: Placement,
    actual_capacity: Mapping[str, np.ndarray],
    follow_plan: bool | None = None,
) -> ExecutionResult:
    """Replay a placement against actual capacity series.

    Args:
        problem: The planning problem (grid, apps, bytes/core).
        placement: The scheduler's output.
        actual_capacity: Per-site actual powered-core series (same
            length as the problem grid).
        follow_plan: Honour the placement's planned displacement
            trajectory (preemptive migrations).  Defaults to the
            placement's own ``preemptive`` flag: MIP-peak plans are
            followed (their early migrations are the point), plain-MIP
            plans are not (their displacement series is just the
            forecast-implied minimum, and replaying it would turn
            forecast noise into real traffic).

    Returns:
        Per-site executions with realized traffic.
    """
    if follow_plan is None:
        follow_plan = placement.preemptive
    placement.validate_complete(problem)
    n = problem.grid.n
    for name in problem.site_names:
        if name not in actual_capacity:
            raise SchedulingError(f"no actual capacity for site {name!r}")
        if len(actual_capacity[name]) != n:
            raise SchedulingError(
                f"actual capacity for {name} has length"
                f" {len(actual_capacity[name])}, expected {n}"
            )
    stable, total = placement_load_series(problem, placement)
    executions: list[SiteExecution] = []
    for name in problem.site_names:
        capacity = np.asarray(actual_capacity[name], dtype=float)
        required = np.clip(stable[name] - capacity, 0.0, None)
        displaced = required
        if follow_plan and name in placement.planned_displacement:
            planned = np.asarray(
                placement.planned_displacement[name], dtype=float
            )
            if len(planned) != n:
                raise SchedulingError(
                    f"planned displacement for {name} has length"
                    f" {len(planned)}, expected {n}"
                )
            displaced = np.maximum(required, planned)
        # Cannot displace more stable cores than are placed here.
        displaced = np.minimum(displaced, stable[name])
        deficit = np.clip(total[name] - capacity, 0.0, None)
        degradable = total[name] - stable[name]
        paused = np.minimum(deficit, degradable)
        out_bytes, in_bytes = migration_series_from_displacement(
            displaced, problem.bytes_per_core
        )
        executions.append(
            SiteExecution(
                name=name,
                capacity=capacity,
                stable_load=stable[name],
                total_load=total[name],
                displaced=displaced,
                paused_degradable=paused,
                out_bytes=out_bytes,
                in_bytes=in_bytes,
            )
        )
    return ExecutionResult(tuple(executions))
