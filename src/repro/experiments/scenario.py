"""Declarative experiment scenarios.

A :class:`Scenario` is a frozen, serializable description of one
trace→forecast→schedule→execute→analyze experiment: which sites, over
which time grid, with which workload, forecaster, scheduling policies,
cluster shape, and seeds.  Every entry point (CLI, benches, examples)
builds a ``Scenario`` and hands it to
:class:`~repro.experiments.runner.Runner` instead of hand-wiring the
pipeline.

Scenarios round-trip losslessly through :meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict` and have a *stable* content hash (canonical
JSON → SHA-256, no dependence on ``PYTHONHASHSEED``), which is what the
artifact cache keys on.  Fragment hashes (:meth:`Scenario.trace_key`,
:meth:`Scenario.forecast_key`, :meth:`Scenario.solve_key`) cover only
the inputs each pipeline stage actually consumes, so changing a policy
invalidates its solve without invalidating the traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from datetime import datetime, timedelta
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..forecast import (
    ClimatologyForecaster,
    NoisyOracleForecaster,
    PersistenceForecaster,
)
from ..forecast.models import HorizonNoise
from ..supply import SupplySpec
from ..traces import SiteCatalog, default_european_catalog
from ..units import TimeGrid
from .defaults import (
    CACHE_CODE_VERSION,
    DEFAULT_CORES_PER_SITE,
    DEFAULT_UTILIZATION,
)

#: Version of the serialized scenario format.
SCHEMA_VERSION = 1

_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%S"


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendition: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fragment_hash(fragment: Mapping[str, Any]) -> str:
    """Stable SHA-256 content key of a scenario fragment.

    The code version is folded in so artifacts cached by older code are
    never mistaken for current ones.
    """
    payload = canonical_json(
        {"code_version": CACHE_CODE_VERSION, "fragment": fragment}
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def grid_to_dict(grid: TimeGrid) -> dict[str, Any]:
    """Serialize a :class:`TimeGrid` to plain JSON types."""
    return {
        "start": grid.start.strftime(_TIMESTAMP_FORMAT),
        "step_seconds": grid.step_seconds,
        "n": grid.n,
    }


def grid_from_dict(data: Mapping[str, Any]) -> TimeGrid:
    """Rebuild a :class:`TimeGrid` written by :func:`grid_to_dict`."""
    try:
        return TimeGrid(
            datetime.strptime(data["start"], _TIMESTAMP_FORMAT),
            timedelta(seconds=float(data["step_seconds"])),
            int(data["n"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ConfigurationError(f"malformed grid dict: {data!r}") from exc


def trace_fragment(
    catalog: SiteCatalog, grid: TimeGrid, seed: int
) -> dict[str, Any]:
    """The inputs that determine a multi-site trace synthesis.

    Includes each site's coordinates and capacity (synthesis correlates
    weather by distance), so editing the catalog invalidates the cache.
    """
    return {
        "kind": "traces",
        "schema": SCHEMA_VERSION,
        "sites": [asdict(site) for site in catalog],
        "grid": grid_to_dict(grid),
        "seed": seed,
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """What runs on the sites.

    Attributes:
        kind: ``"applications"`` (the §3.1 co-scheduler pipeline) or
            ``"vm_requests"`` (the §3 single-site Datacenter pipeline).
        count: Number of applications (``applications`` mode only).
        mean_vm_count: Mean of the per-application VM-count distribution.
        mean_duration_days: Mean application duration.
        stable_fraction: STABLE share of each application's VMs.
        arrival_window_fraction: Applications arrive uniformly over this
            leading fraction of the grid.
        utilization: Admission / demand-matching utilization target
            (``vm_requests`` mode; the paper uses 0.70).
    """

    kind: str = "applications"
    count: int = 150
    mean_vm_count: float = 24.0
    mean_duration_days: float = 3.0
    stable_fraction: float = 0.5
    arrival_window_fraction: float = 0.5
    utilization: float = DEFAULT_UTILIZATION

    def __post_init__(self) -> None:
        if self.kind not in ("applications", "vm_requests"):
            raise ConfigurationError(
                f"unknown workload kind: {self.kind!r}"
            )
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1: {self.count}")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in (0,1]: {self.utilization}"
            )


@dataclass(frozen=True)
class ForecasterSpec:
    """Which forecaster plans the placement, and its noise calibration.

    Attributes:
        kind: ``"noisy_oracle"`` (default, the paper's calibrated
            forecaster), ``"persistence"``, or ``"climatology"``.
        noise_scale: Sigma at a 1-hour lead (noisy oracle only).
        noise_exponent: Power-law growth of sigma with lead hours.
        max_sigma: Ceiling on sigma.
        correlation: AR(1) coefficient of the within-window error.
    """

    kind: str = "noisy_oracle"
    noise_scale: float = 0.069
    noise_exponent: float = 0.45
    max_sigma: float = 1.2
    correlation: float = 0.97

    def __post_init__(self) -> None:
        if self.kind not in ("noisy_oracle", "persistence", "climatology"):
            raise ConfigurationError(
                f"unknown forecaster kind: {self.kind!r}"
            )

    def build(self, seed: int):
        """Instantiate the forecaster this spec describes."""
        if self.kind == "persistence":
            return PersistenceForecaster()
        if self.kind == "climatology":
            return ClimatologyForecaster()
        noise = HorizonNoise(
            scale=self.noise_scale,
            exponent=self.noise_exponent,
            max_sigma=self.max_sigma,
            correlation=self.correlation,
        )
        return NoisyOracleForecaster(noise=noise, seed=seed)


@dataclass(frozen=True)
class PolicySpec:
    """One scheduling policy to evaluate.

    Attributes:
        name: Display label (``"Greedy"``, ``"MIP-peak"``, ...); must be
            unique within a scenario.
        kind: ``"greedy"``, ``"mip"``, or ``"rolling_mip"``.
        peak_weight: O2 weight; positive gives the paper's *MIP-peak*.
        time_limit_s: HiGHS wall-clock limit per solve.
        window_steps: Lookahead per solve (``rolling_mip`` only).
        day_ahead_forecasts: Refresh forecasts at each rolling solve
            (``rolling_mip`` only) instead of slicing the initial ones.
        decompose: Decomposition spec token for ``"mip"`` policies
            (e.g. ``"window:24,relax-fix"``), parsed by
            :meth:`repro.sched.DecomposeSpec.parse`; ``None`` solves
            monolithically.  Part of the result cache key.
        carbon_weight: Weight on grid-import carbon in the MIP
            objective ($ per kgCO2-equivalent); only meaningful when
            the scenario's supply spec prices the grid.  Part of the
            result cache key.
    """

    name: str
    kind: str = "mip"
    peak_weight: float = 0.0
    time_limit_s: float = 120.0
    window_steps: int = 24
    day_ahead_forecasts: bool = True
    decompose: str | None = None
    carbon_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("greedy", "mip", "rolling_mip"):
            raise ConfigurationError(
                f"unknown policy kind: {self.kind!r}"
            )
        if self.carbon_weight < 0:
            raise ConfigurationError(
                f"carbon_weight must be >= 0: {self.carbon_weight}"
            )
        if not self.name:
            raise ConfigurationError("policy needs a non-empty name")
        if self.decompose is not None:
            if self.kind != "mip":
                raise ConfigurationError(
                    "decompose applies to 'mip' policies only, got"
                    f" kind={self.kind!r}"
                )
            from ..sched import DecomposeSpec

            try:
                DecomposeSpec.parse(self.decompose)
            except Exception as exc:
                raise ConfigurationError(
                    f"invalid decompose spec {self.decompose!r}: {exc}"
                ) from exc

    def build(self, capacity_provider=None):
        """Instantiate the scheduler this spec describes.

        Args:
            capacity_provider: ``(site, issue_step, horizon) -> cores``
                callable for day-ahead rolling solves; built by the
                runner from the scenario's forecaster.
        """
        from ..sched import (
            GreedyScheduler,
            MIPScheduler,
            RollingMIPScheduler,
        )

        if self.kind == "greedy":
            return GreedyScheduler()
        if self.kind == "rolling_mip":
            return RollingMIPScheduler(
                window_steps=self.window_steps,
                capacity_provider=(
                    capacity_provider if self.day_ahead_forecasts else None
                ),
                time_limit_s=self.time_limit_s,
                peak_weight=self.peak_weight,
            )
        return MIPScheduler(
            peak_weight=self.peak_weight,
            time_limit_s=self.time_limit_s,
            decompose=self.decompose,
        )


@dataclass(frozen=True)
class ComputeSpec:
    """Shape of the co-located compute the scheduler sees.

    Attributes:
        cores_per_site: Physical core capacity per site.
        utilization_cap: Maximum allocated fraction of a site's cores.
        bytes_per_core: Migration traffic per displaced stable core;
            derived from the workload's memory mix when ``None``.
    """

    cores_per_site: int = DEFAULT_CORES_PER_SITE
    utilization_cap: float = 0.9
    bytes_per_core: float | None = None

    def __post_init__(self) -> None:
        if self.cores_per_site < 1:
            raise ConfigurationError(
                f"cores_per_site must be >= 1: {self.cores_per_site}"
            )
        if not 0.0 < self.utilization_cap <= 1.0:
            raise ConfigurationError(
                f"utilization cap must be in (0,1]: {self.utilization_cap}"
            )


@dataclass(frozen=True)
class Scenario:
    """A complete, hashable description of one experiment.

    Attributes:
        name: Human label; part of the content hash but *not* of any
            artifact fragment, so renaming a scenario keeps its cache.
        sites: Catalog site names, in evaluation order.
        grid: The experiment time grid.
        workload: What runs on the sites.
        forecaster: How capacity is predicted for planning.
        policies: Scheduling policies to evaluate (``applications``
            mode; may be empty for ``vm_requests`` scenarios).
        compute: Cluster shape per site.
        supply: Per-site supply stack (battery / firm grid) composed
            behind every trace; the default is disabled (pass-through,
            hash-stable with pre-supply scenarios only via the cache
            version bump).
        seed: Master seed; per-stage seeds derive from it unless pinned.
        trace_seed: Explicit trace-synthesis seed (default ``seed``).
        workload_seed: Explicit workload seed (default ``seed + 1``).
        forecast_seed: Explicit forecaster seed (default ``seed + 2``).
    """

    name: str
    sites: tuple[str, ...]
    grid: TimeGrid
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    forecaster: ForecasterSpec = field(default_factory=ForecasterSpec)
    policies: tuple[PolicySpec, ...] = ()
    compute: ComputeSpec = field(default_factory=ComputeSpec)
    supply: SupplySpec = field(default_factory=SupplySpec)
    seed: int = 0
    trace_seed: int | None = None
    workload_seed: int | None = None
    forecast_seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if not self.sites:
            raise ConfigurationError("scenario needs at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise ConfigurationError(
                f"duplicate sites in scenario: {self.sites}"
            )
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate policy names: {names}")

    # ------------------------------------------------------------------
    # Seeds
    # ------------------------------------------------------------------

    @property
    def effective_trace_seed(self) -> int:
        """Seed driving trace synthesis."""
        return self.seed if self.trace_seed is None else self.trace_seed

    @property
    def effective_workload_seed(self) -> int:
        """Seed driving workload generation."""
        if self.workload_seed is None:
            return self.seed + 1
        return self.workload_seed

    @property
    def effective_forecast_seed(self) -> int:
        """Seed driving the forecaster."""
        if self.forecast_seed is None:
            return self.seed + 2
        return self.forecast_seed

    def seeds_dict(self) -> dict[str, int]:
        """All effective seeds, for the run manifest."""
        return {
            "master": self.seed,
            "traces": self.effective_trace_seed,
            "workload": self.effective_workload_seed,
            "forecast": self.effective_forecast_seed,
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition of this scenario."""
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "sites": list(self.sites),
            "grid": grid_to_dict(self.grid),
            "workload": asdict(self.workload),
            "forecaster": asdict(self.forecaster),
            "policies": [asdict(p) for p in self.policies],
            "compute": asdict(self.compute),
            "supply": self.supply.to_dict(),
            "seed": self.seed,
            "trace_seed": self.trace_seed,
            "workload_seed": self.workload_seed,
            "forecast_seed": self.forecast_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario written by :meth:`to_dict`.

        Raises:
            ConfigurationError: on a wrong schema version or malformed
                fields.
        """
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported scenario schema {schema!r}"
                f" (expected {SCHEMA_VERSION})"
            )
        try:
            return cls(
                name=data["name"],
                sites=tuple(data["sites"]),
                grid=grid_from_dict(data["grid"]),
                workload=WorkloadSpec(**data["workload"]),
                forecaster=ForecasterSpec(**data["forecaster"]),
                policies=tuple(
                    PolicySpec(**p) for p in data.get("policies", [])
                ),
                compute=ComputeSpec(**data["compute"]),
                supply=SupplySpec.from_dict(data.get("supply", {})),
                seed=int(data["seed"]),
                trace_seed=data.get("trace_seed"),
                workload_seed=data.get("workload_seed"),
                forecast_seed=data.get("forecast_seed"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed scenario dict: {exc}"
            ) from exc

    def to_json(self) -> str:
        """Canonical JSON text of this scenario."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Content hashes
    # ------------------------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 of the canonical serialization — stable across
        processes and machines."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def catalog(self) -> SiteCatalog:
        """The scenario's sites resolved against the default catalog."""
        return default_european_catalog().subset(self.sites)

    def trace_fragment(self) -> dict[str, Any]:
        """Inputs that determine the synthesized traces."""
        return trace_fragment(
            self.catalog(), self.grid, self.effective_trace_seed
        )

    def trace_key(self) -> str:
        """Cache key for the synthesized multi-site traces."""
        return fragment_hash(self.trace_fragment())

    def forecast_fragment(self) -> dict[str, Any]:
        """Inputs that determine the forecast capacity series.

        The supply spec participates: capacities are derived from the
        stack firmed open-loop into the forecast, so a battery change
        must invalidate cached capacity arrays (and, transitively,
        every solve built on them).
        """
        return {
            "kind": "forecast-capacity",
            "trace": self.trace_fragment(),
            "forecaster": asdict(self.forecaster),
            "seed": self.effective_forecast_seed,
            "cores_per_site": self.compute.cores_per_site,
            "supply": self.supply.to_dict(),
        }

    def forecast_key(self) -> str:
        """Cache key for the per-site forecast capacity arrays."""
        return fragment_hash(self.forecast_fragment())

    def solve_fragment(self, policy: PolicySpec) -> dict[str, Any]:
        """Inputs that determine one policy's placement solve."""
        return {
            "kind": "solve",
            "forecast": self.forecast_fragment(),
            "workload": asdict(self.workload),
            "workload_seed": self.effective_workload_seed,
            "compute": asdict(self.compute),
            "policy": asdict(policy),
        }

    def solve_key(self, policy: PolicySpec) -> str:
        """Cache key for one policy's placement."""
        return fragment_hash(self.solve_fragment(policy))
