"""The staged experiment runner.

:class:`Runner` executes a :class:`~repro.experiments.scenario.Scenario`
through the canonical pipeline —

``applications`` workloads (the §3.1 co-scheduler study)::

    traces -> workload -> forecast -> solve:<policy> -> execute:<policy>
           -> analyze

``vm_requests`` workloads (the §3 single-site migration study)::

    traces -> workload:<site> -> simulate:<site> -> analyze

Multi-site ``vm_requests`` scenarios collapse the per-site simulate
stages into one ``simulate:fleet`` stage: all sites advance through the
columnar :class:`~repro.sim.fleet.FleetEngine`, result-identical to the
per-site loop.

— consulting the artifact cache for the expensive stages (trace
synthesis, forecast capacities, MIP solves) and recording a
:class:`~repro.experiments.telemetry.RunManifest` with per-stage wall
times, cache hits, seeds, and artifact content keys.
"""

from __future__ import annotations

import contextvars
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

import numpy as np

from .. import obs
from ..cluster import Datacenter, DatacenterConfig, SimulationResult
from ..errors import ConfigurationError
from ..sched import (
    GridPricing,
    Placement,
    SchedulingProblem,
    SiteCapacity,
)
from ..sched.problem import default_bytes_per_core
from ..sim import (
    ExecutionResult,
    FleetEngine,
    FleetSite,
    PolicyComparison,
    execute_placement,
    simulate,
    summarize_transfers,
)
from ..supply import BatteryDispatch, SupplyStack
from ..traces import PowerTrace
from ..workload import (
    generate_applications,
    generate_vm_requests,
    workload_matched_to_power,
)
from .cache import (
    ArtifactCache,
    get_traces,
    placement_from_jsonable,
    placement_to_jsonable,
    put_traces,
)
from .scenario import Scenario
from .telemetry import RunManifest


@dataclass
class RunResult:
    """Everything a scenario execution produced.

    Attributes:
        scenario: The scenario that ran.
        manifest: Per-stage telemetry (timings, cache hits, seeds,
            artifact keys, summary).
        manifest_path: Where the manifest JSON was written, if anywhere.
        traces: Per-site synthesized (or cache-loaded) traces.
        problem: The scheduling problem (``applications`` mode).
        placements: Policy name → placement (``applications`` mode).
        executions: Policy name → realized execution.
        comparison: Table-1-style policy comparison.
        simulations: Site name → single-site simulation
            (``vm_requests`` mode).
    """

    scenario: Scenario
    manifest: RunManifest
    manifest_path: Path | None = None
    traces: dict[str, PowerTrace] = field(default_factory=dict)
    problem: SchedulingProblem | None = None
    placements: dict[str, Placement] = field(default_factory=dict)
    executions: dict[str, ExecutionResult] = field(default_factory=dict)
    comparison: PolicyComparison | None = None
    simulations: dict[str, SimulationResult] = field(default_factory=dict)


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "scenario"


def fleet_sites_for_scenario(
    scenario: Scenario,
    traces: Mapping[str, PowerTrace] | None = None,
) -> list[FleetSite]:
    """Materialize a scenario's sites as ready-to-run :class:`FleetSite`\\ s.

    The site-construction core of the Runner's ``vm_requests`` path —
    same per-site trace synthesis, power-matched workload sizing, and
    seed derivation — without the manifest/caching machinery, so live
    session backends (``repro.serve``) and ad-hoc scripts can build the
    exact fleet a :class:`~repro.experiments.Runner` would simulate.

    Args:
        scenario: A ``vm_requests`` scenario (the ``applications``
            pipeline schedules placements instead of replaying sites).
        traces: Pre-synthesized per-site traces; synthesized from the
            scenario's catalog when omitted.

    Returns:
        One :class:`FleetSite` per scenario site, in scenario order.
    """
    if scenario.workload.kind != "vm_requests":
        raise ConfigurationError(
            "fleet sites require a vm_requests workload, not"
            f" {scenario.workload.kind!r}"
        )
    if traces is None:
        from ..traces import synthesize_catalog_traces

        traces = synthesize_catalog_traces(
            scenario.catalog(),
            scenario.grid,
            seed=scenario.effective_trace_seed,
        )
    spec = scenario.workload
    config = DatacenterConfig(admission_utilization=spec.utilization)
    supply_spec = scenario.supply
    sites = []
    for index, name in enumerate(scenario.sites):
        trace = traces[name]
        # Per-site stacks: priced specs synthesize their price/carbon
        # series on the site's own trace grid.
        supply = supply_spec.build(trace) if supply_spec.enabled else None
        workload = workload_matched_to_power(
            float(trace.values.mean()),
            config.cluster.total_cores,
            utilization=spec.utilization,
        )
        requests = generate_vm_requests(
            scenario.grid,
            workload,
            seed=scenario.effective_workload_seed + index,
        )
        sites.append(
            FleetSite(
                name=name,
                config=config,
                trace=trace,
                requests=requests,
                supply=supply,
                supply_mode=supply_spec.mode,
            )
        )
    return sites


class Runner:
    """Execute a scenario's pipeline with caching and telemetry.

    Args:
        scenario: What to run.
        cache: Artifact cache to consult; built at the default location
            when omitted (and ``use_cache`` is on).
        use_cache: ``False`` disables artifact caching entirely — the
            ``--no-cache`` escape hatch.
        manifest_dir: Directory to write the run manifest JSON into;
            ``None`` keeps the manifest in memory only (it is always
            available on the returned :class:`RunResult`).
        jobs: Intra-scenario fan-out.  With ``jobs > 1`` the per-policy
            solve+execute stages (``applications`` mode) and the
            per-site simulate stages (``vm_requests`` mode) run
            concurrently on a thread pool; results and manifests are
            identical to a serial run because every concurrent task is
            self-contained (its own forecaster instance, scheduler, and
            detached stage records merged back in declaration order).
        traces: Pre-staged per-site traces.  When given, the ``traces``
            stage uses them directly instead of consulting the cache or
            synthesizing — the caller guarantees they match the
            scenario's trace fragment (:func:`run_scenarios` stages
            them once per unique trace key and ships them to workers
            through shared memory).
        traces_from_cache: Whether the pre-staged ``traces`` came out
            of the artifact cache; recorded as the traces stage's
            ``cache_hit`` so batch telemetry stays faithful.
    """

    def __init__(
        self,
        scenario: Scenario,
        cache: ArtifactCache | None = None,
        use_cache: bool = True,
        manifest_dir: str | Path | None = None,
        jobs: int = 1,
        traces: Mapping[str, PowerTrace] | None = None,
        traces_from_cache: bool | None = None,
    ):
        self.scenario = scenario
        self.cache = (cache or ArtifactCache()) if use_cache else None
        self.manifest_dir = (
            Path(manifest_dir) if manifest_dir is not None else None
        )
        self.jobs = max(1, int(jobs))
        self.preloaded_traces = dict(traces) if traces is not None else None
        self.preloaded_from_cache = traces_from_cache

    def _fan_out(self, tasks):
        """Run ``() -> value`` thunks, concurrently when ``jobs > 1``.

        Returns results in task order regardless of completion order.
        """
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        workers = min(self.jobs, len(tasks))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-stage"
        ) as pool:
            # Each task runs in a copy of the submitting context so the
            # run's trace sinks (and any ambient span) propagate into
            # the pool threads.
            futures = [
                pool.submit(contextvars.copy_context().run, task)
                for task in tasks
            ]
            return [future.result() for future in futures]

    def _worker_label(self) -> str | None:
        """Stage-record worker tag (``None`` on the main serial path)."""
        if self.jobs <= 1:
            return None
        return f"thread:{threading.current_thread().name}"

    def _supply_stack(
        self, trace: PowerTrace | None = None
    ) -> SupplyStack | None:
        """The scenario's live supply stack, or None when disabled.

        Priced specs synthesize their price/carbon series on ``trace``,
        so callers pass the site's trace and receive a per-site stack;
        unpriced specs ignore it.  Stacks are frozen — all mutable
        dispatch state lives in per-run dispatcher/evaluation objects,
        never on the stack itself.
        """
        spec = self.scenario.supply
        return spec.build(trace) if spec.enabled else None

    def _grid_pricing(
        self, traces: Mapping[str, PowerTrace]
    ) -> GridPricing | None:
        """Planner-side pricing mirroring the scenario's supply spec.

        ``None`` for unpriced or grid-less specs — the MIP then keeps
        its classic displacement-only objective.  The base pricing
        carries ``carbon_weight=0``; each policy's own weight is
        applied per solve.
        """
        scenario = self.scenario
        return GridPricing.from_supply_spec(
            scenario.supply,
            {name: traces[name] for name in scenario.sites},
            {
                name: scenario.compute.cores_per_site
                for name in scenario.sites
            },
        )

    def _firming_stack(self, trace: PowerTrace) -> SupplyStack | None:
        """Capacity-firming stack for the planner/executor path.

        When the grid is priced the MIP owns grid purchases through
        its import variables, so firming keeps only the battery — grid
        energy priced into the objective must not also inflate the
        capacity series (the same MWh would be counted twice).
        """
        spec = self.scenario.supply
        stack = self._supply_stack(trace)
        if stack is None or not (
            spec.priced and spec.grid_budget_mwh > 0
        ):
            return stack
        return SupplyStack(
            tuple(
                component
                for component in stack.components
                if isinstance(component, BatteryDispatch)
            ),
            stack.target_fraction,
        )

    def _firmed_values(
        self,
        stack: SupplyStack | None,
        grid,
        values: np.ndarray,
        like: PowerTrace,
    ) -> np.ndarray:
        """Open-loop-firm a normalized series under ``like``'s scaling."""
        if stack is None:
            return values
        return stack.apply(
            PowerTrace(grid, values, like.name, like.kind, like.capacity_mw)
        ).values

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the pipeline and return its artifacts + manifest."""
        scenario = self.scenario
        manifest = RunManifest(
            scenario_name=scenario.name,
            scenario_hash=scenario.content_hash(),
            scenario=scenario.to_dict(),
            seeds=scenario.seeds_dict(),
            cache_dir=(
                str(self.cache.directory) if self.cache is not None else None
            ),
        )
        result = RunResult(scenario=scenario, manifest=manifest)

        # Capture the run's span/metric stream so the manifest carries
        # it (and so stage timings in the report line up with the
        # manifest's stage records — they are the same measurements).
        capture = obs.MemorySink()
        with obs.add_sink(capture):
            with obs.timed_span(
                f"run:{scenario.name}",
                scenario_hash=manifest.scenario_hash,
                jobs=self.jobs,
            ):
                result.traces = self._stage_traces(manifest)
                if scenario.workload.kind == "applications":
                    self._run_applications(manifest, result)
                else:
                    self._run_vm_requests(manifest, result)
        manifest.trace = capture.records

        if self.manifest_dir is not None:
            name = _slug(scenario.name)
            path = self.manifest_dir / (
                f"manifest_{name}_{manifest.scenario_hash[:12]}.json"
            )
            result.manifest_path = manifest.write(path)
        return result

    # ------------------------------------------------------------------
    # Shared stages
    # ------------------------------------------------------------------

    def _stage_traces(
        self, manifest: RunManifest
    ) -> dict[str, PowerTrace]:
        scenario = self.scenario
        key = scenario.trace_key()
        with manifest.record("traces") as stage:
            stage.artifact = key
            traces = None
            if self.preloaded_traces is not None:
                traces = self.preloaded_traces
                stage.cache_hit = self.preloaded_from_cache
            elif self.cache is not None:
                traces = get_traces(self.cache, key)
                stage.cache_hit = traces is not None
            if traces is None:
                from ..traces import synthesize_catalog_traces

                traces = synthesize_catalog_traces(
                    scenario.catalog(),
                    scenario.grid,
                    seed=scenario.effective_trace_seed,
                )
                if self.cache is not None:
                    put_traces(self.cache, key, traces)
        manifest.artifacts["traces"] = key
        return traces

    # ------------------------------------------------------------------
    # applications mode: the co-scheduler pipeline
    # ------------------------------------------------------------------

    def _run_applications(
        self, manifest: RunManifest, result: RunResult
    ) -> None:
        scenario = self.scenario
        if not scenario.policies:
            raise ConfigurationError(
                f"scenario {scenario.name!r} has an applications workload"
                " but no policies to evaluate"
            )
        spec = scenario.workload
        grid = scenario.grid
        traces = result.traces
        cores = scenario.compute.cores_per_site

        with manifest.record("workload"):
            apps = generate_applications(
                grid,
                spec.count,
                seed=scenario.effective_workload_seed,
                mean_vm_count=spec.mean_vm_count,
                mean_duration_days=spec.mean_duration_days,
                stable_fraction=spec.stable_fraction,
                arrival_window_fraction=spec.arrival_window_fraction,
            )

        forecaster = scenario.forecaster.build(
            scenario.effective_forecast_seed
        )
        capacity = self._stage_forecast(manifest, traces, forecaster)
        pricing = self._grid_pricing(traces)
        problem = self._build_problem(apps, capacity, pricing)
        result.problem = problem

        # The fluid execution engine has no per-step demand signal, so
        # the supply stack firms the *actual* capacities open-loop —
        # the same composition the forecast capacities went through, so
        # planner and executor differ only by forecast error.  (With a
        # priced grid, _firming_stack keeps the battery only on both
        # paths; grid purchases live in the MIP's import variables.)
        firming = {
            name: self._firming_stack(traces[name])
            for name in scenario.sites
        }
        actual = {
            name: np.floor(
                self._firmed_values(
                    firming[name], scenario.grid,
                    traces[name].values, traces[name],
                )
                * cores
            )
            for name in scenario.sites
        }

        def policy_task(policy):
            # Self-contained so policies can solve concurrently: each
            # task builds its own forecaster (identical seed, so the
            # day-ahead capacity stream is deterministic per policy and
            # independent of execution order) and times its stages on
            # detached records merged back in policy order below.
            def solve():
                worker = self._worker_label()
                solve_key = scenario.solve_key(policy)
                stages = []
                with manifest.record_detached(
                    f"solve:{policy.name}", worker
                ) as stage:
                    stage.artifact = solve_key
                    placement = None
                    if self.cache is not None:
                        data = self.cache.get_json(solve_key)
                        stage.cache_hit = data is not None
                        if data is not None:
                            placement = placement_from_jsonable(data)
                    if placement is None:
                        task_forecaster = scenario.forecaster.build(
                            scenario.effective_forecast_seed
                        )

                        def day_ahead_provider(
                            site_name, issue_step, horizon
                        ):
                            forecast = task_forecaster.forecast(
                                traces[site_name], issue_step, horizon
                            )
                            values = self._firmed_values(
                                firming[site_name], forecast.grid,
                                forecast.values, traces[site_name],
                            )
                            return np.floor(values * cores)

                        scheduler = policy.build(
                            capacity_provider=day_ahead_provider
                        )
                        task_problem = problem
                        if (
                            pricing is not None
                            and policy.carbon_weight
                            != pricing.carbon_weight
                        ):
                            task_problem = replace(
                                problem,
                                grid_pricing=replace(
                                    pricing,
                                    carbon_weight=policy.carbon_weight,
                                ),
                            )
                        placement = scheduler.schedule(task_problem)
                        if self.cache is not None:
                            self.cache.put_json(
                                solve_key, placement_to_jsonable(placement)
                            )
                stages.append(stage)
                with manifest.record_detached(
                    f"execute:{policy.name}", worker
                ) as stage:
                    execution = execute_placement(
                        problem, placement, actual
                    )
                stages.append(stage)
                return solve_key, placement, execution, stages

            return solve

        outcomes = self._fan_out(
            policy_task(policy) for policy in scenario.policies
        )
        for policy, (solve_key, placement, execution, stages) in zip(
            scenario.policies, outcomes
        ):
            manifest.merge_stages(stages)
            manifest.artifacts[f"solve:{policy.name}"] = solve_key
            result.placements[policy.name] = placement
            result.executions[policy.name] = execution

        with manifest.record("analyze"):
            summaries = []
            for policy in scenario.policies:
                cost_usd = carbon_kg = 0.0
                if pricing is not None:
                    cost_usd, carbon_kg = result.placements[
                        policy.name
                    ].planned_cost(pricing)
                summaries.append(
                    summarize_transfers(
                        policy.name,
                        result.executions[
                            policy.name
                        ].total_transfer_series(),
                        cost_usd=cost_usd,
                        carbon_kg=carbon_kg,
                    )
                )
            result.comparison = PolicyComparison(summaries)
            manifest.summary = {
                "policies": result.comparison.summary_dict(),
                "executions": {
                    name: execution.summary_dict()
                    for name, execution in result.executions.items()
                },
            }

    def _stage_forecast(
        self,
        manifest: RunManifest,
        traces: Mapping[str, PowerTrace],
        forecaster,
    ) -> dict[str, np.ndarray]:
        scenario = self.scenario
        cores = scenario.compute.cores_per_site
        key = scenario.forecast_key()
        with manifest.record("forecast") as stage:
            stage.artifact = key
            capacity = None
            if self.cache is not None:
                capacity = self.cache.get_arrays(key)
                stage.cache_hit = capacity is not None
            if capacity is None:
                capacity = {}
                for name in scenario.sites:
                    forecast = forecaster.forecast(
                        traces[name], 0, scenario.grid.n
                    )
                    values = self._firmed_values(
                        self._firming_stack(traces[name]),
                        forecast.grid,
                        forecast.values, traces[name],
                    )
                    capacity[name] = np.floor(values * cores)
                if self.cache is not None:
                    self.cache.put_arrays(key, capacity)
        manifest.artifacts["forecast"] = key
        return dict(capacity)

    def _build_problem(
        self,
        apps,
        capacity: Mapping[str, np.ndarray],
        grid_pricing: GridPricing | None = None,
    ) -> SchedulingProblem:
        scenario = self.scenario
        compute = scenario.compute
        bytes_per_core = compute.bytes_per_core
        if bytes_per_core is None:
            bytes_per_core = default_bytes_per_core(apps)
        sites = tuple(
            SiteCapacity(name, compute.cores_per_site, capacity[name])
            for name in scenario.sites
        )
        return SchedulingProblem(
            scenario.grid,
            sites,
            tuple(apps),
            bytes_per_core,
            compute.utilization_cap,
            grid_pricing=grid_pricing,
        )

    # ------------------------------------------------------------------
    # vm_requests mode: the single-site Datacenter pipeline
    # ------------------------------------------------------------------

    def _run_vm_requests(
        self, manifest: RunManifest, result: RunResult
    ) -> None:
        scenario = self.scenario
        spec = scenario.workload
        config = DatacenterConfig(admission_utilization=spec.utilization)
        supply_mode = scenario.supply.mode

        def workload_task(index, name):
            def build():
                worker = self._worker_label()
                trace = result.traces[name]
                with manifest.record_detached(
                    f"workload:{name}", worker
                ) as stage:
                    workload = workload_matched_to_power(
                        float(trace.values.mean()),
                        config.cluster.total_cores,
                        utilization=spec.utilization,
                    )
                    requests = generate_vm_requests(
                        scenario.grid,
                        workload,
                        seed=scenario.effective_workload_seed + index,
                    )
                return requests, stage

            return build

        if len(scenario.sites) > 1:
            # Multi-site scenarios advance every site through one
            # columnar fleet program — identical results to the
            # per-site loop (golden-tested), one simulate stage.
            workloads = self._fan_out(
                workload_task(index, name)
                for index, name in enumerate(scenario.sites)
            )
            fleet_sites = []
            for name, (requests, stage) in zip(scenario.sites, workloads):
                manifest.merge_stages([stage])
                fleet_sites.append(
                    FleetSite(
                        name=name,
                        config=config,
                        trace=result.traces[name],
                        requests=requests,
                        supply=self._supply_stack(result.traces[name]),
                        supply_mode=supply_mode,
                    )
                )
            with manifest.record("simulate:fleet"):
                result.simulations = simulate(
                    fleet_sites, record_events=True
                )
        else:

            def site_task(index, name):
                def run_site():
                    worker = self._worker_label()
                    requests, workload_stage = workload_task(
                        index, name
                    )()
                    with manifest.record_detached(
                        f"simulate:{name}", worker
                    ) as stage:
                        simulation = simulate(
                            Datacenter(
                                config, result.traces[name],
                                supply=self._supply_stack(
                                    result.traces[name]
                                ),
                                supply_mode=supply_mode,
                            ),
                            requests,
                        )
                    return simulation, [workload_stage, stage]

                return run_site

            outcomes = self._fan_out(
                site_task(index, name)
                for index, name in enumerate(scenario.sites)
            )
            for name, (simulation, stages) in zip(
                scenario.sites, outcomes
            ):
                manifest.merge_stages(stages)
                result.simulations[name] = simulation

        with manifest.record("analyze"):
            manifest.summary = {
                "sites": {
                    name: _simulation_summary(sim)
                    for name, sim in result.simulations.items()
                }
            }


def _simulation_summary(sim: SimulationResult) -> dict[str, float]:
    """Per-site manifest summary — the ``sites`` entry of
    :meth:`~repro.cluster.SimulationResult.summary_dict`."""
    return next(iter(sim.summary_dict()["sites"].values()))


def run_scenario(
    scenario: Scenario,
    cache: ArtifactCache | None = None,
    use_cache: bool = True,
    manifest_dir: str | Path | None = None,
    jobs: int = 1,
) -> RunResult:
    """One-call convenience wrapper around :class:`Runner`."""
    return Runner(
        scenario,
        cache=cache,
        use_cache=use_cache,
        manifest_dir=manifest_dir,
        jobs=jobs,
    ).run()
