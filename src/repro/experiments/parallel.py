"""Parallel scenario execution: fan a batch of scenarios across workers.

Sweep-style studies — a seed ensemble, a parameter grid, one scenario
per catalog site — are embarrassingly parallel: every
:class:`~repro.experiments.scenario.Scenario` is a self-contained,
seeded description of one run.  :func:`run_scenarios` executes a list
of them on a pluggable executor backend:

- ``serial``  — in-process loop (the reference semantics);
- ``thread``  — :class:`~concurrent.futures.ThreadPoolExecutor`; right
  when tasks release the GIL (MIP solves in native HiGHS code) or are
  I/O-bound (warm-cache replays);
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; right
  for the pure-Python simulation pipelines, and the ``auto`` choice
  whenever more than one worker is requested.

All backends produce *identical* per-scenario
:class:`~repro.experiments.telemetry.RunManifest` result summaries:
each task derives every RNG stream from its scenario's seeds and shares
only the content-addressed :class:`~repro.experiments.cache.ArtifactCache`,
whose writes are atomic (temp file + ``os.replace``), so concurrent
workers computing the same key race benignly — last writer wins with
bit-identical content.

Traces are staged **once per unique trace key** by the batch parent
(cache lookup or synthesis), then handed to every task: serial and
thread workers receive the in-memory mapping directly, and process
workers receive a :class:`~repro.experiments.cache.SharedTraces`
handle to a ``multiprocessing.shared_memory`` segment — one memcpy
per site on attach instead of pickling year-long arrays through the
executor pipe or re-synthesizing them per worker.  The parent unlinks
every segment after the batch drains.

The worker count resolves explicit argument > ``$REPRO_JOBS`` >
``os.cpu_count()``.  Every batch returns the per-scenario manifests
plus a :class:`~repro.experiments.telemetry.FleetManifest` (wall time,
per-task timings with worker attribution, aggregate cache hit rate,
measured speedup over serial-equivalent time).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .. import obs
from ..errors import ConfigurationError
from ..traces import PowerTrace, synthesize_catalog_traces
from .cache import (
    ArtifactCache,
    SharedTraces,
    get_traces,
    load_shared_traces,
    put_traces,
    stage_shared_traces,
)
from .scenario import Scenario
from .telemetry import FleetManifest, RunManifest, TaskRecord

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: The recognized executor backends (plus ``"auto"``).
BACKENDS = ("serial", "thread", "process")


def auto_jobs() -> int:
    """Default worker count: every available CPU."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: int | None = None, fallback: int | None = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_JOBS`` > fallback.

    Args:
        jobs: Explicit request; wins when not ``None``.
        fallback: Used when neither ``jobs`` nor the environment decide;
            ``None`` means :func:`auto_jobs`.

    Raises:
        ConfigurationError: on a non-integer ``$REPRO_JOBS``.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ConfigurationError(
                f"${JOBS_ENV} must be an integer, got {env!r}"
            ) from exc
    if fallback is not None:
        return max(1, int(fallback))
    return auto_jobs()


def resolve_backend(backend: str = "auto", jobs: int = 1) -> str:
    """Pick the concrete executor backend.

    ``"auto"`` selects ``serial`` for one worker and ``process``
    otherwise (the pipelines are CPU-bound pure Python, so processes
    are the only backend that scales them).

    Raises:
        ConfigurationError: on an unknown backend name.
    """
    if backend == "auto":
        return "serial" if jobs <= 1 else "process"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {backend!r};"
            f" expected one of {('auto',) + BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class StagedTraces:
    """Traces the batch parent staged for one trace key.

    Exactly one of ``traces`` (in-process backends: the mapping itself,
    zero-copy) or ``shared`` (process backend: a shared-memory handle)
    is set.  ``cache_hit`` carries the parent's artifact-cache lookup
    outcome into each worker's ``traces`` stage record.
    """

    cache_hit: bool | None = None
    traces: Mapping[str, PowerTrace] | None = None
    shared: SharedTraces | None = None


def _run_scenario_task(
    scenario_json: str,
    cache_dir: str | None,
    manifest_dir: str | None,
    staged: StagedTraces | None = None,
) -> tuple[dict, float, str]:
    """Execute one scenario inside a worker.

    Module-level (hence picklable for the process backend).  Returns
    the run manifest as a plain dict — the full
    :class:`~repro.experiments.runner.RunResult` holds traces and
    cluster state that are expensive to ship between processes — plus
    the task's wall time and the worker's label.
    """
    import threading

    from .runner import Runner

    start = time.perf_counter()
    scenario = Scenario.from_json(scenario_json)
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    traces = None
    traces_from_cache = None
    if staged is not None:
        traces_from_cache = staged.cache_hit
        if staged.shared is not None:
            traces = load_shared_traces(staged.shared)
        else:
            traces = staged.traces
    runner = Runner(
        scenario,
        cache=cache,
        use_cache=cache is not None,
        manifest_dir=manifest_dir,
        traces=traces,
        traces_from_cache=traces_from_cache,
    )
    thread = threading.current_thread()
    if thread is threading.main_thread():
        worker = f"pid:{os.getpid()}"
    else:
        worker = f"thread:{thread.name}"
    with obs.span(
        f"task:{scenario.name}",
        scenario_hash=scenario.content_hash(),
        backend_worker=worker,
    ):
        manifest = runner.run().manifest
    for stage in manifest.stages:
        if stage.worker is None:
            stage.worker = worker
    return manifest.to_dict(), time.perf_counter() - start, worker


@dataclass
class BatchResult:
    """Everything a :func:`run_scenarios` batch produced.

    Attributes:
        scenarios: The scenarios, in submission order.
        manifests: One :class:`RunManifest` per scenario, same order.
        fleet: Batch-level telemetry (wall time, per-task timings,
            cache hit rate, measured speedup).
        fleet_path: Where the fleet manifest JSON was written, if
            anywhere.
    """

    scenarios: list[Scenario]
    manifests: list[RunManifest]
    fleet: FleetManifest
    fleet_path: Path | None = None

    def summaries(self) -> list[dict]:
        """Per-scenario result summaries, in submission order."""
        return [manifest.summary for manifest in self.manifests]


@dataclass
class ScenarioExecutor:
    """Executor abstraction over the serial/thread/process backends.

    Args:
        backend: ``"auto"``, ``"serial"``, ``"thread"``, or
            ``"process"``.
        jobs: Worker count; resolved via :func:`resolve_jobs` when
            ``None``.
    """

    backend: str = "auto"
    jobs: int | None = None
    resolved_jobs: int = field(init=False)
    resolved_backend: str = field(init=False)

    def __post_init__(self) -> None:
        self.resolved_jobs = resolve_jobs(self.jobs)
        self.resolved_backend = resolve_backend(
            self.backend, self.resolved_jobs
        )
        if self.resolved_backend == "serial":
            self.resolved_jobs = 1

    def map(self, func, payloads: Sequence[tuple]) -> list:
        """Apply ``func`` to every payload, preserving payload order."""
        payloads = list(payloads)
        workers = min(self.resolved_jobs, max(1, len(payloads)))
        if self.resolved_backend == "serial" or workers <= 1:
            return [func(*payload) for payload in payloads]
        pool_type = (
            ThreadPoolExecutor
            if self.resolved_backend == "thread"
            else ProcessPoolExecutor
        )
        with pool_type(max_workers=workers) as pool:
            futures = [pool.submit(func, *payload) for payload in payloads]
            return [future.result() for future in futures]


def run_scenarios(
    scenarios: Iterable[Scenario],
    jobs: int | None = None,
    backend: str = "auto",
    cache: ArtifactCache | None = None,
    use_cache: bool = True,
    manifest_dir: str | Path | None = None,
    fleet_manifest_path: str | Path | None = None,
) -> BatchResult:
    """Run a batch of scenarios, fanned across workers.

    Args:
        scenarios: The scenarios to execute.
        jobs: Worker count; ``None`` resolves ``$REPRO_JOBS`` then
            ``os.cpu_count()``.
        backend: ``"auto"`` (process when ``jobs > 1``), ``"serial"``,
            ``"thread"``, or ``"process"``.
        cache: Shared artifact cache; built at the default location
            when omitted (and ``use_cache`` is on).  Workers share it
            by directory — writes are atomic, so concurrent identical
            computations are safe.
        use_cache: ``False`` disables artifact caching in every worker.
        manifest_dir: Where workers write per-scenario manifest JSONs;
            in-memory only when ``None``.
        fleet_manifest_path: Where to write the fleet manifest JSON;
            not written when ``None``.

    Returns:
        A :class:`BatchResult`: per-scenario manifests in submission
        order plus the fleet summary.
    """
    scenarios = list(scenarios)
    executor = ScenarioExecutor(backend, jobs)
    if use_cache:
        cache = cache or ArtifactCache()
        cache_dir: str | None = str(cache.directory)
    else:
        cache_dir = None
    manifest_dir_arg = (
        str(manifest_dir) if manifest_dir is not None else None
    )

    start = time.perf_counter()
    # Stage traces once per unique trace key: cache lookup (or
    # synthesis + cache write) in the parent, then hand every task a
    # lightweight payload — process workers get a shared-memory handle
    # instead of pickled year-long arrays.
    keys = [scenario.trace_key() for scenario in scenarios]
    use_shm = executor.resolved_backend == "process"
    staged: dict[str, StagedTraces] = {}
    segments = []
    try:
        for scenario, key in zip(scenarios, keys):
            if key in staged:
                continue
            hit = None
            traces = None
            if cache is not None:
                traces = get_traces(cache, key)
                hit = traces is not None
            if traces is None:
                traces = synthesize_catalog_traces(
                    scenario.catalog(),
                    scenario.grid,
                    seed=scenario.effective_trace_seed,
                )
                if cache is not None:
                    put_traces(cache, key, traces)
            if use_shm:
                descriptor, segment = stage_shared_traces(traces)
                segments.append(segment)
                staged[key] = StagedTraces(
                    cache_hit=hit, shared=descriptor
                )
            else:
                staged[key] = StagedTraces(cache_hit=hit, traces=traces)
        payloads = [
            (scenario.to_json(), cache_dir, manifest_dir_arg, staged[key])
            for scenario, key in zip(scenarios, keys)
        ]
        outcomes = executor.map(_run_scenario_task, payloads)
    finally:
        for segment in segments:
            segment.close()
            segment.unlink()
    wall_seconds = time.perf_counter() - start

    manifests = [RunManifest.from_dict(data) for data, _, _ in outcomes]
    fleet = FleetManifest(
        backend=executor.resolved_backend,
        jobs=executor.resolved_jobs,
        wall_seconds=wall_seconds,
    )
    for manifest, (_, seconds, worker) in zip(manifests, outcomes):
        fleet.tasks.append(
            TaskRecord(
                scenario_name=manifest.scenario_name,
                scenario_hash=manifest.scenario_hash,
                seconds=seconds,
                worker=worker,
            )
        )
        for stage in manifest.stages:
            fleet.stage_seconds[stage.name] = (
                fleet.stage_seconds.get(stage.name, 0.0) + stage.seconds
            )
            if stage.cache_hit is not None:
                fleet.cache_lookups += 1
                fleet.cache_hits += int(stage.cache_hit)

    result = BatchResult(scenarios, manifests, fleet)
    if fleet_manifest_path is not None:
        result.fleet_path = fleet.write(fleet_manifest_path)
    return result
