"""Canonical experiment constants shared by every entry point.

Before the experiment layer existed, each consumer carried its own copy
of these values (``cli.py`` had one start date, ``benchmarks/conftest``
another, every example its own seeds).  They live here exactly once so
a scenario built from the CLI, a bench, or an example means the same
thing everywhere.
"""

from __future__ import annotations

from datetime import datetime

#: Default start date for CLI / example runs.  Matches the paper's
#: EMHIRES window (Figure 3a shows days in May 2015).
DEFAULT_START = datetime(2015, 5, 1)

#: Start date used across the benchmark harness (three months of
#: spring 2015, the paper's §2.3/§3 analysis span).
BENCH_START = datetime(2015, 3, 1)

#: Start of the one-year Figure-2b window.
YEAR_START = datetime(2015, 1, 1)

#: Default master seed for CLI / example runs.
DEFAULT_SEED = 0

#: Master seed for all benches.
BENCH_SEED = 2021

#: The paper's Figure-3 trio, used for Table 1 and the schedule CLI.
TRIO_SITES = ("NO-solar", "UK-wind", "PT-wind")

#: Core capacity of one co-located cluster (700 servers x 40 cores).
DEFAULT_CORES_PER_SITE = 28_000

#: The paper's admission-utilization setting (§3).
DEFAULT_UTILIZATION = 0.70

#: Bumped whenever the meaning of cached artifacts changes; part of
#: every cache key so stale artifacts from older code never resurface.
#: experiments-2: vectorized OU wind kernel (float-reassociation-level
#: trace changes) and per-policy forecaster instances in the runner.
#: experiments-3: event-driven simulation core (sorted-bucket server
#: pool changes placement tie-breaking within a free-core bucket) and
#: vectorized MIP assembly.
#: experiments-4: supply layer — scenarios carry a supply spec (in the
#: forecast fragment and content hash), so artifacts cached by
#: supply-unaware code must not collide with the new schema.
#: experiments-5: PolicySpec grows ``decompose`` (windowed/relax-fix
#: MIP solves); placements cached by decompose-unaware code would
#: alias the monolithic and decomposed variants of the same policy.
#: experiments-6: priced grid supply — SupplySpec grows price/carbon
#: trace and policy fields, PolicySpec grows ``carbon_weight``, and
#: cached placements carry ``planned_grid_import``; artifacts cached
#: by price-unaware code must not resurface under the new schema.
CACHE_CODE_VERSION = "repro-0.1.0/experiments-6"
