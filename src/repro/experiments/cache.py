"""Content-addressed on-disk cache for expensive pipeline artifacts.

The heavy intermediates of an experiment — months of synthesized
15-minute traces, forecast capacity series, MIP solves — are pure
functions of a scenario fragment.  :class:`ArtifactCache` stores them
under the fragment's SHA-256 content key (plus a code-version salt, see
:data:`~repro.experiments.defaults.CACHE_CODE_VERSION`), so a repeated
bench or CLI run with an unchanged scenario loads bit-identical arrays
from disk instead of regenerating them.

The cache directory defaults to ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro``.  Every consumer exposes an escape hatch (the CLI's
``--no-cache``, ``Runner(use_cache=False)``); a missing, corrupt, or
truncated entry is always treated as a miss and regenerated.

Layout: ``<dir>/<key[:2]>/<key>.npz`` for array bundles and ``.json``
for structured artifacts.  Writes go through a temp file + ``os.replace``
so concurrent runs never observe a half-written entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .. import obs
from ..traces import PowerTrace, SiteCatalog, synthesize_catalog_traces
from ..units import TimeGrid
from .scenario import fragment_hash, grid_from_dict, grid_to_dict, trace_fragment

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache directory (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def default_manifest_dir() -> Path:
    """Where run manifests land when the caller gives no directory."""
    return default_cache_dir() / "manifests"


class ArtifactCache:
    """A content-addressed store of JSON and numpy-array artifacts.

    Args:
        directory: Cache root; resolved via :func:`default_cache_dir`
            when omitted.

    Attributes:
        hits: Successful lookups since construction.
        misses: Failed lookups since construction.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({str(self.directory)!r},"
            f" hits={self.hits}, misses={self.misses})"
        )

    # ------------------------------------------------------------------

    def _path(self, key: str, suffix: str) -> Path:
        return self.directory / key[:2] / f"{key}.{suffix}"

    def _atomic_write(self, path: Path, write) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, suffix=path.suffix
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(handle, "wb") as stream:
                write(stream)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    # ------------------------------------------------------------------
    # JSON artifacts
    # ------------------------------------------------------------------

    def get_json(self, key: str) -> Any | None:
        """Load a JSON artifact, or ``None`` on miss/corruption."""
        path = self._path(key, "json")
        try:
            with path.open("rb") as stream:
                value = json.load(stream)
        except (OSError, ValueError):
            self.misses += 1
            obs.count("cache.miss", kind="json")
            return None
        self.hits += 1
        obs.count("cache.hit", kind="json")
        return value

    def put_json(self, key: str, value: Any) -> Path:
        """Store a JSON-serializable artifact under ``key``."""
        path = self._path(key, "json")
        payload = json.dumps(value).encode()
        self._atomic_write(path, lambda stream: stream.write(payload))
        return path

    # ------------------------------------------------------------------
    # Array artifacts
    # ------------------------------------------------------------------

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load an array bundle, or ``None`` on miss/corruption."""
        path = self._path(key, "npz")
        try:
            with np.load(path, allow_pickle=False) as bundle:
                value = {name: bundle[name] for name in bundle.files}
        except (OSError, ValueError, zipfile.BadZipFile):
            self.misses += 1
            obs.count("cache.miss", kind="npz")
            return None
        self.hits += 1
        obs.count("cache.hit", kind="npz")
        return value

    def put_arrays(
        self, key: str, arrays: Mapping[str, np.ndarray]
    ) -> Path:
        """Store a bundle of named arrays under ``key``."""
        path = self._path(key, "npz")
        self._atomic_write(
            path, lambda stream: np.savez(stream, **dict(arrays))
        )
        return path


# ----------------------------------------------------------------------
# Typed artifact helpers
# ----------------------------------------------------------------------

_META_KEY = "__meta__"


def put_traces(
    cache: ArtifactCache, key: str, traces: Mapping[str, PowerTrace]
) -> None:
    """Store a site-name → :class:`PowerTrace` mapping under ``key``."""
    meta = {
        "order": list(traces),
        "sites": {
            name: {
                "name": trace.name,
                "kind": trace.kind,
                "capacity_mw": trace.capacity_mw,
                "grid": grid_to_dict(trace.grid),
            }
            for name, trace in traces.items()
        },
    }
    arrays: dict[str, np.ndarray] = {
        f"values::{name}": trace.values for name, trace in traces.items()
    }
    arrays[_META_KEY] = np.array(json.dumps(meta))
    cache.put_arrays(key, arrays)


def get_traces(
    cache: ArtifactCache, key: str
) -> dict[str, PowerTrace] | None:
    """Load traces stored by :func:`put_traces`, or ``None`` on miss."""
    bundle = cache.get_arrays(key)
    if bundle is None:
        return None
    try:
        meta = json.loads(str(bundle[_META_KEY][()]))
        traces: dict[str, PowerTrace] = {}
        for name in meta["order"]:
            site = meta["sites"][name]
            traces[name] = PowerTrace(
                grid=grid_from_dict(site["grid"]),
                values=bundle[f"values::{name}"],
                name=site["name"],
                kind=site["kind"],
                capacity_mw=float(site["capacity_mw"]),
            )
    except (KeyError, ValueError):
        cache.hits -= 1
        cache.misses += 1
        obs.count("cache.miss", kind="traces-meta")
        return None
    return traces


def catalog_trace_key(
    catalog: SiteCatalog, grid: TimeGrid, seed: int
) -> str:
    """Content key of one catalog trace synthesis."""
    return fragment_hash(trace_fragment(catalog, grid, seed))


def cached_catalog_traces(
    catalog: SiteCatalog,
    grid: TimeGrid,
    seed: int,
    cache: ArtifactCache | None,
) -> dict[str, PowerTrace]:
    """Synthesize catalog traces through the cache.

    Bit-identical to calling
    :func:`~repro.traces.synthesize_catalog_traces` directly: the cache
    key covers the sites (with coordinates), grid, and seed, and cached
    arrays round-trip exactly.  Pass ``cache=None`` to bypass caching.
    """
    if cache is None:
        return synthesize_catalog_traces(catalog, grid, seed=seed)
    key = catalog_trace_key(catalog, grid, seed)
    cached = get_traces(cache, key)
    if cached is not None:
        return cached
    traces = synthesize_catalog_traces(catalog, grid, seed=seed)
    put_traces(cache, key, traces)
    return traces


# ----------------------------------------------------------------------
# Shared-memory trace bundles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SharedTraces:
    """Descriptor of a trace bundle staged in POSIX shared memory.

    A tiny, picklable handle: the segment name plus per-site metadata
    and array offsets.  Process-pool workers receive *this* instead of
    the year-long float arrays themselves — attaching to the segment
    and copying the slices out costs one memcpy per site, not a pickle
    round-trip through the executor pipe.

    Attributes:
        shm_name: Name of the ``multiprocessing.shared_memory`` segment.
        sites: Per-site metadata dicts (site key, trace name/kind/
            capacity, grid, float64 element ``offset`` and ``size``).
    """

    shm_name: str
    sites: tuple[dict, ...]


def stage_shared_traces(
    traces: Mapping[str, PowerTrace],
) -> tuple[SharedTraces, shared_memory.SharedMemory]:
    """Copy a trace mapping into one shared-memory segment.

    Returns the picklable :class:`SharedTraces` descriptor plus the
    live segment.  The caller owns the segment's lifetime: keep it
    alive while workers may attach, then ``close()`` + ``unlink()``.
    """
    total = sum(int(trace.values.size) for trace in traces.values())
    shm = shared_memory.SharedMemory(create=True, size=max(8, total * 8))
    buffer = np.ndarray((total,), dtype=np.float64, buffer=shm.buf)
    sites = []
    offset = 0
    for key, trace in traces.items():
        values = np.asarray(trace.values, dtype=np.float64)
        buffer[offset : offset + values.size] = values
        sites.append(
            {
                "site": key,
                "name": trace.name,
                "kind": trace.kind,
                "capacity_mw": float(trace.capacity_mw),
                "grid": grid_to_dict(trace.grid),
                "offset": offset,
                "size": int(values.size),
            }
        )
        offset += int(values.size)
    del buffer  # release the exported view so close() can succeed
    return SharedTraces(shm_name=shm.name, sites=tuple(sites)), shm


def load_shared_traces(descriptor: SharedTraces) -> dict[str, PowerTrace]:
    """Rebuild the trace mapping from a :class:`SharedTraces` handle.

    Copies each site's slice out of the segment (the simulation may
    outlive the segment) and closes the local attachment — the staging
    parent owns the unlink.  Pool workers share the parent's resource
    tracker, so the attach-side registration is idempotent and the
    parent's ``unlink()`` retires it exactly once.
    """
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        traces: dict[str, PowerTrace] = {}
        for site in descriptor.sites:
            values = np.frombuffer(
                shm.buf,
                dtype=np.float64,
                count=site["size"],
                offset=site["offset"] * 8,
            ).copy()
            traces[site["site"]] = PowerTrace(
                grid=grid_from_dict(site["grid"]),
                values=values,
                name=site["name"],
                kind=site["kind"],
                capacity_mw=float(site["capacity_mw"]),
            )
    finally:
        try:
            shm.close()
        except BufferError:  # a view still exported; OS reaps at exit
            pass
    return traces


# ----------------------------------------------------------------------
# Placement (MIP solve) serialization
# ----------------------------------------------------------------------


def placement_to_jsonable(placement) -> dict[str, Any]:
    """Serialize a :class:`~repro.sched.Placement` to JSON types."""
    return {
        "assignment": {
            str(app_id): dict(per_site)
            for app_id, per_site in placement.assignment.items()
        },
        "planned_displacement": {
            name: np.asarray(series, dtype=float).tolist()
            for name, series in placement.planned_displacement.items()
        },
        "preemptive": bool(placement.preemptive),
        "planned_grid_import": {
            name: np.asarray(series, dtype=float).tolist()
            for name, series in placement.planned_grid_import.items()
        },
    }


def placement_from_jsonable(data: Mapping[str, Any]):
    """Inverse of :func:`placement_to_jsonable`."""
    from ..sched import Placement

    return Placement(
        assignment={
            int(app_id): {
                site: int(count) for site, count in per_site.items()
            }
            for app_id, per_site in data["assignment"].items()
        },
        planned_displacement={
            name: np.asarray(series, dtype=float)
            for name, series in data["planned_displacement"].items()
        },
        preemptive=bool(data["preemptive"]),
        planned_grid_import={
            name: np.asarray(series, dtype=float)
            for name, series in data.get(
                "planned_grid_import", {}
            ).items()
        },
    )
