"""The experiment layer: declarative scenarios, cached artifacts,
instrumented runs.

Every entry point — the CLI, the benchmark harness, the examples —
describes an experiment as a frozen :class:`Scenario` (sites, time
grid, workload, forecaster, policies, cluster shape, seeds) and hands
it to a :class:`Runner`, which executes the staged
trace→forecast→schedule→execute→analyze pipeline:

- expensive intermediates (multi-month trace synthesis, forecast
  capacity series, MIP solves) go through a content-addressed
  :class:`ArtifactCache` keyed on scenario-fragment hashes, so repeated
  runs with an unchanged scenario load from disk;
- each run emits a :class:`RunManifest` (per-stage wall time, cache
  hit/miss, seeds, artifact hashes, result summary) written as JSON
  next to the text reports;
- batches of scenarios fan out across workers via
  :func:`run_scenarios` (serial/thread/process backends, ``--jobs`` /
  ``$REPRO_JOBS``), sharing the artifact cache and emitting a
  :class:`FleetManifest` with per-task timings and measured speedup.

Quickstart::

    from datetime import datetime, timedelta
    from repro.experiments import PolicySpec, Scenario, WorkloadSpec, run_scenario
    from repro.units import TimeGrid

    scenario = Scenario(
        name="demo",
        sites=("NO-solar", "UK-wind", "PT-wind"),
        grid=TimeGrid(datetime(2015, 5, 1), timedelta(hours=1), 7 * 24),
        workload=WorkloadSpec(count=100),
        policies=(PolicySpec("Greedy", "greedy"), PolicySpec("MIP", "mip")),
    )
    result = run_scenario(scenario)
    print(result.comparison.as_table())
    print(result.manifest.cache_hits())
"""

from .cache import (
    ArtifactCache,
    cached_catalog_traces,
    catalog_trace_key,
    default_cache_dir,
    default_manifest_dir,
)
from .defaults import (
    BENCH_SEED,
    BENCH_START,
    DEFAULT_CORES_PER_SITE,
    DEFAULT_SEED,
    DEFAULT_START,
    DEFAULT_UTILIZATION,
    TRIO_SITES,
    YEAR_START,
)
from .parallel import (
    BatchResult,
    ScenarioExecutor,
    auto_jobs,
    resolve_backend,
    resolve_jobs,
    run_scenarios,
)
from .runner import Runner, RunResult, run_scenario
from .scenario import (
    ComputeSpec,
    ForecasterSpec,
    PolicySpec,
    Scenario,
    WorkloadSpec,
)
from ..supply import SupplySpec
from .telemetry import FleetManifest, RunManifest, StageRecord, TaskRecord

__all__ = [
    "ArtifactCache",
    "cached_catalog_traces",
    "catalog_trace_key",
    "default_cache_dir",
    "default_manifest_dir",
    "BENCH_SEED",
    "BENCH_START",
    "DEFAULT_CORES_PER_SITE",
    "DEFAULT_SEED",
    "DEFAULT_START",
    "DEFAULT_UTILIZATION",
    "TRIO_SITES",
    "YEAR_START",
    "Runner",
    "RunResult",
    "run_scenario",
    "BatchResult",
    "ScenarioExecutor",
    "auto_jobs",
    "resolve_backend",
    "resolve_jobs",
    "run_scenarios",
    "ComputeSpec",
    "ForecasterSpec",
    "PolicySpec",
    "Scenario",
    "SupplySpec",
    "WorkloadSpec",
    "FleetManifest",
    "RunManifest",
    "StageRecord",
    "TaskRecord",
]
