"""Per-stage run telemetry: the :class:`RunManifest`.

Every :class:`~repro.experiments.runner.Runner` execution emits a
structured manifest — per-stage wall time, cache hit/miss, the RNG
seeds in effect, the content keys of the artifacts it touched, and a
summary of the results — written as JSON next to the text reports.
Repeatability questions ("did the second bench run actually hit the
cache?", "which seed produced this table?") are answered by reading the
manifest instead of re-running the experiment.

Stage timing is built on :mod:`repro.obs`: every
:meth:`RunManifest.record` opens a ``stage:<name>`` span and fills the
:class:`StageRecord` from the span's measurements, so the manifest is a
projection of the same span stream a trace sink sees (no second timer).
The runner captures that stream with an in-memory sink and attaches it
as :attr:`RunManifest.trace`, which ``repro report`` renders.
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from .. import obs


@dataclass
class StageRecord:
    """Telemetry for one pipeline stage.

    Attributes:
        name: Stage label, e.g. ``"traces"`` or ``"solve:MIP-peak"``.
        seconds: Wall-clock duration.
        cache_hit: ``True``/``False`` when the stage consulted the
            artifact cache; ``None`` for uncached stages.
        artifact: Content key of the artifact the stage produced or
            loaded, when it has one.
        worker: Label of the worker that executed the stage
            (``"pid:1234"`` / ``"thread:solve-0"``); ``None`` for the
            main thread of a serial run.
    """

    name: str
    seconds: float = 0.0
    cache_hit: bool | None = None
    artifact: str | None = None
    worker: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
            "artifact": self.artifact,
            "worker": self.worker,
        }


@dataclass
class RunManifest:
    """Structured record of one scenario execution.

    Attributes:
        scenario_name: The scenario's human label.
        scenario_hash: :meth:`Scenario.content_hash` of the scenario.
        scenario: The scenario's full serialized form.
        seeds: Effective per-stage RNG seeds.
        stages: Per-stage telemetry, in execution order.
        artifacts: Artifact label → content key.
        summary: Result summary statistics (policy tables, per-site
            availability, ...).
        cache_dir: Cache root used, or ``None`` when caching was off.
        created: ISO timestamp of when the run started.
        trace: The run's full observability record stream (span and
            metric dicts, see :mod:`repro.obs`) as captured by the
            runner's in-memory sink; rendered by ``repro report``.
    """

    scenario_name: str
    scenario_hash: str
    scenario: dict[str, Any]
    seeds: dict[str, int]
    stages: list[StageRecord] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    cache_dir: str | None = None
    created: str = field(
        default_factory=lambda: datetime.now().isoformat(timespec="seconds")
    )
    trace: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------

    @contextmanager
    def _span_stage(
        self, name: str, worker: str | None, attach: bool
    ) -> Iterator[StageRecord]:
        """One stage = one ``stage:<name>`` span.

        The :class:`StageRecord` is a projection of the span: its
        ``seconds`` is the span's wall time and its ``worker`` defaults
        to the span's thread attribution.  The span always measures
        (:func:`repro.obs.timed_span`) so manifests work with no sinks
        active, and carries the stage's cache-hit/artifact attributes
        when it emits.
        """
        stage = StageRecord(name, worker=worker)
        span = obs.timed_span("stage:" + name)
        span.__enter__()
        try:
            yield stage
        finally:
            span.set(cache_hit=stage.cache_hit, artifact=stage.artifact)
            span.__exit__(*sys.exc_info())
            stage.seconds = span.wall_s
            if stage.worker is None:
                stage.worker = span.worker
            if attach:
                self.stages.append(stage)

    def record(self, name: str):
        """Time a stage (as a span) and append its record.

        Usage::

            with manifest.record("traces") as stage:
                ...
                stage.cache_hit = True
        """
        return self._span_stage(name, worker=None, attach=True)

    def record_detached(self, name: str, worker: str | None = None):
        """Time a stage *without* appending it to :attr:`stages`.

        Concurrent stages (policy solves fanned across workers) each
        time themselves detached, then the caller merges the finished
        records in a deterministic order via :meth:`merge_stages` —
        keeping the manifest's stage order independent of worker
        scheduling.
        """
        return self._span_stage(name, worker=worker, attach=False)

    def merge_stages(self, stages: Iterable[StageRecord]) -> None:
        """Append detached per-worker stage records, in the given order."""
        self.stages.extend(stages)

    def stage(self, name: str) -> StageRecord:
        """The named stage record.

        Raises:
            KeyError: when no stage of that name was recorded.
        """
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(
            f"no stage named {name!r};"
            f" recorded: {[s.name for s in self.stages]}"
        )

    def cache_hits(self) -> dict[str, bool]:
        """Hit/miss per cache-aware stage."""
        return {
            stage.name: stage.cache_hit
            for stage in self.stages
            if stage.cache_hit is not None
        }

    def all_cache_hits(self) -> bool:
        """True when every cache-aware stage hit (a fully warm run)."""
        hits = self.cache_hits()
        return bool(hits) and all(hits.values())

    def total_seconds(self) -> float:
        """Sum of all stage durations."""
        return sum(stage.seconds for stage in self.stages)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition of the whole manifest."""
        return {
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "created": self.created,
            "cache_dir": self.cache_dir,
            "seeds": dict(self.seeds),
            "stages": [stage.to_dict() for stage in self.stages],
            "artifacts": dict(self.artifacts),
            "summary": self.summary,
            "scenario": self.scenario,
            "trace": list(self.trace),
        }

    def to_json(self) -> str:
        """Indented JSON text of the manifest."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` form."""
        return cls(
            scenario_name=data["scenario_name"],
            scenario_hash=data["scenario_hash"],
            scenario=dict(data["scenario"]),
            seeds=dict(data["seeds"]),
            stages=[
                StageRecord(
                    name=s["name"],
                    seconds=s["seconds"],
                    cache_hit=s["cache_hit"],
                    artifact=s.get("artifact"),
                    worker=s.get("worker"),
                )
                for s in data["stages"]
            ],
            artifacts=dict(data["artifacts"]),
            summary=dict(data["summary"]),
            cache_dir=data.get("cache_dir"),
            created=data.get("created", ""),
            trace=list(data.get("trace", [])),
        )

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        """Load a manifest previously written by :meth:`write`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Fleet-level telemetry: one record per batch of scenarios
# ----------------------------------------------------------------------


@dataclass
class TaskRecord:
    """Timing of one scenario task inside a batch run.

    Attributes:
        scenario_name: The scenario's human label.
        scenario_hash: Its content hash.
        seconds: Task wall-clock time as measured inside the worker
            (synthesis + pipeline + manifest write).
        worker: Which worker executed it (``"pid:1234"`` for the
            serial and process backends, ``"thread:..."`` for the
            thread backend).
    """

    scenario_name: str
    scenario_hash: str
    seconds: float
    worker: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition."""
        return {
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "seconds": self.seconds,
            "worker": self.worker,
        }


@dataclass
class FleetManifest:
    """Summary telemetry of one :func:`~repro.experiments.run_scenarios`
    batch.

    Attributes:
        backend: Executor backend that ran the batch (``serial`` /
            ``thread`` / ``process``).
        jobs: Worker count.
        wall_seconds: Batch wall-clock time, fan-out included.
        tasks: Per-scenario task timings, in submission order.
        cache_hits: Artifact-cache hits summed over every stage of
            every scenario manifest.
        cache_lookups: Cache-aware stage count over the whole batch.
        stage_seconds: Stage name → total seconds across all scenarios
            (per-worker stage timings merged from the run manifests).
        created: ISO timestamp of when the batch started.
    """

    backend: str
    jobs: int
    wall_seconds: float = 0.0
    tasks: list[TaskRecord] = field(default_factory=list)
    cache_hits: int = 0
    cache_lookups: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    created: str = field(
        default_factory=lambda: datetime.now().isoformat(timespec="seconds")
    )

    def task_seconds(self) -> float:
        """Serial-equivalent time: the sum of per-task wall times."""
        return sum(task.seconds for task in self.tasks)

    def speedup(self) -> float:
        """Measured parallel-efficiency figure of the batch.

        The ratio of serial-equivalent time (sum of per-task wall
        times) to batch wall time.  On uncontended hardware this equals
        the true speedup over a serial run; when workers share
        oversubscribed cores the per-task times inflate, so compare
        jobs=1 vs jobs=N wall clocks (as the perf benchmark does) for
        an end-to-end number.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.task_seconds() / self.wall_seconds

    def cache_hit_rate(self) -> float:
        """Fraction of cache-aware stages that hit, over the batch."""
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition of the fleet summary."""
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "created": self.created,
            "n_scenarios": len(self.tasks),
            "wall_seconds": self.wall_seconds,
            "task_seconds": self.task_seconds(),
            "speedup": self.speedup(),
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "cache_hit_rate": self.cache_hit_rate(),
            "stage_seconds": dict(self.stage_seconds),
            "tasks": [task.to_dict() for task in self.tasks],
        }

    def to_json(self) -> str:
        """Indented JSON text of the fleet manifest."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Write the fleet manifest JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetManifest":
        """Rebuild a fleet manifest from its :meth:`to_dict` form."""
        return cls(
            backend=data["backend"],
            jobs=int(data["jobs"]),
            wall_seconds=float(data["wall_seconds"]),
            tasks=[
                TaskRecord(
                    scenario_name=t["scenario_name"],
                    scenario_hash=t["scenario_hash"],
                    seconds=float(t["seconds"]),
                    worker=t.get("worker"),
                )
                for t in data.get("tasks", [])
            ],
            cache_hits=int(data.get("cache_hits", 0)),
            cache_lookups=int(data.get("cache_lookups", 0)),
            stage_seconds={
                name: float(seconds)
                for name, seconds in data.get("stage_seconds", {}).items()
            },
            created=data.get("created", ""),
        )

    @classmethod
    def read(cls, path: str | Path) -> "FleetManifest":
        """Load a fleet manifest previously written by :meth:`write`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
