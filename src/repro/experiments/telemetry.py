"""Per-stage run telemetry: the :class:`RunManifest`.

Every :class:`~repro.experiments.runner.Runner` execution emits a
structured manifest — per-stage wall time, cache hit/miss, the RNG
seeds in effect, the content keys of the artifacts it touched, and a
summary of the results — written as JSON next to the text reports.
Repeatability questions ("did the second bench run actually hit the
cache?", "which seed produced this table?") are answered by reading the
manifest instead of re-running the experiment.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Any, Iterator, Mapping


@dataclass
class StageRecord:
    """Telemetry for one pipeline stage.

    Attributes:
        name: Stage label, e.g. ``"traces"`` or ``"solve:MIP-peak"``.
        seconds: Wall-clock duration.
        cache_hit: ``True``/``False`` when the stage consulted the
            artifact cache; ``None`` for uncached stages.
        artifact: Content key of the artifact the stage produced or
            loaded, when it has one.
    """

    name: str
    seconds: float = 0.0
    cache_hit: bool | None = None
    artifact: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
            "artifact": self.artifact,
        }


@dataclass
class RunManifest:
    """Structured record of one scenario execution.

    Attributes:
        scenario_name: The scenario's human label.
        scenario_hash: :meth:`Scenario.content_hash` of the scenario.
        scenario: The scenario's full serialized form.
        seeds: Effective per-stage RNG seeds.
        stages: Per-stage telemetry, in execution order.
        artifacts: Artifact label → content key.
        summary: Result summary statistics (policy tables, per-site
            availability, ...).
        cache_dir: Cache root used, or ``None`` when caching was off.
        created: ISO timestamp of when the run started.
    """

    scenario_name: str
    scenario_hash: str
    scenario: dict[str, Any]
    seeds: dict[str, int]
    stages: list[StageRecord] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    cache_dir: str | None = None
    created: str = field(
        default_factory=lambda: datetime.now().isoformat(timespec="seconds")
    )

    # ------------------------------------------------------------------

    @contextmanager
    def record(self, name: str) -> Iterator[StageRecord]:
        """Time a stage and append its record.

        Usage::

            with manifest.record("traces") as stage:
                ...
                stage.cache_hit = True
        """
        stage = StageRecord(name)
        start = time.perf_counter()
        try:
            yield stage
        finally:
            stage.seconds = time.perf_counter() - start
            self.stages.append(stage)

    def stage(self, name: str) -> StageRecord:
        """The named stage record.

        Raises:
            KeyError: when no stage of that name was recorded.
        """
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(
            f"no stage named {name!r};"
            f" recorded: {[s.name for s in self.stages]}"
        )

    def cache_hits(self) -> dict[str, bool]:
        """Hit/miss per cache-aware stage."""
        return {
            stage.name: stage.cache_hit
            for stage in self.stages
            if stage.cache_hit is not None
        }

    def all_cache_hits(self) -> bool:
        """True when every cache-aware stage hit (a fully warm run)."""
        hits = self.cache_hits()
        return bool(hits) and all(hits.values())

    def total_seconds(self) -> float:
        """Sum of all stage durations."""
        return sum(stage.seconds for stage in self.stages)

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types rendition of the whole manifest."""
        return {
            "scenario_name": self.scenario_name,
            "scenario_hash": self.scenario_hash,
            "created": self.created,
            "cache_dir": self.cache_dir,
            "seeds": dict(self.seeds),
            "stages": [stage.to_dict() for stage in self.stages],
            "artifacts": dict(self.artifacts),
            "summary": self.summary,
            "scenario": self.scenario,
        }

    def to_json(self) -> str:
        """Indented JSON text of the manifest."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Write the manifest JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its :meth:`to_dict` form."""
        return cls(
            scenario_name=data["scenario_name"],
            scenario_hash=data["scenario_hash"],
            scenario=dict(data["scenario"]),
            seeds=dict(data["seeds"]),
            stages=[
                StageRecord(
                    name=s["name"],
                    seconds=s["seconds"],
                    cache_hit=s["cache_hit"],
                    artifact=s.get("artifact"),
                )
                for s in data["stages"]
            ],
            artifacts=dict(data["artifacts"]),
            summary=dict(data["summary"]),
            cache_dir=data.get("cache_dir"),
            created=data.get("created", ""),
        )

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        """Load a manifest previously written by :meth:`write`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
