"""Spans, metrics, and pluggable sinks (the tracing core).

Everything observable funnels through two primitives:

- a **span**: a named, attributed, nestable interval with wall and CPU
  time and an exception flag, emitted to the active sinks when it
  closes;
- a **metric point**: a counter increment, gauge sample, or histogram
  observation, attributed to the span that was open when it fired.

Sinks receive plain dicts (one per span / metric point) so every sink
is a few lines: :class:`MemorySink` appends to a list,
:class:`JsonlSink` writes one JSON line per record.  The active sink
set is a :class:`~contextvars.ContextVar`, so ``use()`` / ``add_sink()``
scopes are per-context — a worker thread sees the caller's sinks only
when the caller copies its context into the pool (the experiment
runner does).

The default is **no sinks**, and that path is deliberately free:
:func:`span` returns a shared no-op singleton (no object allocated, no
clock read) and :func:`count` / :func:`gauge` / :func:`observe` return
before building their record.  Code that needs a measurement even when
nothing listens — the run-manifest stage timer, the MIP assembly/solve
split — uses :func:`timed_span`, which always reads the clocks and
emits only if sinks are active.

``$REPRO_TRACE=<path>`` installs a :class:`JsonlSink` as the ambient
default (resolved lazily, once per process, so worker processes
inherit tracing through the environment).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

#: Environment variable selecting a JSON-lines trace file.
TRACE_ENV = "REPRO_TRACE"

_next_span_id = itertools.count(1)

#: Span id of the innermost open span in this context (None at root).
_CURRENT: ContextVar[int | None] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Context-local sink override; ``None`` means "use the env default".
_SINKS: ContextVar[tuple | None] = ContextVar(
    "repro_obs_sinks", default=None
)

#: Lazily resolved ``$REPRO_TRACE`` sinks (per process).
_env_sinks_cache: tuple | None = None


class MemorySink:
    """Collects every emitted record in order; for tests and manifests."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def spans(self) -> list[dict[str, Any]]:
        """The span records, in completion order."""
        return [r for r in self.records if r["type"] == "span"]

    def metrics(self) -> list[dict[str, Any]]:
        """The metric-point records, in emission order."""
        return [r for r in self.records if r["type"] != "span"]


class JsonlSink:
    """Appends one JSON object per line to a file.

    The file opens lazily (first record) in append mode with line
    buffering, so several processes pointed at the same path interleave
    whole lines instead of corrupting each other.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = None
        self._lock = threading.Lock()

    def emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._file is None:
                if self.path.parent != Path("."):
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = open(
                    self.path, "a", buffering=1, encoding="utf-8"
                )
            self._file.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def _env_sinks() -> tuple:
    global _env_sinks_cache
    if _env_sinks_cache is None:
        path = os.environ.get(TRACE_ENV, "").strip()
        _env_sinks_cache = (JsonlSink(path),) if path else ()
    return _env_sinks_cache


def _active_sinks() -> tuple:
    override = _SINKS.get()
    if override is not None:
        return override
    return _env_sinks()


def enabled() -> bool:
    """True when at least one sink is active in this context.

    Hot loops use this to guard aggregate metric emission; span/metric
    calls are already self-guarding.
    """
    return bool(_active_sinks())


def reset() -> None:
    """Drop the cached ``$REPRO_TRACE`` resolution (tests, CLI)."""
    global _env_sinks_cache
    if _env_sinks_cache:
        for sink in _env_sinks_cache:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
    _env_sinks_cache = None


@contextmanager
def use(*sinks) -> Iterator[Any]:
    """Replace the active sinks within the context.

    ``with obs.use(MemorySink()) as mem: ...`` — the previous sinks
    (including the env default) are suspended until exit.
    """
    token = _SINKS.set(tuple(sinks))
    try:
        yield sinks[0] if len(sinks) == 1 else sinks
    finally:
        _SINKS.reset(token)


@contextmanager
def add_sink(sink) -> Iterator[Any]:
    """Add one sink on top of whatever is already active."""
    token = _SINKS.set(_active_sinks() + (sink,))
    try:
        yield sink
    finally:
        _SINKS.reset(token)


class Span:
    """One named, attributed, timed interval.

    Use as a context manager; on exit the span knows its ``wall_s``,
    ``cpu_s``, and ``error`` (the exception type name when the body
    raised), and emits itself to the sinks active at that moment.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "worker",
        "start_s", "wall_s", "cpu_s", "error", "_cpu0", "_token",
    )

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_next_span_id)
        self.parent_id: int | None = None
        thread = threading.current_thread()
        self.worker = (
            None
            if thread is threading.main_thread()
            else f"thread:{thread.name}"
        )
        self.start_s = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.error: str | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-flight (skips ``None`` values)."""
        for key, value in attrs.items():
            if value is not None:
                self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self.parent_id = _CURRENT.get()
        self._token = _CURRENT.set(self.span_id)
        self._cpu0 = time.process_time()
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self.start_s
        self.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            self.error = exc_type.__name__
        _CURRENT.reset(self._token)
        sinks = _active_sinks()
        if sinks:
            record = self.to_dict()
            for sink in sinks:
                sink.emit(record)
        return False

    def to_dict(self) -> dict[str, Any]:
        """The span's sink record (plain JSON types)."""
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "error": self.error,
            "worker": self.worker,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NoopSpan:
    """Shared do-nothing span returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: The singleton no-op span — identity-checkable in tests.
NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a span — free when no sinks are active.

    Returns the shared :data:`NOOP_SPAN` singleton (no allocation, no
    clock read) when tracing is disabled, so instrumented hot paths
    cost a tuple-emptiness check.  Use :func:`timed_span` when the
    measurement itself is needed regardless of sinks.
    """
    if not _active_sinks():
        return NOOP_SPAN
    return Span(name, attrs)


def timed_span(name: str, **attrs: Any) -> Span:
    """Open a span that always measures.

    ``wall_s`` / ``cpu_s`` / ``error`` are valid after exit even with
    no sinks (emission is still skipped then) — the primitive behind
    the run-manifest stage timer and the MIP assembly/solve split.
    """
    return Span(name, attrs)


def current_span_id() -> int | None:
    """Id of the innermost open span in this context, if any."""
    return _CURRENT.get()


def _metric(kind: str, name: str, value, attrs: dict[str, Any]) -> None:
    sinks = _active_sinks()
    if not sinks:
        return
    record: dict[str, Any] = {
        "type": kind,
        "name": name,
        "value": value,
        "span_id": _CURRENT.get(),
        "pid": os.getpid(),
    }
    if attrs:
        record["attrs"] = attrs
    for sink in sinks:
        sink.emit(record)


def count(name: str, value: int = 1, **attrs: Any) -> None:
    """Increment a counter (no-op without sinks)."""
    _metric("counter", name, value, attrs)


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Sample a gauge (no-op without sinks)."""
    _metric("gauge", name, value, attrs)


def observe(name: str, value: float, **attrs: Any) -> None:
    """Record one histogram observation (no-op without sinks)."""
    _metric("histogram", name, value, attrs)
