"""Render a recorded trace as a span tree with metric rollups.

Input is the flat record stream a sink captured — either a ``.jsonl``
trace file written by :class:`~repro.obs.JsonlSink` (one JSON object
per line) or the ``trace`` field of a run-manifest JSON, which the
experiment runner fills from an in-memory sink.  Output is the text
the ``repro report`` subcommand prints: the span tree (children
indented under parents, wall/CPU milliseconds, error flags, worker
labels), the top-k slowest spans, and counters/gauges/histograms
aggregated by name.

Spans from different processes never share a parent (context does not
cross ``fork``/``spawn``), so the tree is keyed by ``(pid, span_id)``
and each process's roots render side by side.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load trace records from a ``.jsonl`` trace or a manifest JSON.

    Raises:
        ValueError: when the file is neither a JSON-lines trace nor a
            manifest with a ``trace`` field.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    data = json.loads(text)
    if isinstance(data, dict) and isinstance(data.get("trace"), list):
        return list(data["trace"])
    raise ValueError(
        f"{path} holds no trace: expected a .jsonl span stream or a"
        " run-manifest JSON with a 'trace' field"
    )


def _span_key(record: Mapping[str, Any]) -> tuple:
    return (record.get("pid"), record["span_id"])


def _format_span(record: Mapping[str, Any], depth: int) -> str:
    label = "  " * depth + str(record.get("name", "?"))
    wall_ms = 1000.0 * float(record.get("wall_s", 0.0))
    cpu_ms = 1000.0 * float(record.get("cpu_s", 0.0))
    parts = [f"{label:<44} {wall_ms:>10.1f} ms  cpu {cpu_ms:>8.1f} ms"]
    if record.get("error"):
        parts.append(f"!{record['error']}")
    extras = []
    attrs = record.get("attrs") or {}
    for key, value in attrs.items():
        extras.append(f"{key}={value}")
    if record.get("worker"):
        extras.append(f"[{record['worker']}]")
    if extras:
        parts.append(" ".join(extras))
    return "  ".join(parts)


def _render_tree(spans: list[dict[str, Any]]) -> list[str]:
    by_key = {_span_key(s): s for s in spans}
    children: dict[tuple, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for record in spans:
        parent = (record.get("pid"), record.get("parent_id"))
        if record.get("parent_id") is not None and parent in by_key:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def start(record: Mapping[str, Any]) -> float:
        return float(record.get("start_s", 0.0))

    lines: list[str] = []

    def walk(record: dict[str, Any], depth: int) -> None:
        lines.append(_format_span(record, depth))
        for child in sorted(
            children.get(_span_key(record), []), key=start
        ):
            walk(child, depth + 1)

    # Roots render per process in first-seen order, by start within.
    pid_order: dict[Any, int] = {}
    for record in roots:
        pid_order.setdefault(record.get("pid"), len(pid_order))
    for record in sorted(
        roots, key=lambda r: (pid_order[r.get("pid")], start(r))
    ):
        walk(record, 0)
    return lines


def _render_metrics(metrics: list[dict[str, Any]]) -> list[str]:
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, list[float]] = {}
    for record in metrics:
        name = str(record.get("name", "?"))
        value = float(record.get("value", 0.0))
        kind = record.get("type")
        if kind == "counter":
            counters[name] = counters.get(name, 0.0) + value
        elif kind == "gauge":
            gauges[name] = value
        elif kind == "histogram":
            histograms.setdefault(name, []).append(value)
    lines: list[str] = []
    if counters:
        lines.append("Counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<42} {counters[name]:>14,.0f}")
    if gauges:
        lines.append("Gauges (last value):")
        for name in sorted(gauges):
            lines.append(f"  {name:<42} {gauges[name]:>14,.3f}")
    if histograms:
        lines.append("Histograms:")
        for name in sorted(histograms):
            values = histograms[name]
            lines.append(
                f"  {name:<30} n={len(values)}"
                f" min={min(values):.3g}"
                f" mean={sum(values) / len(values):.3g}"
                f" max={max(values):.3g}"
            )
    return lines


def render_report(
    records: Iterable[Mapping[str, Any]], top: int = 5
) -> str:
    """Text report of a trace record stream (see module docstring)."""
    records = [dict(r) for r in records]
    spans = [r for r in records if r.get("type") == "span"]
    metrics = [r for r in records if r.get("type") != "span"]
    lines = [
        f"Trace: {len(spans)} spans, {len(metrics)} metric points",
        "",
    ]
    if spans:
        lines.append("Span tree (wall / cpu):")
        lines.extend(_render_tree(spans))
        slowest = sorted(
            spans, key=lambda r: float(r.get("wall_s", 0.0)), reverse=True
        )[: max(0, top)]
        if slowest:
            lines.append("")
            lines.append(f"Top {len(slowest)} slowest spans:")
            for record in slowest:
                wall_ms = 1000.0 * float(record.get("wall_s", 0.0))
                lines.append(
                    f"  {wall_ms:>10.1f} ms  {record.get('name', '?')}"
                )
    metric_lines = _render_metrics(metrics)
    if metric_lines:
        lines.append("")
        lines.extend(metric_lines)
    return "\n".join(lines)
