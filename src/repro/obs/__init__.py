"""Structured observability: span tracing + metrics through sinks.

The library's instrumentation layer.  Hot paths open :func:`span`\\ s
(nested, attributed, wall/CPU-timed, exception-flagged) and emit
:func:`count` / :func:`gauge` / :func:`observe` metric points; both go
to whatever sinks are active:

- **nothing** (the default) — the no-op path allocates no objects and
  reads no clocks;
- :class:`MemorySink` — in-memory record list; tests and the
  experiment runner (run manifests carry the captured trace);
- :class:`JsonlSink` — one JSON line per record, selected ambiently by
  ``$REPRO_TRACE=<path>`` or the CLI's ``--trace-out``.

:func:`timed_span` always measures (the manifest stage timer and the
MIP assembly/solve split need durations even when nothing listens);
:func:`span` is the free-when-disabled variant for hot paths.  Scope
sinks with :func:`use` (replace) or :func:`add_sink` (stack); render
captured traces with :func:`render_report` / ``repro report``.
"""

from .core import (
    NOOP_SPAN,
    TRACE_ENV,
    JsonlSink,
    MemorySink,
    Span,
    add_sink,
    count,
    current_span_id,
    enabled,
    gauge,
    observe,
    reset,
    span,
    timed_span,
    use,
)
from .report import load_trace, render_report

__all__ = [
    "NOOP_SPAN",
    "TRACE_ENV",
    "JsonlSink",
    "MemorySink",
    "Span",
    "add_sink",
    "count",
    "current_span_id",
    "enabled",
    "gauge",
    "observe",
    "reset",
    "span",
    "timed_span",
    "use",
    "load_trace",
    "render_report",
]
