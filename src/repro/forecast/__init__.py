"""Power forecasting: the predictability the co-scheduler relies on.

The paper's key enabler (§3.1) is that renewable production is spiky but
*predictable*: the ELIA dataset's weather-based forecasts achieve a MAPE
of 8.5-9% at 3 hours ahead, 18-25% a day ahead, and 44-75% a week ahead.
This subpackage reproduces that structure with:

- :class:`~repro.forecast.base.Forecast` — an issued forecast on a grid.
- :class:`~repro.forecast.models.NoisyOracleForecaster` — the primary
  model: the true trace corrupted with horizon-growing noise, calibrated
  to the paper's MAPE bands.
- :class:`~repro.forecast.models.PersistenceForecaster` and
  :class:`~repro.forecast.models.ClimatologyForecaster` — classic
  baselines for comparison.
- :mod:`~repro.forecast.metrics` — MAPE/MAE/RMSE and per-horizon
  evaluation harnesses.
"""

from .base import Forecast, Forecaster
from .models import (
    ClimatologyForecaster,
    HorizonNoise,
    NoisyOracleForecaster,
    PersistenceForecaster,
    paper_calibrated_noise,
)
from .metrics import (
    mape,
    mae,
    rmse,
    smape,
    horizon_mape_profile,
)

__all__ = [
    "Forecast",
    "Forecaster",
    "ClimatologyForecaster",
    "HorizonNoise",
    "NoisyOracleForecaster",
    "PersistenceForecaster",
    "paper_calibrated_noise",
    "mape",
    "mae",
    "rmse",
    "smape",
    "horizon_mape_profile",
]
