"""Forecast models.

The workhorse is :class:`NoisyOracleForecaster`: it corrupts the true
trace with multiplicative noise whose magnitude grows with lead time,
calibrated so the resulting MAPE lands in the paper's reported bands
(3h: 8.5-9%, day: 18-25%, week: 44-75%; Figure 5).  The noise is
temporally correlated within a forecast window, so week-ahead forecasts
still "capture the general trend" — the sharp power swings that drive
migrations remain visible far in advance, which is precisely the
property the co-scheduler exploits.

Two classic baselines, persistence and climatology, bracket the oracle:
persistence is excellent at minutes and useless at days; climatology
knows the diurnal shape but nothing about weather.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ForecastError
from ..traces import PowerTrace
from .base import Forecast, check_window


@dataclass(frozen=True)
class HorizonNoise:
    """Noise magnitude as a power law of lead time.

    The relative-error standard deviation at lead time ``h`` hours is
    ``scale * h ** exponent``, capped at ``max_sigma``.  With Gaussian
    relative errors the MAPE is approximately ``0.8 * sigma``.

    Attributes:
        scale: Sigma at a 1-hour lead.
        exponent: Power-law growth rate of sigma with lead hours.
        max_sigma: Ceiling on sigma (forecasts never become pure noise).
        correlation: AR(1) coefficient of the error *within* a window,
            per step; high values make errors drift slowly so the
            forecast tracks the trend even when biased.
    """

    scale: float = 0.069
    exponent: float = 0.45
    max_sigma: float = 1.2
    correlation: float = 0.97

    def __post_init__(self) -> None:
        if self.scale < 0 or self.max_sigma < 0:
            raise ForecastError("noise magnitudes must be non-negative")
        if not 0.0 <= self.correlation < 1.0:
            raise ForecastError(
                f"correlation must be in [0,1): {self.correlation}"
            )

    def sigma(self, lead_hours: np.ndarray) -> np.ndarray:
        """Relative-error sigma for each lead time in hours."""
        lead = np.clip(np.asarray(lead_hours, dtype=float), 1e-6, None)
        return np.minimum(self.scale * lead**self.exponent, self.max_sigma)


def paper_calibrated_noise() -> HorizonNoise:
    """Noise parameters reproducing the paper's Figure-5 MAPE bands.

    ``0.069 * h^0.45`` gives sigma ~0.11 at 3 h (MAPE ~9%), ~0.29 at
    24 h (MAPE ~23%), and ~0.69 at 168 h (MAPE ~55%), matching the
    ELIA forecast quality the paper reports.
    """
    return HorizonNoise()


def _window_seed(base_seed: int, site_name: str, issue_index: int) -> int:
    """Deterministic per-(site, issue) seed so re-issuing a forecast at
    the same point yields the same prediction — the scheduler may ask
    repeatedly and must not see a different future each time."""
    digest = hashlib.sha256(
        f"{base_seed}|{site_name}|{issue_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class NoisyOracleForecaster:
    """Ground truth blurred by horizon-growing, trend-preserving noise.

    Args:
        noise: Horizon noise model; defaults to the paper calibration.
        seed: Base seed; forecasts are deterministic per (site, issue).
        nonzero_floor: Actual values below this are treated as "no
            production known in advance" — the forecast reports the
            (noisy) small value without inventing phantom power, which
            keeps solar nights exactly zero the way real PV forecasts do.
    """

    def __init__(
        self,
        noise: HorizonNoise | None = None,
        seed: int = 0,
        nonzero_floor: float = 1e-6,
    ):
        self.noise = noise or paper_calibrated_noise()
        self.seed = seed
        self.nonzero_floor = nonzero_floor

    def forecast(
        self, trace: PowerTrace, issue_index: int, window: int
    ) -> Forecast:
        """Issue a noisy-oracle forecast window."""
        check_window(trace, issue_index, window)
        grid = trace.grid.subgrid(issue_index, window)
        actual = trace.values[issue_index : issue_index + window]
        rng = np.random.default_rng(
            _window_seed(self.seed, trace.name, issue_index)
        )
        lead_hours = (np.arange(window) + 1) * trace.grid.step_hours
        sigma = self.noise.sigma(lead_hours)
        # AR(1) relative-error path with per-step stationary sigma.
        rho = self.noise.correlation
        eps = np.empty(window)
        state = rng.standard_normal()
        eps[0] = state * sigma[0]
        innovation = np.sqrt(1.0 - rho**2)
        for i in range(1, window):
            state = rho * state + innovation * rng.standard_normal()
            eps[i] = state * sigma[i]
        predicted = np.where(
            actual > self.nonzero_floor, actual * (1.0 + eps), actual
        )
        predicted = np.clip(predicted, 0.0, 1.0)
        return Forecast(grid, predicted, issue_index, trace.name)


class PersistenceForecaster:
    """Hold the last observed value constant over the window.

    The canonical short-horizon baseline: unbeatable at one step for a
    smooth process, hopeless across a diurnal cycle.
    """

    def forecast(
        self, trace: PowerTrace, issue_index: int, window: int
    ) -> Forecast:
        """Issue a flat forecast at the last observed value."""
        check_window(trace, issue_index, window)
        grid = trace.grid.subgrid(issue_index, window)
        last = trace.values[issue_index - 1] if issue_index > 0 else 0.0
        return Forecast(
            grid, np.full(window, last), issue_index, trace.name
        )


class ClimatologyForecaster:
    """Predict the historical average for each slot of the day.

    Uses only samples strictly before the issue point, so it never leaks
    the future.  With no history for a slot it predicts zero.

    Args:
        history_days: How many trailing days to average (None = all).
    """

    def __init__(self, history_days: int | None = None):
        if history_days is not None and history_days <= 0:
            raise ForecastError(
                f"history_days must be positive: {history_days}"
            )
        self.history_days = history_days

    def forecast(
        self, trace: PowerTrace, issue_index: int, window: int
    ) -> Forecast:
        """Issue a slot-of-day climatology forecast."""
        check_window(trace, issue_index, window)
        grid = trace.grid.subgrid(issue_index, window)
        per_day = trace.grid.steps_per_day()
        history_start = 0
        if self.history_days is not None:
            history_start = max(0, issue_index - self.history_days * per_day)
        history = trace.values[history_start:issue_index]
        offset = history_start % per_day
        slot_sum = np.zeros(per_day)
        slot_count = np.zeros(per_day)
        slots = (np.arange(len(history)) + offset) % per_day
        np.add.at(slot_sum, slots, history)
        np.add.at(slot_count, slots, 1.0)
        slot_mean = np.divide(
            slot_sum,
            slot_count,
            out=np.zeros(per_day),
            where=slot_count > 0,
        )
        window_slots = (issue_index + np.arange(window)) % per_day
        return Forecast(
            grid, slot_mean[window_slots], issue_index, trace.name
        )
