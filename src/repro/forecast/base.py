"""Forecast container and the Forecaster protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ForecastError
from ..traces import PowerTrace
from ..units import TimeGrid


@dataclass(frozen=True)
class Forecast:
    """A power forecast issued at a specific trace index.

    A forecast covers the half-open index window
    ``[issue_index, issue_index + len(values))`` of the underlying
    trace's grid.  Values are normalized power, like the trace itself.

    Attributes:
        grid: The grid of the *forecasted window* (not the full trace).
        values: Predicted normalized power per window sample.
        issue_index: Index into the source trace where the window starts.
        site_name: Which site this forecast is for.
    """

    grid: TimeGrid
    values: np.ndarray
    issue_index: int
    site_name: str = "site"

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or len(values) != self.grid.n:
            raise ForecastError(
                f"forecast values shape {values.shape} does not match grid"
                f" of {self.grid.n}"
            )
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise ForecastError("forecast values must be finite and >= 0")
        if self.issue_index < 0:
            raise ForecastError(f"negative issue index: {self.issue_index}")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.grid.n

    def horizon_steps(self, index: int) -> int:
        """Lead time, in steps, of window sample ``index``.

        The first forecasted sample has lead time 1 (it describes the
        interval immediately after issuance).
        """
        if not 0 <= index < len(self):
            raise ForecastError(f"index {index} out of forecast window")
        return index + 1

    def power_mw(self, capacity_mw: float) -> np.ndarray:
        """Forecast in absolute MW at a given site capacity."""
        if capacity_mw <= 0:
            raise ForecastError(f"capacity must be positive: {capacity_mw}")
        return self.values * capacity_mw


@runtime_checkable
class Forecaster(Protocol):
    """Anything that can issue a forecast window for a trace.

    Implementations take the *true* trace (the simulation's ground truth)
    plus an issue point and return predicted values for the next
    ``window`` samples.  How much of the truth leaks into the prediction
    is the model's choice — a noisy oracle leaks everything but blurred,
    persistence leaks one sample, climatology leaks nothing site-specific.
    """

    def forecast(
        self, trace: PowerTrace, issue_index: int, window: int
    ) -> Forecast:
        """Issue a forecast of ``window`` samples from ``issue_index``."""
        ...


def check_window(trace: PowerTrace, issue_index: int, window: int) -> None:
    """Validate a forecast request against the trace bounds.

    Raises:
        ForecastError: if the window does not fit inside the trace.
    """
    if window <= 0:
        raise ForecastError(f"window must be positive, got {window}")
    if issue_index < 0:
        raise ForecastError(f"negative issue index: {issue_index}")
    if issue_index + window > len(trace):
        raise ForecastError(
            f"forecast window [{issue_index}, {issue_index + window})"
            f" exceeds trace of length {len(trace)}"
        )
