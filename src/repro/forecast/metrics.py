"""Forecast accuracy metrics and the per-horizon evaluation harness.

The paper quotes MAPE (mean absolute percentage error) per lead time;
renewable MAPE is conventionally computed only over samples with
meaningful actual production (zero-production slots make percentage
error undefined), and we follow that convention with an explicit
``min_actual`` floor.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ForecastError
from ..traces import PowerTrace
from .base import Forecast, Forecaster


def _validate_pair(actual: np.ndarray, predicted: np.ndarray) -> tuple[
    np.ndarray, np.ndarray
]:
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ForecastError(
            f"shape mismatch: actual {actual.shape} vs predicted"
            f" {predicted.shape}"
        )
    if actual.size == 0:
        raise ForecastError("cannot score an empty forecast")
    return actual, predicted


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    actual, predicted = _validate_pair(actual, predicted)
    return float(np.mean(np.abs(predicted - actual)))


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    actual, predicted = _validate_pair(actual, predicted)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def mape(
    actual: np.ndarray, predicted: np.ndarray, min_actual: float = 0.05
) -> float:
    """Mean absolute percentage error over productive samples.

    Samples with ``actual < min_actual`` are excluded — percentage error
    against (near-)zero production is undefined and would swamp the
    metric.  Returns ``nan`` if no sample clears the floor.
    """
    actual, predicted = _validate_pair(actual, predicted)
    mask = actual >= min_actual
    if not np.any(mask):
        return float("nan")
    return float(
        np.mean(np.abs(predicted[mask] - actual[mask]) / actual[mask])
    )


def smape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Symmetric MAPE: |p - a| / ((|a| + |p|) / 2), zero-safe.

    Samples where both actual and predicted are zero contribute zero
    error (a correct "no production" call).
    """
    actual, predicted = _validate_pair(actual, predicted)
    denom = (np.abs(actual) + np.abs(predicted)) / 2.0
    diff = np.abs(predicted - actual)
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(denom > 0, diff / denom, 0.0)
    return float(np.mean(ratio))


def horizon_mape_profile(
    forecaster: Forecaster,
    trace: PowerTrace,
    horizons_steps: Mapping[str, int],
    issue_every: int = 96,
    min_actual: float = 0.05,
) -> dict[str, float]:
    """MAPE of a forecaster at several lead times, averaged over issues.

    For each named horizon, forecasts are issued every ``issue_every``
    steps across the trace; the sample *at* the horizon lead time from
    each issue is scored against truth, and the MAPE over all issues is
    reported.  This mirrors how the ELIA 3h/day/week-ahead numbers the
    paper quotes are computed.

    Args:
        forecaster: Model under evaluation.
        trace: Ground-truth trace.
        horizons_steps: Mapping of label -> lead time in steps, e.g.
            ``{"3h": 12, "day": 96, "week": 672}`` at 15-min resolution.
        issue_every: Stride between forecast issue points.
        min_actual: Productive-sample floor for MAPE.

    Returns:
        Mapping of horizon label -> MAPE (nan if no productive samples).
    """
    if issue_every <= 0:
        raise ForecastError(f"issue_every must be positive: {issue_every}")
    results: dict[str, float] = {}
    for label, horizon in horizons_steps.items():
        if horizon <= 0:
            raise ForecastError(f"horizon {label!r} must be positive")
        actuals: list[float] = []
        predictions: list[float] = []
        issue = 0
        while issue + horizon <= len(trace):
            forecast = forecaster.forecast(trace, issue, horizon)
            actuals.append(trace.values[issue + horizon - 1])
            predictions.append(forecast.values[horizon - 1])
            issue += issue_every
        if not actuals:
            results[label] = float("nan")
            continue
        results[label] = mape(
            np.array(actuals), np.array(predictions), min_actual
        )
    return results
