"""Command-line interface: run the paper's experiments from a shell.

Subcommands::

    python -m repro synthesize --sites NO-solar UK-wind --days 30 --out traces/
    python -m repro variability --sites NO-solar UK-wind PT-wind --days 30
    python -m repro simulate --kind wind --days 14
    python -m repro forecast --kind wind --days 60
    python -m repro schedule --days 7 --apps 150 --jobs 3
    python -m repro sweep --mode simulate --sites BE-wind BE-solar \
        --days 7 14 --seeds 0 1 2 --jobs 4
    python -m repro report trace.jsonl

The pipeline commands accept ``--trace-out PATH`` (equivalent to
``$REPRO_TRACE=PATH``) to capture a JSON-lines span/metric trace of the
run — synthesis, forecast, MIP assembly vs solve, per-site simulation —
which ``repro report`` renders as a span tree with the slowest spans
and metric totals.

Every command is deterministic for a given ``--seed`` and prints the
same style of report the benchmark harness writes.  ``simulate`` /
``schedule`` accept ``--jobs`` to fan their per-site / per-policy
stages across threads; ``sweep`` expands a parameter grid into
scenarios and fans them across processes (``--jobs``, ``--backend``,
``$REPRO_JOBS``), printing a fleet summary with per-task timings and
the measured speedup.

The pipeline commands (``simulate``, ``schedule``) build a declarative
:class:`~repro.experiments.Scenario` and execute it through
:class:`~repro.experiments.Runner`: expensive intermediates (trace
synthesis, forecast series, MIP solves) are cached content-addressed
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), so a repeated
invocation with unchanged parameters reuses them, and each run writes a
``RunManifest`` JSON (per-stage wall times, cache hits, seeds, artifact
hashes) under ``<cache-dir>/manifests``.  Use ``--no-cache`` to bypass
the cache, ``--cache-dir`` / ``--manifest-dir`` to relocate it.

``simulate`` / ``schedule`` / ``sweep`` also accept ``--battery-mwh``,
``--battery-power-mw`` and ``--grid-budget-mwh``, composing a
:mod:`repro.supply` stack (physical battery and/or bounded grid
top-up, §2.3) behind every site's trace; ``simulate`` then reports the
stack's energy accounting next to the migration metrics.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from datetime import timedelta
from pathlib import Path
from typing import Sequence

import numpy as np

from . import obs
from .analysis import format_table
from .experiments import (
    ArtifactCache,
    ComputeSpec,
    PolicySpec,
    Runner,
    Scenario,
    SupplySpec,
    WorkloadSpec,
    cached_catalog_traces,
    default_cache_dir,
    resolve_jobs,
    run_scenarios,
)
from .experiments.defaults import DEFAULT_START, TRIO_SITES
from .forecast import NoisyOracleForecaster, horizon_mape_profile
from .multisite import stable_energy_split
from .supply import GRID_POLICIES
from .supply.spec import CARBON_TRACES, PRICE_TRACES
from .traces import (
    default_european_catalog,
    synthesize_solar,
    synthesize_wind,
    trace_to_csv,
)
from .units import TimeGrid, grid_days


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    parser.add_argument(
        "--days", type=float, default=7.0, help="simulation span in days"
    )


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk artifact cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache root (default: $REPRO_CACHE_DIR or"
        " ~/.cache/repro)",
    )
    parser.add_argument(
        "--manifest-dir", default=None,
        help="where to write the run manifest JSON"
        " (default: <cache-dir>/manifests)",
    )


def _add_jobs_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker count for parallel stages (default: $REPRO_JOBS,"
        " else serial)",
    )


def _add_supply_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "supply stack",
        "firm top-up behind the renewable trace (§2.3): a physical"
        " battery and/or a bounded grid-energy budget",
    )
    group.add_argument(
        "--battery-mwh", type=float, default=0.0, metavar="MWH",
        help="battery capacity in MWh (0 disables the battery)",
    )
    group.add_argument(
        "--battery-power-mw", type=float, default=None, metavar="MW",
        help="battery charge/discharge power limit"
        " (default: capacity over 4 hours)",
    )
    group.add_argument(
        "--grid-budget-mwh", type=float, default=0.0, metavar="MWH",
        help="total grid energy purchasable over the run"
        " (0 disables grid top-up)",
    )
    group.add_argument(
        "--price-trace", choices=PRICE_TRACES, default="none",
        help="spot-price series behind the grid component; anything"
        " but 'none' prices every imported MWh",
    )
    group.add_argument(
        "--carbon-trace", choices=CARBON_TRACES, default="none",
        help="carbon-intensity series behind the grid component"
        " ('daily' is the 140-280 gCO2/kWh cycle)",
    )
    group.add_argument(
        "--price-per-mwh", type=float, default=0.0, metavar="USD",
        help="price level for --price-trace constant",
    )
    group.add_argument(
        "--carbon-per-mwh", type=float, default=0.0, metavar="KG",
        help="carbon level for --carbon-trace constant (kgCO2/MWh)",
    )
    group.add_argument(
        "--grid-policy", choices=GRID_POLICIES, default="always",
        help="in-loop purchase policy (threshold and dvb need"
        " --price-threshold)",
    )
    group.add_argument(
        "--price-threshold", type=float, default=None, metavar="USD",
        help="price cap for the threshold policy; dvb's theta-high",
    )
    group.add_argument(
        "--carbon-weight", type=float, default=0.0, metavar="W",
        help="schedule modes: $-per-kgCO2 weight on grid imports in"
        " the MIP objective",
    )


def _supply_from_args(args: argparse.Namespace) -> SupplySpec:
    return SupplySpec(
        battery_mwh=args.battery_mwh,
        battery_power_mw=args.battery_power_mw,
        grid_budget_mwh=args.grid_budget_mwh,
        price_trace=args.price_trace,
        carbon_trace=args.carbon_trace,
        price_per_mwh=args.price_per_mwh,
        carbon_per_mwh=args.carbon_per_mwh,
        grid_policy=args.grid_policy,
        price_threshold=args.price_threshold,
    )


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a JSON-lines span/metric trace to PATH (same as"
        f" ${obs.TRACE_ENV}); render it with 'repro report PATH'",
    )


def _jobs_from_args(args: argparse.Namespace, fallback: int = 1) -> int:
    return resolve_jobs(args.jobs, fallback=fallback)


def _cache_from_args(args: argparse.Namespace) -> ArtifactCache | None:
    if args.no_cache:
        return None
    return ArtifactCache(args.cache_dir)


def _manifest_dir_from_args(
    args: argparse.Namespace, cache: ArtifactCache | None
) -> Path:
    if args.manifest_dir is not None:
        return Path(args.manifest_dir)
    root = cache.directory if cache is not None else default_cache_dir()
    return root / "manifests"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Virtual Battery (HotNets '21) experiment runner",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    synthesize = commands.add_parser(
        "synthesize", help="generate site traces and write them as CSV"
    )
    _add_common(synthesize)
    _add_cache_options(synthesize)
    _add_jobs_option(synthesize)
    synthesize.add_argument(
        "--sites", nargs="+", required=True,
        help="catalog site names (see 'repro sites')",
    )
    synthesize.add_argument(
        "--out", required=True, help="output directory for CSV files"
    )

    commands.add_parser("sites", help="list the built-in site catalog")

    variability = commands.add_parser(
        "variability",
        help="§2.3 aggregation analysis over a site combination",
    )
    _add_common(variability)
    _add_cache_options(variability)
    variability.add_argument("--sites", nargs="+", required=True)
    variability.add_argument(
        "--window-days", type=float, default=3.0,
        help="stable-energy window",
    )

    simulate = commands.add_parser(
        "simulate", help="§3 single-site migration simulation"
    )
    _add_common(simulate)
    _add_cache_options(simulate)
    _add_jobs_option(simulate)
    _add_trace_option(simulate)
    simulate.add_argument(
        "--kind", choices=("solar", "wind"), default="wind"
    )
    simulate.add_argument(
        "--utilization", type=float, default=0.70,
        help="admission utilization cap",
    )
    _add_supply_options(simulate)

    forecast = commands.add_parser(
        "forecast", help="Figure-5 forecast MAPE by horizon"
    )
    _add_common(forecast)
    forecast.add_argument(
        "--kind", choices=("solar", "wind"), default="wind"
    )

    schedule = commands.add_parser(
        "schedule", help="Table-1 policy comparison on the Fig-3 trio"
    )
    _add_common(schedule)
    _add_cache_options(schedule)
    _add_jobs_option(schedule)
    _add_trace_option(schedule)
    schedule.add_argument("--apps", type=int, default=150)
    schedule.add_argument(
        "--cores-per-site", type=int, default=28000
    )
    schedule.add_argument(
        "--decompose", default=None, metavar="SPEC",
        help="decompose the MIP policies' solves, e.g."
        " 'window:24,relax-fix' (see repro.sched.DecomposeSpec)",
    )
    _add_supply_options(schedule)

    sweep = commands.add_parser(
        "sweep",
        help="expand a parameter grid into scenarios and run them"
        " in parallel",
    )
    sweep.add_argument(
        "--mode", choices=("simulate", "schedule"), default="simulate",
        help="which pipeline each scenario runs",
    )
    sweep.add_argument(
        "--sites", nargs="+", default=None,
        help="simulate: one scenario per site (default BE-wind);"
        " schedule: the site group shared by every scenario"
        " (default the Fig-3 trio)",
    )
    sweep.add_argument(
        "--days", type=float, nargs="+", default=[7.0],
        help="grid axis: simulation spans in days",
    )
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="grid axis: master seeds",
    )
    sweep.add_argument(
        "--utilization", type=float, nargs="+", default=[0.70],
        help="grid axis (simulate mode): admission utilization",
    )
    sweep.add_argument(
        "--apps", type=int, nargs="+", default=[150],
        help="grid axis (schedule mode): application counts",
    )
    sweep.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="executor backend (auto: process when jobs > 1)",
    )
    sweep.add_argument(
        "--decompose", default=None, metavar="SPEC",
        help="schedule mode: decompose the MIP policies' solves,"
        " e.g. 'window:24,relax-fix'",
    )
    _add_supply_options(sweep)
    _add_cache_options(sweep)
    _add_jobs_option(sweep)
    _add_trace_option(sweep)

    report = commands.add_parser(
        "report",
        help="render the span tree and metrics of a captured trace",
    )
    report.add_argument(
        "path",
        help="a --trace-out / $REPRO_TRACE JSONL file or a run"
        " manifest JSON",
    )
    report.add_argument(
        "--top", type=int, default=5,
        help="how many slowest spans to list (default 5)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the digital-twin session API (requires the 'serve'"
        " extra for uvicorn)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port"
    )

    return parser


def _cmd_sites(_args: argparse.Namespace) -> int:
    catalog = default_european_catalog()
    rows = [
        [s.name, s.kind, f"{s.latitude_deg:.2f}", f"{s.longitude_deg:.2f}",
         round(s.capacity_mw)]
        for s in catalog
    ]
    print(
        format_table(
            ["Name", "Kind", "Lat", "Lon", "MW"], rows,
            title="Built-in European site catalog",
        )
    )
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    catalog = default_european_catalog().subset(args.sites)
    grid = grid_days(DEFAULT_START, args.days)
    traces = cached_catalog_traces(
        catalog, grid, args.seed, _cache_from_args(args)
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def write(item):
        name, trace = item
        path = out / f"{name}.csv"
        trace_to_csv(trace, path)
        return f"wrote {path} ({len(trace)} samples)"

    jobs = _jobs_from_args(args)
    if jobs > 1 and len(traces) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(jobs, len(traces))
        ) as pool:
            lines = list(pool.map(write, traces.items()))
    else:
        lines = [write(item) for item in traces.items()]
    for line in lines:
        print(line)
    return 0


def _cmd_variability(args: argparse.Namespace) -> int:
    catalog = default_european_catalog().subset(args.sites)
    grid = grid_days(DEFAULT_START, args.days)
    traces = cached_catalog_traces(
        catalog, grid, args.seed, _cache_from_args(args)
    )
    rows = []
    for name, trace in traces.items():
        report = stable_energy_split(traces, [name], args.window_days)
        rows.append(
            [name, f"{trace.cov():.2f}",
             f"{100 * report.stable_fraction:.0f}%"]
        )
    combined = stable_energy_split(
        traces, list(traces), args.window_days
    )
    rows.append(
        ["+".join(args.sites), f"{combined.cov:.2f}",
         f"{100 * combined.stable_fraction:.0f}%"]
    )
    print(
        format_table(
            ["Combination", "cov", "Stable energy"], rows,
            title=f"Variability over {args.days:g} days"
            f" ({args.window_days:g}-day stable windows)",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    site = "BE-solar" if args.kind == "solar" else "BE-wind"
    scenario = Scenario(
        name=f"cli-simulate-{args.kind}",
        sites=(site,),
        grid=grid_days(DEFAULT_START, args.days),
        workload=WorkloadSpec(
            kind="vm_requests", utilization=args.utilization
        ),
        supply=_supply_from_args(args),
        seed=args.seed,
    )
    cache = _cache_from_args(args)
    result = Runner(
        scenario,
        cache=cache,
        use_cache=cache is not None,
        manifest_dir=_manifest_dir_from_args(args, cache),
        jobs=_jobs_from_args(args),
    ).run()
    sim = result.simulations[site]
    out_gb = sim.out_gb_series()
    in_gb = sim.in_gb_series()
    arrivals = sum(record.n_arrivals for record in sim.records)
    rows = [
        ["VM arrivals", arrivals],
        ["VM evictions", int(sim.columns.n_evicted.sum())],
        ["out-migration GB", round(out_gb.sum())],
        ["in-migration GB", round(in_gb.sum())],
        ["peak step GB", round(max(out_gb.max(), in_gb.max()))],
        [
            "silent power changes",
            f"{100 * sim.power_changes_without_migration_fraction():.0f}%",
        ],
        [
            "WAN busy @200Gbps",
            f"{100 * sim.migration_active_fraction():.2f}%",
        ],
    ]
    if sim.supply is not None:
        rows.extend(
            [
                ["battery charge MWh",
                 f"{sim.supply.charge_total_mwh:.2f}"],
                ["battery discharge MWh",
                 f"{sim.supply.discharge_total_mwh:.2f}"],
                ["grid import MWh",
                 f"{sim.supply.grid_import_total_mwh:.2f}"],
                ["curtailed MWh",
                 f"{sim.supply.curtailed_total_mwh:.2f}"],
                ["final SoC MWh", f"{sim.supply.final_soc_mwh:.2f}"],
            ]
        )
        if sim.supply.cost_total_usd or sim.supply.carbon_total_kg:
            rows.extend(
                [
                    ["grid cost USD",
                     f"{sim.supply.cost_total_usd:.2f}"],
                    ["grid carbon kgCO2",
                     f"{sim.supply.carbon_total_kg:.2f}"],
                ]
            )
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=f"Single-site {args.kind} simulation,"
            f" {args.days:g} days",
        )
    )
    print(f"manifest: {result.manifest_path}")
    return 0


def _cmd_forecast(args: argparse.Namespace) -> int:
    grid = grid_days(DEFAULT_START, args.days)
    synthesize = (
        synthesize_solar if args.kind == "solar" else synthesize_wind
    )
    trace = synthesize(grid, seed=args.seed, name="site")
    model = NoisyOracleForecaster(seed=args.seed)
    horizons = {"3h": 12, "day": 96, "week": 96 * 7}
    profile = horizon_mape_profile(model, trace, horizons, 48)
    rows = [
        [label, f"{100 * value:.1f}%" if np.isfinite(value) else "n/a"]
        for label, value in profile.items()
    ]
    print(
        format_table(
            ["Horizon", "MAPE"], rows,
            title=f"Forecast accuracy, {args.kind},"
            f" {args.days:g} days of evaluation",
        )
    )
    return 0


def _mip_policies(
    decompose: str | None, carbon_weight: float = 0.0
) -> tuple[PolicySpec, ...]:
    """The Table-1 policy trio, optionally with decomposed MIP solves."""
    return (
        PolicySpec("Greedy", "greedy"),
        PolicySpec(
            "MIP", "mip", time_limit_s=60.0, decompose=decompose,
            carbon_weight=carbon_weight,
        ),
        PolicySpec(
            "MIP-peak", "mip", peak_weight=50.0, time_limit_s=60.0,
            decompose=decompose, carbon_weight=carbon_weight,
        ),
    )


def _cmd_schedule(args: argparse.Namespace) -> int:
    scenario = Scenario(
        name="cli-schedule",
        sites=TRIO_SITES,
        grid=TimeGrid(
            DEFAULT_START, timedelta(hours=1), int(args.days * 24)
        ),
        workload=WorkloadSpec(
            count=args.apps,
            mean_vm_count=40,
            mean_duration_days=max(args.days / 3, 1.0),
        ),
        policies=_mip_policies(
            getattr(args, "decompose", None),
            getattr(args, "carbon_weight", 0.0),
        ),
        compute=ComputeSpec(cores_per_site=args.cores_per_site),
        supply=_supply_from_args(args),
        seed=args.seed,
    )
    cache = _cache_from_args(args)
    result = Runner(
        scenario,
        cache=cache,
        use_cache=cache is not None,
        manifest_dir=_manifest_dir_from_args(args, cache),
        jobs=_jobs_from_args(args),
    ).run()
    print(result.comparison.as_table())
    hits = result.manifest.cache_hits()
    if hits:
        hit_count = sum(1 for hit in hits.values() if hit)
        print(f"\ncache: {hit_count}/{len(hits)} stages reused")
    print(f"manifest: {result.manifest_path}")
    return 0


def _sweep_scenarios(args: argparse.Namespace) -> list[Scenario]:
    """Expand the sweep's parameter grid into scenarios.

    The supply flags are scalars shared by every scenario in the grid
    (a sweep compares sites/days/seeds under one supply stack).
    """
    supply = _supply_from_args(args)
    scenarios: list[Scenario] = []
    if args.mode == "simulate":
        sites = args.sites or ["BE-wind"]
        for site in sites:
            for days in args.days:
                for seed in args.seeds:
                    for utilization in args.utilization:
                        scenarios.append(
                            Scenario(
                                name=f"sweep-simulate-{site}"
                                f"-d{days:g}-s{seed}-u{utilization:g}",
                                sites=(site,),
                                grid=grid_days(DEFAULT_START, days),
                                workload=WorkloadSpec(
                                    kind="vm_requests",
                                    utilization=utilization,
                                ),
                                supply=supply,
                                seed=seed,
                            )
                        )
        return scenarios
    sites = tuple(args.sites) if args.sites else TRIO_SITES
    for days in args.days:
        for seed in args.seeds:
            for apps in args.apps:
                scenarios.append(
                    Scenario(
                        name=f"sweep-schedule-d{days:g}-s{seed}-a{apps}",
                        sites=sites,
                        grid=TimeGrid(
                            DEFAULT_START, timedelta(hours=1),
                            int(days * 24),
                        ),
                        workload=WorkloadSpec(
                            count=apps,
                            mean_vm_count=40,
                            mean_duration_days=max(days / 3, 1.0),
                        ),
                        policies=_mip_policies(
                            getattr(args, "decompose", None),
                            getattr(args, "carbon_weight", 0.0),
                        ),
                        supply=supply,
                        seed=seed,
                    )
                )
    return scenarios


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenarios = _sweep_scenarios(args)
    cache = _cache_from_args(args)
    manifest_dir = _manifest_dir_from_args(args, cache)
    fleet_tag = hashlib.sha256(
        "".join(s.content_hash() for s in scenarios).encode()
    ).hexdigest()[:12]
    batch = run_scenarios(
        scenarios,
        jobs=_jobs_from_args(args, fallback=None),
        backend=args.backend,
        cache=cache,
        use_cache=cache is not None,
        manifest_dir=manifest_dir,
        fleet_manifest_path=manifest_dir / f"fleet_{fleet_tag}.json",
    )
    fleet = batch.fleet
    rows = [
        [task.scenario_name, f"{task.seconds:.2f}", task.worker or "-"]
        for task in fleet.tasks
    ]
    print(
        format_table(
            ["Scenario", "Seconds", "Worker"], rows,
            title=f"Sweep: {len(scenarios)} scenarios,"
            f" backend={fleet.backend}, jobs={fleet.jobs}",
        )
    )
    print(
        f"\nwall {fleet.wall_seconds:.2f}s,"
        f" serial-equivalent {fleet.task_seconds():.2f}s,"
        f" speedup {fleet.speedup():.2f}x,"
        f" cache {fleet.cache_hits}/{fleet.cache_lookups} stages reused"
    )
    print(f"fleet manifest: {batch.fleet_path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(obs.render_report(obs.load_trace(args.path), top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        import uvicorn
    except ImportError:
        print(
            "repro serve needs an ASGI server; install the extra:\n"
            "  pip install 'repro[serve]'",
            file=sys.stderr,
        )
        return 1
    from .serve import create_app

    uvicorn.run(create_app(), host=args.host, port=args.port)
    return 0


_COMMANDS = {
    "sites": _cmd_sites,
    "synthesize": _cmd_synthesize,
    "variability": _cmd_variability,
    "simulate": _cmd_simulate,
    "forecast": _cmd_forecast,
    "schedule": _cmd_schedule,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    previous_trace = os.environ.get(obs.TRACE_ENV)
    if trace_out:
        # Through the environment (not a local sink) so the sweep's
        # process-pool workers inherit tracing too.
        os.environ[obs.TRACE_ENV] = trace_out
        obs.reset()
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an
        # error from the user's point of view.
        return 0
    finally:
        if trace_out:
            if previous_trace is None:
                os.environ.pop(obs.TRACE_ENV, None)
            else:
                os.environ[obs.TRACE_ENV] = previous_trace
            obs.reset()


if __name__ == "__main__":
    sys.exit(main())
