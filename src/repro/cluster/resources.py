"""Server and cluster specifications."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import gib_to_bytes


@dataclass(frozen=True)
class ServerSpec:
    """Hardware shape of one server.

    The paper's setup: 40 cores and 512 GB of memory per server.

    Attributes:
        cores: Physical cores.
        memory_gib: Memory in GiB.
        max_power_w: Server power draw with all cores powered; the
            power model scales within this.
        idle_fraction: Share of ``max_power_w`` drawn by a powered-on
            server with zero powered cores (chassis, fans, RAM refresh).
    """

    cores: int = 40
    memory_gib: float = 512.0
    max_power_w: float = 400.0
    idle_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive: {self.cores}")
        if self.memory_gib <= 0:
            raise ConfigurationError(
                f"memory must be positive: {self.memory_gib}"
            )
        if self.max_power_w <= 0:
            raise ConfigurationError(
                f"max power must be positive: {self.max_power_w}"
            )
        if not 0.0 <= self.idle_fraction < 1.0:
            raise ConfigurationError(
                f"idle fraction must be in [0,1): {self.idle_fraction}"
            )

    @property
    def memory_bytes(self) -> float:
        """Server memory in bytes."""
        return gib_to_bytes(self.memory_gib)

    @property
    def core_power_w(self) -> float:
        """Incremental power per powered core."""
        return self.max_power_w * (1.0 - self.idle_fraction) / self.cores


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: ``n_servers`` identical servers.

    The paper instantiates a site with about 700 servers.
    """

    n_servers: int = 700
    server: ServerSpec = ServerSpec()

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError(
                f"n_servers must be positive: {self.n_servers}"
            )

    @property
    def total_cores(self) -> int:
        """Cores across the whole cluster."""
        return self.n_servers * self.server.cores

    @property
    def total_memory_bytes(self) -> float:
        """Memory across the whole cluster, bytes."""
        return self.n_servers * self.server.memory_bytes

    @property
    def max_power_w(self) -> float:
        """Cluster draw with every core powered."""
        return self.n_servers * self.server.max_power_w
