"""Frequency scaling (DVFS) as a power-dip absorber.

§4 of the paper lists "frequency scaling, powering down cores" among
the knobs for matching server power to generation.  Powering cores
down is the main §3 mechanism; this module adds the other knob:
because dynamic power scales super-linearly with frequency
(``P ~ f^3`` for the classic voltage-frequency pairing), slowing all
cores slightly frees a lot of power at little throughput cost — a 20%
power cut costs only ~7% speed.  DVFS therefore absorbs *shallow* dips
that would otherwise displace VMs, and the displacement series it
cannot absorb is exactly what the migration machinery must handle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace


@dataclass(frozen=True)
class FrequencyScaling:
    """DVFS envelope of the fleet.

    Attributes:
        min_frequency: Lowest usable frequency relative to nominal
            (below this, voltage cannot drop further and efficiency
            collapses; 0.5-0.7 is typical).
        power_exponent: Exponent of the power-frequency law; 3.0 for
            the classic ``P ~ V^2 f`` with voltage tracking frequency,
            lower for modern near-threshold parts.
    """

    min_frequency: float = 0.6
    power_exponent: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_frequency <= 1.0:
            raise ConfigurationError(
                f"min frequency must be in (0,1]: {self.min_frequency}"
            )
        if self.power_exponent < 1.0:
            raise ConfigurationError(
                f"power exponent must be >= 1: {self.power_exponent}"
            )

    def power_at(self, frequency: float) -> float:
        """Relative core power at a relative frequency."""
        if not 0.0 <= frequency <= 1.0:
            raise ConfigurationError(
                f"frequency must be in [0,1]: {frequency}"
            )
        return frequency**self.power_exponent

    def frequency_for_power(self, power_fraction: float) -> float:
        """Frequency whose power draw equals ``power_fraction``.

        Unclamped inverse of :meth:`power_at`; callers clamp to the
        usable range.
        """
        if power_fraction < 0:
            raise ConfigurationError(
                f"power fraction must be >= 0: {power_fraction}"
            )
        return float(power_fraction ** (1.0 / self.power_exponent))


@dataclass(frozen=True)
class DVFSStep:
    """DVFS outcome for one step.

    Attributes:
        frequency: Chosen relative frequency for powered cores.
        powered_fraction: Share of the load's cores that stay powered.
        displaced_fraction: Share of total cores that must still be
            displaced (migrated/paused) despite slowing down.
        slowdown: Relative execution-time inflation (1/f - 1) paid by
            the cores that keep running.
    """

    frequency: float
    powered_fraction: float
    displaced_fraction: float
    slowdown: float


def absorb_step(
    norm_power: float, load_fraction: float, scaling: FrequencyScaling
) -> DVFSStep:
    """How much of a power dip DVFS absorbs in one step.

    ``load_fraction`` is the allocated-core share of the cluster;
    ``norm_power`` the available generation.  All powered cores run at
    one frequency (fleet-wide DVFS).  Strategy: slow down just enough
    to keep every allocated core powered; if even ``min_frequency``
    cannot, run at the floor and displace the remainder.
    """
    if not 0.0 <= norm_power <= 1.0:
        raise ConfigurationError(
            f"norm power must be in [0,1]: {norm_power}"
        )
    if not 0.0 <= load_fraction <= 1.0:
        raise ConfigurationError(
            f"load fraction must be in [0,1]: {load_fraction}"
        )
    if load_fraction == 0.0:
        return DVFSStep(1.0, 1.0, 0.0, 0.0)
    if norm_power >= load_fraction:
        return DVFSStep(1.0, 1.0, 0.0, 0.0)
    needed = scaling.frequency_for_power(norm_power / load_fraction)
    if needed >= scaling.min_frequency:
        frequency = needed
        return DVFSStep(frequency, 1.0, 0.0, 1.0 / frequency - 1.0)
    # Even the floor frequency cannot power everything: run what fits
    # at the floor and displace the rest.
    frequency = scaling.min_frequency
    per_core_power = scaling.power_at(frequency)
    powered = min(norm_power / per_core_power, load_fraction)
    return DVFSStep(
        frequency,
        powered / load_fraction,
        load_fraction - powered,
        1.0 / frequency - 1.0,
    )


def dvfs_displacement_series(
    trace: PowerTrace,
    load_fraction: float,
    scaling: FrequencyScaling | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Displacement with and without DVFS over a whole trace.

    Returns:
        ``(displaced_without, displaced_with, slowdown)`` arrays, all
        in units of core-fraction (of the cluster) and relative
        slowdown per step.  The without-DVFS series is the paper's
        baseline ``max(0, load - power)``.
    """
    scaling = scaling or FrequencyScaling()
    without = np.clip(load_fraction - trace.values, 0.0, None)
    with_dvfs = np.empty(len(trace))
    slowdown = np.empty(len(trace))
    for i, power in enumerate(trace.values):
        step = absorb_step(float(min(power, 1.0)), load_fraction, scaling)
        with_dvfs[i] = step.displaced_fraction
        slowdown[i] = step.slowdown
    return without, with_dvfs, slowdown


def dvfs_absorption_summary(
    trace: PowerTrace,
    load_fraction: float,
    scaling: FrequencyScaling | None = None,
) -> dict[str, float]:
    """Headline numbers for the DVFS ablation.

    Returns a dict with the displaced core-step totals with/without
    DVFS, the fraction of displacement absorbed, and the mean slowdown
    paid while absorbing.
    """
    without, with_dvfs, slowdown = dvfs_displacement_series(
        trace, load_fraction, scaling
    )
    total_without = float(without.sum())
    total_with = float(with_dvfs.sum())
    absorbing = slowdown > 0
    return {
        "displaced_core_steps_without": total_without,
        "displaced_core_steps_with": total_with,
        "absorbed_fraction": (
            1.0 - total_with / total_without if total_without > 0 else 1.0
        ),
        "mean_slowdown_while_absorbing": (
            float(slowdown[absorbing].mean()) if absorbing.any() else 0.0
        ),
    }
