"""Server state: core/memory accounting for placed VMs."""

from __future__ import annotations

from ..errors import AllocationError, CapacityError
from .resources import ServerSpec
from .vm import VM, VMState


class Server:
    """One server's allocation state.

    Tracks which VMs it hosts and how many cores/bytes they pin.  The
    server itself has no notion of power — the cluster-level power model
    decides how many cores may be powered overall; the server just
    reports what is allocated.
    """

    def __init__(self, server_id: int, spec: ServerSpec):
        self.server_id = server_id
        self.spec = spec
        self._vms: dict[int, VM] = {}
        self._allocated_cores = 0
        self._allocated_memory = 0.0

    def __repr__(self) -> str:
        return (
            f"Server(id={self.server_id},"
            f" cores={self._allocated_cores}/{self.spec.cores},"
            f" vms={len(self._vms)})"
        )

    @property
    def allocated_cores(self) -> int:
        """Cores pinned by hosted VMs."""
        return self._allocated_cores

    @property
    def allocated_memory_bytes(self) -> float:
        """Memory pinned by hosted VMs, bytes."""
        return self._allocated_memory

    @property
    def free_cores(self) -> int:
        """Cores not pinned by any VM."""
        return self.spec.cores - self._allocated_cores

    @property
    def free_memory_bytes(self) -> float:
        """Unpinned memory, bytes."""
        return self.spec.memory_bytes - self._allocated_memory

    @property
    def vm_count(self) -> int:
        """Number of hosted VMs."""
        return len(self._vms)

    @property
    def is_empty(self) -> bool:
        """True when no VM is hosted."""
        return not self._vms

    def vms(self) -> list[VM]:
        """Hosted VMs in placement order."""
        return list(self._vms.values())

    def fits(self, vm: VM) -> bool:
        """True if the VM's cores and memory both fit."""
        return (
            vm.cores <= self.free_cores
            and vm.memory_bytes <= self.free_memory_bytes
        )

    def host(self, vm: VM) -> None:
        """Place ``vm`` on this server.

        Raises:
            CapacityError: if the VM does not fit.
            AllocationError: if the VM is already hosted here.
        """
        if vm.vm_id in self._vms:
            raise AllocationError(
                f"VM {vm.vm_id} already on server {self.server_id}"
            )
        if not self.fits(vm):
            raise CapacityError(
                f"VM {vm.vm_id} ({vm.cores}c/{vm.memory_bytes:.0f}B) does"
                f" not fit on server {self.server_id}"
                f" ({self.free_cores}c/{self.free_memory_bytes:.0f}B free)"
            )
        vm.place(self.server_id)
        self._vms[vm.vm_id] = vm
        self._allocated_cores += vm.cores
        self._allocated_memory += vm.memory_bytes

    def release(self, vm: VM) -> None:
        """Remove ``vm`` from this server without changing its state.

        Used for completion (state already COMPLETED) and as the
        bookkeeping half of eviction (caller transitions the VM).

        Raises:
            AllocationError: if the VM is not hosted here.
        """
        if vm.vm_id not in self._vms:
            raise AllocationError(
                f"VM {vm.vm_id} not on server {self.server_id}"
            )
        del self._vms[vm.vm_id]
        self._allocated_cores -= vm.cores
        self._allocated_memory -= vm.memory_bytes

    def running_vms(self) -> list[VM]:
        """Hosted VMs currently in the RUNNING state."""
        return [vm for vm in self._vms.values() if vm.state is VMState.RUNNING]
