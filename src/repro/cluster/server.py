"""Server state: core/memory accounting for placed VMs."""

from __future__ import annotations

from ..errors import AllocationError, CapacityError
from .resources import ServerSpec
from .vm import VM, VMState


class Server:
    """One server's allocation state.

    Tracks which VMs it hosts and how many cores/bytes they pin.  The
    server itself has no notion of power — the cluster-level power model
    decides how many cores may be powered overall; the server just
    reports what is allocated.

    ``allocated_cores`` / ``free_cores`` / ``allocated_memory_bytes`` /
    ``free_memory_bytes`` are plain attributes maintained incrementally
    by :meth:`host` and :meth:`release` — ``fits`` and the pool's
    bucket bookkeeping read them on every placement query, so property
    indirection here is pure overhead.
    """

    def __init__(self, server_id: int, spec: ServerSpec):
        self.server_id = server_id
        self.spec = spec
        self._vms: dict[int, VM] = {}
        self.allocated_cores = 0
        self.allocated_memory_bytes = 0.0
        self.free_cores = spec.cores
        self.free_memory_bytes = spec.memory_bytes

    def __repr__(self) -> str:
        return (
            f"Server(id={self.server_id},"
            f" cores={self.allocated_cores}/{self.spec.cores},"
            f" vms={len(self._vms)})"
        )

    @property
    def vm_count(self) -> int:
        """Number of hosted VMs."""
        return len(self._vms)

    @property
    def is_empty(self) -> bool:
        """True when no VM is hosted."""
        return not self._vms

    def vms(self) -> list[VM]:
        """Hosted VMs in placement order."""
        return list(self._vms.values())

    def fits(self, vm: VM) -> bool:
        """True if the VM's cores and memory both fit."""
        return (
            vm.cores <= self.free_cores
            and vm.memory_bytes <= self.free_memory_bytes
        )

    def host(self, vm: VM) -> None:
        """Place ``vm`` on this server.

        Raises:
            CapacityError: if the VM does not fit.
            AllocationError: if the VM is already hosted here.
        """
        if vm.vm_id in self._vms:
            raise AllocationError(
                f"VM {vm.vm_id} already on server {self.server_id}"
            )
        if not self.fits(vm):
            raise CapacityError(
                f"VM {vm.vm_id} ({vm.cores}c/{vm.memory_bytes:.0f}B) does"
                f" not fit on server {self.server_id}"
                f" ({self.free_cores}c/{self.free_memory_bytes:.0f}B free)"
            )
        vm.place(self.server_id)
        self._vms[vm.vm_id] = vm
        self.allocated_cores += vm.cores
        self.allocated_memory_bytes += vm.memory_bytes
        self.free_cores -= vm.cores
        self.free_memory_bytes -= vm.memory_bytes

    def release(self, vm: VM) -> None:
        """Remove ``vm`` from this server without changing its state.

        Used for completion (state already COMPLETED) and as the
        bookkeeping half of eviction (caller transitions the VM).

        Raises:
            AllocationError: if the VM is not hosted here.
        """
        if vm.vm_id not in self._vms:
            raise AllocationError(
                f"VM {vm.vm_id} not on server {self.server_id}"
            )
        del self._vms[vm.vm_id]
        self.allocated_cores -= vm.cores
        self.allocated_memory_bytes -= vm.memory_bytes
        self.free_cores += vm.cores
        self.free_memory_bytes += vm.memory_bytes

    def running_vms(self) -> list[VM]:
        """Hosted VMs currently in the RUNNING state."""
        return [vm for vm in self._vms.values() if vm.state is VMState.RUNNING]

    def first_running_vm(self, excluded: set[int]) -> VM | None:
        """First RUNNING VM in placement order not in ``excluded``.

        The eviction planner's FIRST_PLACED fast path: avoids building
        the full :meth:`running_vms` list per rotor visit.
        """
        for vm in self._vms.values():
            if vm.state is VMState.RUNNING and vm.vm_id not in excluded:
                return vm
        return None
