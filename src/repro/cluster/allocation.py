"""VM-to-server placement policies.

The paper uses "Azure's VM allocation policy" (Protean-style rule
scoring); what its experiment actually depends on is *consolidation* —
packing VMs tightly so whole unallocated cores (and servers) can be
powered down when generation dips.  BestFit is the default for that
reason; FirstFit and WorstFit exist as comparison points and for the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError
from .server import Server
from .vm import VM


@runtime_checkable
class AllocationPolicy(Protocol):
    """Chooses a hosting server for a VM, or None if nothing fits."""

    def choose(self, servers: Sequence[Server], vm: VM) -> Server | None:
        """Return the server to host ``vm``, or None when full."""
        ...


class BestFit:
    """Tightest-fit packing: fewest free cores remaining after placement.

    Consolidates load onto few servers, maximizing the unallocated cores
    available to power down — the behaviour the paper's 70%-utilization
    headroom argument relies on.  Ties break toward the lower server id
    for determinism.
    """

    def choose(self, servers: Sequence[Server], vm: VM) -> Server | None:
        """Tightest-fitting server for ``vm``, or None."""
        best: Server | None = None
        best_free = None
        for server in servers:
            if not server.fits(vm):
                continue
            free_after = server.free_cores - vm.cores
            if best_free is None or free_after < best_free:
                best, best_free = server, free_after
        return best


class FirstFit:
    """First server (by id) with room.  Fast, moderately consolidating."""

    def choose(self, servers: Sequence[Server], vm: VM) -> Server | None:
        """Lowest-id server that fits ``vm``, or None."""
        for server in servers:
            if server.fits(vm):
                return server
        return None


class WorstFit:
    """Most-free-cores-first (load spreading).

    The anti-consolidation strawman: spreads VMs thin so nearly every
    server stays partially allocated and little can be powered down.
    Used by the ablation benchmark to show why packing matters for VBs.
    """

    def choose(self, servers: Sequence[Server], vm: VM) -> Server | None:
        """Emptiest server that fits ``vm``, or None."""
        best: Server | None = None
        best_free = -1
        for server in servers:
            if not server.fits(vm):
                continue
            if server.free_cores > best_free:
                best, best_free = server, server.free_cores
        return best


_POLICIES = {
    "bestfit": BestFit,
    "firstfit": FirstFit,
    "worstfit": WorstFit,
}


def make_policy(name: str) -> AllocationPolicy:
    """Construct a policy by name: ``bestfit`` | ``firstfit`` | ``worstfit``.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown allocation policy {name!r}; choose from"
            f" {sorted(_POLICIES)}"
        ) from None
