"""Utilization-cap admission control.

The paper rejects VM arrivals so the cluster holds ~70% utilization
(matching the production trace it replays).  The headroom is what lets
minor power dips be absorbed by powering down unallocated cores instead
of migrating VMs — the source of the ">80% of power changes incur no
migration" observation.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .vm import VM


def min_budget_for_cap(need: int, util: float, total: int) -> int:
    """Smallest budget ``b`` with ``int(util * min(b, total)) >= need``.

    The launch wake threshold's cap inversion, in closed form: the real
    solution is ``ceil(need / util)``, and float rounding can land the
    computed ceiling at most a step or two off, so a bounded correction
    walk (rather than the historical unbounded upward scan from an
    arithmetic lower bound) pins the exact integer.  The cap map
    ``b -> int(util * min(b, total))`` is nondecreasing, so the local
    minimum the walk finds is the global one; the property tests pin
    equality against the reference scan across utilization grids.

    The caller must guarantee a solution exists
    (``need <= int(util * total)``).
    """
    if need <= 0:
        return 0
    b = int(math.ceil(need / util))
    while b > 0 and int(util * min(b - 1, total)) >= need:
        b -= 1
    while int(util * min(b, total)) < need:
        b += 1
    return b


class AdmissionControl:
    """Admit a VM only while utilization stays at or under the target.

    Args:
        total_cores: Cluster core capacity the cap is computed against.
        target_utilization: Maximum allocated-core fraction (paper: 0.7).
    """

    def __init__(self, total_cores: int, target_utilization: float = 0.70):
        if total_cores <= 0:
            raise ConfigurationError(
                f"total cores must be positive: {total_cores}"
            )
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigurationError(
                f"target utilization must be in (0,1]: {target_utilization}"
            )
        self.total_cores = total_cores
        self.target_utilization = target_utilization

    def core_cap(self, capacity_cores: int | None = None) -> int:
        """Maximum allocated cores under the cap.

        Args:
            capacity_cores: The capacity the cap is relative to.  The
                paper's behaviour — utilization measured against
                *currently powered* capacity — passes the live power
                budget here; passing None uses total cores (a static
                cap, the ablation variant).
        """
        if capacity_cores is None:
            capacity_cores = self.total_cores
        capacity_cores = min(capacity_cores, self.total_cores)
        return int(self.target_utilization * capacity_cores)

    def admits(
        self, vm: VM, allocated_cores: int, capacity_cores: int | None = None
    ) -> bool:
        """True if placing ``vm`` keeps allocation within the cap."""
        return allocated_cores + vm.cores <= self.core_cap(capacity_cores)

    def headroom_cores(
        self, allocated_cores: int, capacity_cores: int | None = None
    ) -> int:
        """Cores still admittable under the cap (never negative)."""
        return max(0, self.core_cap(capacity_cores) - allocated_cores)
