"""Runtime VM objects inside the datacenter simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import AllocationError
from ..workload import VMClass, VMRequest, VMType


class VMState(enum.Enum):
    """Lifecycle of a VM inside a site.

    PENDING: admitted to the queue but not yet running (no power).
    RUNNING: placed on a server and consuming cores.
    PAUSED: degradable VM parked in place during a power dip.
    MIGRATED_OUT: evicted from this site (running elsewhere).
    COMPLETED: lifetime exhausted.
    REJECTED: refused by admission control.
    """

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    MIGRATED_OUT = "migrated_out"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class VM:
    """A VM instance being simulated.

    Lifetime accounting: ``remaining_steps`` counts down only while the
    VM is RUNNING — a paused or queued VM makes no progress, matching
    how degradable (spot/harvest) workloads actually behave.

    Attributes:
        request: The originating workload request.
        state: Current lifecycle state.
        server_id: Hosting server index while RUNNING/PAUSED, else None.
        remaining_steps: Steps of execution still owed.
        migrations: How many times this VM has been migrated.
        finish_step: The step the simulator expects the VM to complete,
            while RUNNING; None otherwise.  Maintained by the simulator's
            event-driven completion schedule.
        vm_id / cores / memory_bytes / is_stable: Request-derived values
            cached as plain attributes at construction — the request is
            frozen, and these sit on the simulator's hottest paths
            (placement, eviction planning, admission), where a chain of
            two property calls per read is measurable at fleet scale.
    """

    request: VMRequest
    state: VMState = VMState.PENDING
    server_id: int | None = None
    remaining_steps: int = field(default=-1)
    migrations: int = 0
    finish_step: int | None = None

    def __post_init__(self) -> None:
        request = self.request
        self.vm_id = request.vm_id
        self.cores = request.cores
        self.memory_bytes = request.memory_bytes
        self.is_stable = request.vm_class is VMClass.STABLE
        if self.remaining_steps < 0:
            self.remaining_steps = request.lifetime_steps

    @property
    def vm_type(self) -> VMType:
        """The VM's size."""
        return self.request.vm_type

    @property
    def vm_class(self) -> VMClass:
        """Stable or degradable."""
        return self.request.vm_class

    def place(self, server_id: int) -> None:
        """Mark the VM as running on ``server_id``."""
        if self.state not in (VMState.PENDING, VMState.MIGRATED_OUT):
            raise AllocationError(
                f"cannot place VM {self.vm_id} from state {self.state}"
            )
        self.state = VMState.RUNNING
        self.server_id = server_id

    def evict(self) -> None:
        """Mark the VM as migrated out of this site."""
        if self.state is not VMState.RUNNING:
            raise AllocationError(
                f"cannot evict VM {self.vm_id} from state {self.state}"
            )
        self.state = VMState.MIGRATED_OUT
        self.server_id = None
        self.migrations += 1

    def pause(self) -> None:
        """Park a degradable VM in place during a power dip."""
        if self.state is not VMState.RUNNING:
            raise AllocationError(
                f"cannot pause VM {self.vm_id} from state {self.state}"
            )
        if self.is_stable:
            raise AllocationError(
                f"stable VM {self.vm_id} cannot be paused, only migrated"
            )
        self.state = VMState.PAUSED

    def resume(self) -> None:
        """Resume a paused degradable VM on its original server."""
        if self.state is not VMState.PAUSED:
            raise AllocationError(
                f"cannot resume VM {self.vm_id} from state {self.state}"
            )
        self.state = VMState.RUNNING

    def tick(self) -> bool:
        """Advance one step of execution; return True when finished."""
        if self.state is not VMState.RUNNING:
            return False
        self.remaining_steps -= 1
        if self.remaining_steps <= 0:
            self.state = VMState.COMPLETED
            self.server_id = None
            return True
        return False
