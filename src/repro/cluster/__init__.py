"""Single-site datacenter simulator.

This is the engine behind the paper's §3 experiment: a cluster of ~700
servers (40 cores, 512 GB each) fed by an Azure-like VM arrival trace
and powered by a renewable trace scaled so full power runs the whole
cluster.  When power drops the simulator first powers down unallocated
cores, then migrates VMs out round-robin; when power returns it launches
queued VMs and counts them as in-migrations.  Admission control holds
utilization at a target (70% in the paper).

Public surface: :class:`~repro.cluster.datacenter.Datacenter` plus the
configuration/result types it exposes.
"""

from .resources import ServerSpec, ClusterSpec
from .server import Server
from .vm import VM, VMState
from .allocation import (
    AllocationPolicy,
    BestFit,
    FirstFit,
    WorstFit,
    make_policy,
)
from .admission import AdmissionControl
from .power import PowerModel, LinearCorePower, ServerGranularPower
from .migration import EvictionPlanner, EvictionOrder
from .events import (
    Event,
    EventKind,
    EventLog,
)
from .livemigration import (
    LiveMigrationModel,
    MigrationEstimate,
    amplification_factor,
    estimate_migration,
)
from .datacenter import Datacenter, DatacenterConfig, StepRecord, SimulationResult

__all__ = [
    "ServerSpec",
    "ClusterSpec",
    "Server",
    "VM",
    "VMState",
    "AllocationPolicy",
    "BestFit",
    "FirstFit",
    "WorstFit",
    "make_policy",
    "AdmissionControl",
    "PowerModel",
    "LinearCorePower",
    "ServerGranularPower",
    "EvictionPlanner",
    "EvictionOrder",
    "Event",
    "EventKind",
    "EventLog",
    "LiveMigrationModel",
    "MigrationEstimate",
    "amplification_factor",
    "estimate_migration",
    "Datacenter",
    "DatacenterConfig",
    "StepRecord",
    "SimulationResult",
]
