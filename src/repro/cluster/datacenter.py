"""The single-site datacenter simulator (§3's experiment engine).

Per step, the simulator:

1. Derives the powered-core budget from the site's power trace.
2. Completes VMs whose lifetimes ended.
3. If running cores exceed the budget, frees cores: degradable VMs can
   be paused in place (optional), stable/remaining VMs are migrated out
   round-robin across servers — each eviction moves the VM's allocated
   memory across the WAN (the paper's traffic estimate).
4. Admits arrivals while allocation stays under the utilization cap and
   the power budget; arrivals that cannot start are queued ("rejected"
   in the paper's wording).
5. When power allows, launches queued VMs — each launch counts as an
   in-migration, again moving its memory footprint.

Two execution engines share the exact same phase code and state:

``engine="dense"`` steps every grid point — the reference loop.

``engine="event"`` (the default) is event-driven: it wakes only at
steps where something can happen — VM arrivals, scheduled finishes
(min-heap), queue-patience expiries (min-heap), and *power-change
steps* where the precomputed core-budget series crosses a wake
threshold (budget below running cores → eviction; budget at or above
``running + head_of_paused`` → resume; budget reaching the smallest
power-blocked queued VM's requirement → launch).  Every skipped step
is provably a no-op: between wake steps no state mutates, so its
record is a forward-fill of running/allocated/queue-length with zero
counts.  VM completions are batched per server (one bucket move per
server per step), and per-step records accumulate into preallocated
numpy columns rather than a list of dataclasses.

Placement uses a free-core-bucketed server pool (sorted-list buckets
with a nonempty-bucket index) so a 700-server year-long simulation
runs in seconds rather than hours.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Sequence

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..supply import SupplyDispatcher, SupplyEvaluation, SupplyStack
from ..traces import PowerTrace
from ..units import TimeGrid, bytes_to_gb
from ..workload import VMRequest
from .admission import AdmissionControl, min_budget_for_cap
from .events import EventKind, EventLog, NullEventLog
from .kernel import StepKernel
from .livemigration import LiveMigrationModel, estimate_migration
from .migration import EvictionOrder, EvictionPlanner
from .power import (
    LinearCorePower,
    PowerModel,
    ServerGranularPower,
    min_norm_for_budget,
)
from .resources import ClusterSpec
from .server import Server
from .vm import VM, VMState


@dataclass(frozen=True)
class DatacenterConfig:
    """Configuration of a single simulated VB site.

    Attributes:
        cluster: Hardware shape (paper: 700 x 40 cores x 512 GB).
        admission_utilization: Allocation cap as a fraction of total
            cores (paper: 0.70).
        allocation: Placement policy name: ``bestfit`` (default),
            ``firstfit``, or ``worstfit``.
        power_model: ``linear`` (cores scale with power, the paper's
            model) or ``server`` (server-granular gating with idle
            draw).
        eviction_order: Victim choice within a server during round-robin
            eviction.
        pause_degradable: Park degradable VMs in place instead of
            migrating them (the §3.1 co-scheduler behaviour).
        queue_patience_steps: How long a queued VM waits for power
            before giving up (and presumably being served elsewhere).
        power_relative_admission: When True (the paper's behaviour),
            the utilization cap is measured against *currently powered*
            capacity, so allocation tracks generation with headroom and
            minor dips are absorbed by unallocated cores.  When False
            the cap is static against total cores (ablation variant).
        migration_model: Optional pre-copy live-migration model (the
            paper's footnote-2 future work).  When set, migration
            traffic is the model's wire bytes (pre-copy amplification
            over the single memory copy the paper assumes) instead of
            the raw memory size.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    admission_utilization: float = 0.70
    allocation: str = "bestfit"
    power_model: str = "linear"
    eviction_order: EvictionOrder = EvictionOrder.FIRST_PLACED
    pause_degradable: bool = False
    queue_patience_steps: int = 96
    power_relative_admission: bool = True
    migration_model: "LiveMigrationModel | None" = None

    def __post_init__(self) -> None:
        if self.allocation not in ("bestfit", "firstfit", "worstfit"):
            raise ConfigurationError(
                f"unknown allocation policy: {self.allocation!r}"
            )
        if self.power_model not in ("linear", "server"):
            raise ConfigurationError(
                f"unknown power model: {self.power_model!r}"
            )
        if self.queue_patience_steps < 0:
            raise ConfigurationError(
                f"queue patience must be >= 0: {self.queue_patience_steps}"
            )


@dataclass(frozen=True)
class StepRecord:
    """Everything measured in one simulation step."""

    step: int
    norm_power: float
    core_budget: int
    running_cores: int
    allocated_cores: int
    out_bytes: float
    in_bytes: float
    n_arrivals: int
    n_admitted: int
    n_queued: int
    n_launched: int
    n_evicted: int
    n_paused: int
    n_resumed: int
    n_completed: int
    n_expired: int
    queue_length: int


class StepColumns:
    """Columnar per-step measurements, preallocated for the whole run.

    Count and byte columns start at zero, so skipped (no-op) steps only
    need their carried-forward state columns filled.
    """

    __slots__ = (
        "n", "norm_power", "core_budget", "running_cores",
        "allocated_cores", "out_bytes", "in_bytes", "n_arrivals",
        "n_admitted", "n_queued", "n_launched", "n_evicted", "n_paused",
        "n_resumed", "n_completed", "n_expired", "queue_length",
    )

    #: Column name → float dtype flag (int64 otherwise); the layout the
    #: fleet engine's site-major block allocation mirrors.
    FLOAT_COLUMNS = ("norm_power", "out_bytes", "in_bytes")

    def __init__(self, n: int):
        self.n = n
        self.norm_power = np.zeros(n)
        self.core_budget = np.zeros(n, dtype=np.int64)
        self.running_cores = np.zeros(n, dtype=np.int64)
        self.allocated_cores = np.zeros(n, dtype=np.int64)
        self.out_bytes = np.zeros(n)
        self.in_bytes = np.zeros(n)
        self.n_arrivals = np.zeros(n, dtype=np.int64)
        self.n_admitted = np.zeros(n, dtype=np.int64)
        self.n_queued = np.zeros(n, dtype=np.int64)
        self.n_launched = np.zeros(n, dtype=np.int64)
        self.n_evicted = np.zeros(n, dtype=np.int64)
        self.n_paused = np.zeros(n, dtype=np.int64)
        self.n_resumed = np.zeros(n, dtype=np.int64)
        self.n_completed = np.zeros(n, dtype=np.int64)
        self.n_expired = np.zeros(n, dtype=np.int64)
        self.queue_length = np.zeros(n, dtype=np.int64)

    @classmethod
    def from_views(cls, n: int, views: dict) -> "StepColumns":
        """Wrap preallocated per-column arrays (site rows of a fleet
        engine's site-major matrices) without allocating.

        ``views`` must supply one zeroed length-``n`` array per column
        slot (every name in ``__slots__`` except ``n``).
        """
        cols = object.__new__(cls)
        cols.n = n
        for name in cls.__slots__[1:]:
            setattr(cols, name, views[name])
        return cols


class SimulationResult:
    """Full output of a single-site run.

    Measurements are stored columnar in :attr:`columns`; the
    :attr:`records` list of :class:`StepRecord` is materialized lazily
    on first access.  Series accessors return the stored arrays
    directly (one array per series for the run's lifetime) instead of
    rebuilding ``np.array([...])`` per call — treat them as read-only.
    """

    def __init__(
        self,
        grid: TimeGrid,
        config: DatacenterConfig,
        columns: StepColumns,
        events: EventLog,
        site_name: str | None = None,
        supply: SupplyEvaluation | None = None,
    ):
        self.grid = grid
        self.config = config
        self.columns = columns
        self.events = events
        self.site_name = site_name
        #: Per-step supply telemetry (SoC/charge/discharge/curtailment)
        #: when the site ran with a non-empty supply stack, else None.
        self.supply = supply
        self._records: list[StepRecord] | None = None
        self._out_gb: np.ndarray | None = None
        self._in_gb: np.ndarray | None = None
        self._utilization: np.ndarray | None = None

    @property
    def records(self) -> list[StepRecord]:
        """Per-step records (built from the columns on first access)."""
        if self._records is None:
            c = self.columns
            self._records = [
                StepRecord(*row)
                for row in zip(
                    range(c.n),
                    c.norm_power.tolist(),
                    c.core_budget.tolist(),
                    c.running_cores.tolist(),
                    c.allocated_cores.tolist(),
                    c.out_bytes.tolist(),
                    c.in_bytes.tolist(),
                    c.n_arrivals.tolist(),
                    c.n_admitted.tolist(),
                    c.n_queued.tolist(),
                    c.n_launched.tolist(),
                    c.n_evicted.tolist(),
                    c.n_paused.tolist(),
                    c.n_resumed.tolist(),
                    c.n_completed.tolist(),
                    c.n_expired.tolist(),
                    c.queue_length.tolist(),
                )
            ]
        return self._records

    def out_bytes_series(self) -> np.ndarray:
        """Out-migration traffic per step, bytes."""
        return self.columns.out_bytes

    def in_bytes_series(self) -> np.ndarray:
        """In-migration traffic per step, bytes."""
        return self.columns.in_bytes

    def out_gb_series(self) -> np.ndarray:
        """Out-migration traffic per step, GB (paper's unit)."""
        if self._out_gb is None:
            self._out_gb = bytes_to_gb(self.columns.out_bytes)
        return self._out_gb

    def in_gb_series(self) -> np.ndarray:
        """In-migration traffic per step, GB (paper's unit)."""
        if self._in_gb is None:
            self._in_gb = bytes_to_gb(self.columns.in_bytes)
        return self._in_gb

    def power_series(self) -> np.ndarray:
        """Normalized power per step."""
        return self.columns.norm_power

    def utilization_series(self) -> np.ndarray:
        """Allocated-core fraction per step."""
        if self._utilization is None:
            total = self.config.cluster.total_cores
            self._utilization = self.columns.allocated_cores / total
        return self._utilization

    def power_changes_without_migration_fraction(
        self, power_epsilon: float = 1e-9
    ) -> float:
        """Fraction of power *changes* that caused no migration traffic.

        The paper reports >80%: at 70% utilization, minor power moves
        are absorbed by powering (un)allocated cores up or down.
        """
        power = self.columns.norm_power
        if power.size < 2:
            return 1.0
        changed = np.abs(np.diff(power)) > power_epsilon
        changes = int(changed.sum())
        if changes == 0:
            return 1.0
        silent = int(
            (
                changed
                & (self.columns.out_bytes[1:] == 0.0)
                & (self.columns.in_bytes[1:] == 0.0)
            ).sum()
        )
        return silent / changes

    def migration_active_fraction(self, link_gbps: float = 200.0) -> float:
        """Fraction of wall-clock time the WAN link carries migrations.

        §5's discussion point: with a 200 Gbps link per site, migration
        is active only 2-4% of the time.  Each step's traffic occupies
        the link for ``bytes / link_rate`` seconds out of the step.
        """
        step_seconds = self.grid.step_seconds
        rate = link_gbps * 1e9 / 8.0
        total = self.columns.out_bytes + self.columns.in_bytes
        busy = np.minimum(total / rate, step_seconds)
        return float(np.sum(busy) / (self.columns.n * step_seconds))

    def summary_dict(self) -> dict:
        """JSON-ready summary following the shared result schema.

        See :data:`repro.sim.results.SUMMARY_SCHEMA` for the key
        contract shared with
        :meth:`~repro.sim.engine.ExecutionResult.summary_dict` and
        :meth:`~repro.sim.detailed.DetailedResult.summary_dict`.
        """
        out_gb = self.out_gb_series()
        in_gb = self.in_gb_series()
        out_total = float(out_gb.sum())
        in_total = float(in_gb.sum())
        peak = (
            float(max(out_gb.max(), in_gb.max())) if out_gb.size else 0.0
        )
        site = {
            "out_gb": out_total,
            "in_gb": in_total,
            "peak_step_gb": peak,
            "silent_power_change_fraction": (
                self.power_changes_without_migration_fraction()
            ),
            "wan_busy_fraction": self.migration_active_fraction(),
        }
        if self.supply is not None:
            site["supply"] = self.supply.summary()
        return {
            "total_transfer_gb": out_total + in_total,
            "out_gb": out_total,
            "in_gb": in_total,
            "peak_step_gb": peak,
            "sites": {self.site_name or "site": site},
        }


@dataclass
class EngineState:
    """Prepared per-run state of one site's event engine.

    Everything :meth:`Datacenter.run` derives from the request list and
    the supply mode before stepping — the per-step column store, the
    precomputed budget series (open loop), the arrival schedule, and
    the closed-loop dispatcher — extracted so external engines (the
    cross-site :class:`repro.sim.fleet.FleetEngine`) can drive the same
    site machinery wake by wake.  The finish min-heap lives on the
    :class:`Datacenter` itself (state transitions push into it); the
    queue-expiry heap and arrival cursor live here because they belong
    to one run's traversal, not to the cluster.

    Attributes:
        n: Grid length.
        grid: The run's time grid.
        cols: Columnar per-step measurements (possibly views into a
            fleet-shared site-major block).
        budgets: Precomputed core-budget series; ``None`` in closed
            loop, where budgets depend on live demand.
        arrivals_by_step: Step → VMs arriving there.
        arrival_steps: Sorted arrival steps.
        n_requests: Requests offered (for telemetry).
        closed: True when a stateful stack dispatches per step.
        dispatcher: Closed-loop dispatch state, when ``closed``.
        evaluation: Supply telemetry columns (either mode), or None.
        arrival_index: Cursor into :attr:`arrival_steps`.
        expiry_heap: Min-heap of queue-patience expiry steps.
        last: Last processed step (-1 before the first wake).
        processed: Wake steps executed so far.
        kernel: The SoA step kernel when the run was prepared with
            ``kernel=True`` (``engine="soa"`` and fleet runs); the
            object-model fields above stay empty then — the kernel owns
            the arrival schedule and heaps itself.
    """

    n: int
    grid: TimeGrid
    cols: StepColumns
    budgets: np.ndarray | None
    arrivals_by_step: dict[int, list[VM]]
    arrival_steps: list[int]
    n_requests: int
    closed: bool
    dispatcher: SupplyDispatcher | None
    evaluation: SupplyEvaluation | None
    arrival_index: int = 0
    expiry_heap: list[int] = field(default_factory=list)
    last: int = -1
    processed: int = 0
    kernel: StepKernel | None = None


class _ServerPool:
    """Servers bucketed by free cores for O(1)-ish placement queries.

    ``_buckets[f]`` holds the ids of servers with exactly ``f`` free
    cores as a *sorted list*, and ``_nonempty`` is a sorted index of
    the bucket sizes currently populated, so placement queries iterate
    only populated buckets (a nearly-full pool concentrates servers in
    a handful of low-free buckets) and batch releases move a server
    between buckets once per step instead of once per completed VM.

    Sorted buckets make every query deterministic in the server id —
    placement picks the lowest id within the chosen bucket — so results
    are independent of the order in which the bucket was populated
    (sets, the previous representation, iterate in hash-history order).
    """

    def __init__(self, cluster: ClusterSpec):
        self.servers = [
            Server(i, cluster.server) for i in range(cluster.n_servers)
        ]
        self._max_cores = cluster.server.cores
        self._buckets: list[list[int]] = [
            [] for _ in range(self._max_cores + 1)
        ]
        self._buckets[self._max_cores] = list(range(cluster.n_servers))
        self._nonempty: list[int] = (
            [self._max_cores] if cluster.n_servers else []
        )

    def _move(self, server: Server, old_free: int) -> None:
        new_free = server.free_cores
        if new_free == old_free:
            return
        server_id = server.server_id
        bucket = self._buckets[old_free]
        index = bisect_left(bucket, server_id)
        del bucket[index]
        if not bucket:
            nonempty = self._nonempty
            del nonempty[bisect_left(nonempty, old_free)]
        target = self._buckets[new_free]
        if not target:
            insort(self._nonempty, new_free)
        insort(target, server_id)

    def host(self, server: Server, vm: VM) -> None:
        """Place ``vm`` and update buckets."""
        old_free = server.free_cores
        server.host(vm)
        self._move(server, old_free)

    def release(self, server: Server, vm: VM) -> None:
        """Remove ``vm`` and update buckets."""
        old_free = server.free_cores
        server.release(vm)
        self._move(server, old_free)

    def release_batch(self, server: Server, vms: Sequence[VM]) -> None:
        """Remove several VMs from one server with a single bucket move."""
        old_free = server.free_cores
        for vm in vms:
            server.release(vm)
        self._move(server, old_free)

    def find(self, vm: VM, mode: str) -> Server | None:
        """Find a hosting server under the named policy.

        ``bestfit``: smallest adequate free-core count;
        ``worstfit``: largest free-core count;
        ``firstfit``: lowest server id among all that fit.
        Ties within a bucket resolve to the lowest server id.
        """
        need = vm.cores
        if need > self._max_cores:
            return None
        servers = self.servers
        nonempty = self._nonempty
        start = bisect_left(nonempty, need)
        if mode == "bestfit":
            for free in nonempty[start:]:
                for server_id in self._buckets[free]:
                    server = servers[server_id]
                    if server.fits(vm):
                        return server
            return None
        if mode == "worstfit":
            for free in reversed(nonempty[start:]):
                for server_id in self._buckets[free]:
                    server = servers[server_id]
                    if server.fits(vm):
                        return server
            return None
        # firstfit: lowest id overall; buckets are sorted, so scanning
        # each populated bucket can stop at the current best id.
        best_id = None
        for free in nonempty[start:]:
            for server_id in self._buckets[free]:
                if best_id is not None and server_id >= best_id:
                    break
                if servers[server_id].fits(vm):
                    best_id = server_id
                    break
        return servers[best_id] if best_id is not None else None


class Datacenter:
    """A single VB site: cluster + power trace + workload replay.

    Args:
        config: Site configuration.
        power_trace: Normalized generation; the cluster is fully powered
            at 1.0, matching the paper's scaling of the ELIA trace to
            the farm's max capacity.
        supply: Optional supply stack composed behind the trace.  An
            empty (or absent) stack is a strict pass-through: the run is
            bit-identical to the legacy raw-trace path.
        supply_mode: ``"closed"`` (default): the simulator queries the
            stack each processed step with its current demand, so the
            battery charges from real surplus and discharges into real
            dips.  The dense engine executes every step; the event
            engine dispatches per step too, except over windows where
            the stack is provably *pinned* (battery at a SoC bound,
            grid budget exhausted) for the window's balance sign — there
            the dispatch is a bit-exact no-op and whole spans are
            skipped (see :meth:`_run_closed_event`).
            ``"open"``: the stack's precomputed delivered series
            replaces the trace values up front and the engines run
            untouched, skips and all.
        record_events: Keep the per-VM event log (default).  Fleet-scale
            runs pass ``False`` to record columns only — results are
            identical except :attr:`events` stays empty.
    """

    def __init__(
        self,
        config: DatacenterConfig,
        power_trace: PowerTrace,
        supply: SupplyStack | None = None,
        supply_mode: str = "closed",
        record_events: bool = True,
    ):
        if supply_mode not in ("closed", "open"):
            raise ConfigurationError(
                f"unknown supply mode: {supply_mode!r}"
            )
        self.config = config
        self.power_trace = power_trace
        self.supply = supply
        self.supply_mode = supply_mode
        self.pool = _ServerPool(config.cluster)
        self.admission = AdmissionControl(
            config.cluster.total_cores, config.admission_utilization
        )
        if config.power_model == "linear":
            self.power_model: PowerModel = LinearCorePower(config.cluster)
        else:
            self.power_model = ServerGranularPower(config.cluster)
        self.planner = EvictionPlanner(
            config.cluster.n_servers,
            config.eviction_order,
            config.pause_degradable,
        )
        self.events = EventLog() if record_events else NullEventLog()
        self._queue: deque[tuple[VM, int]] = deque()
        self._paused: deque[VM] = deque()
        self._running_cores = 0
        self._allocated_cores = 0
        self._finish_at: dict[int, list[VM]] = {}
        # Min-heap of scheduled finish steps (possibly stale entries;
        # a wake at a stale step is a harmless no-op).
        self._finish_heap: list[int] = []
        # Smallest core count among queued VMs blocked by *power*
        # headroom at the last processed step; None when every queued
        # VM is blocked by packing (budget growth cannot help those).
        self._launch_blocked_min_cores: int | None = None
        # Per-memory-size wire-byte cache for the live-migration model.
        self._wire_cache: dict[float, float] = {}
        # (lower, upper) budget bounds -> norm-space thresholds, cached
        # because closed-loop windows revisit the same few bound pairs.
        self._norm_bounds_cache: dict[
            tuple[int, int | None], tuple[float | None, float | None]
        ] = {}
        # Per-phase wall-clock accumulators (sim.phase.* counters);
        # None keeps the hot step on its timer-free straight-line path.
        self._phase_seconds: dict[str, float] | None = None

    def _wire_bytes_for(self, memory_bytes: float) -> float:
        """Wire bytes for live-migrating a VM of ``memory_bytes``.

        One memory copy (the paper's estimate) without a migration
        model; the pre-copy model's amplified volume with one.  Only
        evictions amplify — a queued VM launching into the site is a
        cold transfer of a single memory image.
        """
        if self.config.migration_model is None:
            return memory_bytes
        cached = self._wire_cache.get(memory_bytes)
        if cached is None:
            cached = estimate_migration(
                memory_bytes, self.config.migration_model
            ).total_bytes
            self._wire_cache[memory_bytes] = cached
        return cached

    def _eviction_wire_bytes(self, vm: VM) -> float:
        """Bytes a live migration of ``vm`` actually puts on the wire."""
        return self._wire_bytes_for(vm.memory_bytes)

    # ------------------------------------------------------------------
    # Internal state transitions (all bookkeeping goes through these)
    # ------------------------------------------------------------------

    def _schedule_finish(self, vm: VM, step: int) -> None:
        finish = step + vm.remaining_steps
        vm.finish_step = finish
        bucket = self._finish_at.get(finish)
        if bucket is None:
            self._finish_at[finish] = [vm]
            heappush(self._finish_heap, finish)
        else:
            bucket.append(vm)

    def _start(self, vm: VM, server: Server, step: int) -> None:
        self.pool.host(server, vm)
        self._running_cores += vm.cores
        self._allocated_cores += vm.cores
        self._schedule_finish(vm, step)

    def _complete(self, vm: VM, step: int) -> None:
        server = self.pool.servers[vm.server_id]
        vm.state = VMState.COMPLETED
        vm.remaining_steps = 0
        vm.finish_step = None
        self.pool.release(server, vm)
        vm.server_id = None
        self._running_cores -= vm.cores
        self._allocated_cores -= vm.cores
        self.events.record(step, EventKind.COMPLETE, vm.vm_id)

    def _evict(self, vm: VM, step: int) -> float:
        server = self.pool.servers[vm.server_id]
        self.pool.release(server, vm)
        # Record how much work the VM still owes wherever it lands next.
        if vm.finish_step is not None:
            vm.remaining_steps = max(1, vm.finish_step - step)
        vm.finish_step = None
        vm.evict()
        self._running_cores -= vm.cores
        self._allocated_cores -= vm.cores
        wire_bytes = self._eviction_wire_bytes(vm)
        self.events.record(step, EventKind.EVICT, vm.vm_id, wire_bytes)
        return wire_bytes

    def _pause(self, vm: VM, step: int) -> None:
        # A paused VM keeps its server reservation (memory stays
        # resident) but its cores power down; it makes no progress, so
        # its remaining work freezes until resume.
        if vm.finish_step is not None:
            vm.remaining_steps = max(1, vm.finish_step - step)
        vm.finish_step = None
        vm.pause()
        self._running_cores -= vm.cores
        self._paused.append(vm)
        self.events.record(step, EventKind.PAUSE, vm.vm_id)

    def _resume(self, vm: VM, step: int) -> None:
        vm.resume()
        self._running_cores += vm.cores
        self._schedule_finish(vm, step)
        self.events.record(step, EventKind.RESUME, vm.vm_id)

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------

    def _phase_completions(self, step: int) -> int:
        finished = self._finish_at.pop(step, [])
        completed = 0
        for vm in finished:
            # Skip stale entries: the VM was paused or evicted after
            # this finish time was scheduled, or was re-scheduled to a
            # later finish (its authoritative finish_step moved on).
            if vm.state is not VMState.RUNNING or vm.finish_step != step:
                continue
            self._complete(vm, step)
            completed += 1
        return completed

    def _phase_completions_batched(self, step: int) -> int:
        """Batched completion: one bucket move per server per step.

        Result-identical to :meth:`_phase_completions` — bucket
        membership after the phase is the same regardless of release
        order, and sorted buckets make placement queries independent of
        insertion order — but a server losing several VMs this step
        re-buckets once.
        """
        finished = self._finish_at.pop(step, None)
        if not finished:
            return 0
        # A same-step pause->resume re-schedules the VM to its original
        # finish step, so the bucket can hold the same (live) VM twice;
        # keep first occurrences only (the per-VM path deduplicates
        # implicitly because completing mutates the state).
        valid: list[VM] = []
        seen: set[int] = set()
        for vm in finished:
            if (
                vm.state is VMState.RUNNING
                and vm.finish_step == step
                and vm.vm_id not in seen
            ):
                seen.add(vm.vm_id)
                valid.append(vm)
        if not valid:
            return 0
        by_server: dict[int, list[VM]] = {}
        for vm in valid:
            by_server.setdefault(vm.server_id, []).append(vm)
        servers = self.pool.servers
        for server_id, vms in by_server.items():
            self.pool.release_batch(servers[server_id], vms)
        freed = 0
        record = self.events.record
        for vm in valid:
            vm.state = VMState.COMPLETED
            vm.remaining_steps = 0
            vm.finish_step = None
            vm.server_id = None
            freed += vm.cores
            record(step, EventKind.COMPLETE, vm.vm_id)
        self._running_cores -= freed
        self._allocated_cores -= freed
        return len(valid)

    def _phase_power_down(
        self, step: int, budget: int
    ) -> tuple[float, int, int]:
        out_bytes = 0.0
        n_evicted = 0
        n_paused = 0
        overflow = self._running_cores - budget
        if overflow <= 0:
            return out_bytes, n_evicted, n_paused
        to_migrate, to_pause = self.planner.plan(
            self.pool.servers, overflow
        )
        for vm in to_pause:
            self._pause(vm, step)
            n_paused += 1
        for vm in to_migrate:
            out_bytes += self._evict(vm, step)
            n_evicted += 1
        return out_bytes, n_evicted, n_paused

    def _phase_resume(self, step: int, budget: int) -> int:
        n_resumed = 0
        while self._paused:
            vm = self._paused[0]
            if vm.state is not VMState.PAUSED:
                self._paused.popleft()
                continue
            if self._running_cores + vm.cores > budget:
                break
            self._paused.popleft()
            self._resume(vm, step)
            n_resumed += 1
        return n_resumed

    def _phase_arrivals(
        self, step: int, budget: int, arrivals: Sequence[VM]
    ) -> tuple[int, int]:
        if not arrivals:
            return 0, 0
        n_admitted = 0
        n_queued = 0
        cap_capacity = budget if self.config.power_relative_admission else None
        cap = self.admission.core_cap(cap_capacity)
        allocation = self.config.allocation
        find = self.pool.find
        record = self.events.record
        for vm in arrivals:
            cores = vm.cores
            server = (
                find(vm, allocation)
                if (
                    self._allocated_cores + cores <= cap
                    and self._running_cores + cores <= budget
                )
                else None
            )
            if server is not None:
                self._start(vm, server, step)
                record(step, EventKind.ADMIT, vm.vm_id)
                n_admitted += 1
            else:
                self._queue.append((vm, step))
                record(step, EventKind.QUEUE, vm.vm_id)
                n_queued += 1
        return n_admitted, n_queued

    def _phase_launches(
        self, step: int, budget: int
    ) -> tuple[float, int, int]:
        if not self._queue:
            self._launch_blocked_min_cores = None
            return 0.0, 0, 0
        in_bytes = 0.0
        n_launched = 0
        n_expired = 0
        blocked_min: int | None = None
        patience = self.config.queue_patience_steps
        cap_capacity = budget if self.config.power_relative_admission else None
        cap = self.admission.core_cap(cap_capacity)
        allocation = self.config.allocation
        find = self.pool.find
        record = self.events.record
        survivors: list[tuple[VM, int]] = []
        pending = len(self._queue)
        for _ in range(pending):
            vm, queued_at = self._queue.popleft()
            if step - queued_at > patience:
                vm.state = VMState.REJECTED
                record(step, EventKind.REJECT, vm.vm_id)
                n_expired += 1
                continue
            headroom = min(
                max(0, cap - self._allocated_cores),
                budget - self._running_cores,
            )
            if headroom <= 0:
                # Nothing more can start this step; keep the rest queued.
                survivors.append((vm, queued_at))
                blocked = vm.cores
                while self._queue:
                    other = self._queue.popleft()
                    survivors.append(other)
                    if other[0].cores < blocked:
                        blocked = other[0].cores
                if blocked_min is None or blocked < blocked_min:
                    blocked_min = blocked
                break
            if vm.cores > headroom:
                if blocked_min is None or vm.cores < blocked_min:
                    blocked_min = vm.cores
                survivors.append((vm, queued_at))
                continue
            server = find(vm, allocation)
            if server is None:
                # Packing failure: more budget cannot start this VM, so
                # it does not contribute a power wake threshold.
                survivors.append((vm, queued_at))
                continue
            self._start(vm, server, step)
            in_bytes += vm.memory_bytes
            record(step, EventKind.LAUNCH, vm.vm_id, vm.memory_bytes)
            n_launched += 1
        self._queue.extend(survivors)
        self._launch_blocked_min_cores = blocked_min
        return in_bytes, n_launched, n_expired

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _step(
        self,
        step: int,
        budget: int,
        arrivals: Sequence[VM],
        cols: StepColumns,
        batched: bool,
    ) -> None:
        """Execute one simulation step and record it columnar.

        Phase timing (the ``sim.phase.*`` counters) only runs when
        :meth:`prepare_run` armed :attr:`_phase_seconds` — the default
        path stays a straight line with zero timing overhead.
        """
        timers = self._phase_seconds
        if timers is None:
            if batched:
                n_completed = self._phase_completions_batched(step)
            else:
                n_completed = self._phase_completions(step)
            out_bytes, n_evicted, n_paused = self._phase_power_down(
                step, budget
            )
            n_resumed = self._phase_resume(step, budget)
            n_admitted, n_queued = self._phase_arrivals(
                step, budget, arrivals
            )
            in_bytes, n_launched, n_expired = self._phase_launches(
                step, budget
            )
        else:
            t0 = perf_counter()
            if batched:
                n_completed = self._phase_completions_batched(step)
            else:
                n_completed = self._phase_completions(step)
            t1 = perf_counter()
            timers["completions"] += t1 - t0
            out_bytes, n_evicted, n_paused = self._phase_power_down(
                step, budget
            )
            t2 = perf_counter()
            timers["power_down"] += t2 - t1
            n_resumed = self._phase_resume(step, budget)
            t3 = perf_counter()
            timers["resume"] += t3 - t2
            n_admitted, n_queued = self._phase_arrivals(
                step, budget, arrivals
            )
            t4 = perf_counter()
            timers["arrivals"] += t4 - t3
            in_bytes, n_launched, n_expired = self._phase_launches(
                step, budget
            )
            timers["launches"] += perf_counter() - t4
        cols.running_cores[step] = self._running_cores
        cols.allocated_cores[step] = self._allocated_cores
        cols.out_bytes[step] = out_bytes
        cols.in_bytes[step] = in_bytes
        cols.n_arrivals[step] = len(arrivals)
        cols.n_admitted[step] = n_admitted
        cols.n_queued[step] = n_queued
        cols.n_launched[step] = n_launched
        cols.n_evicted[step] = n_evicted
        cols.n_paused[step] = n_paused
        cols.n_resumed[step] = n_resumed
        cols.n_completed[step] = n_completed
        cols.n_expired[step] = n_expired
        cols.queue_length[step] = len(self._queue)

    def _budget_series(self, values: np.ndarray) -> np.ndarray:
        """Whole-trace core budgets (vectorized when the model can)."""
        series = getattr(self.power_model, "core_budget_series", None)
        if series is not None:
            return np.asarray(series(values), dtype=np.int64)
        return np.array(
            [self.power_model.core_budget(float(v)) for v in values],
            dtype=np.int64,
        )

    def _launch_wake_threshold(self) -> int | None:
        """Smallest core budget at which a queued VM could launch.

        Derived from the last processed step: ``m`` is the smallest
        core count among queued VMs that were blocked by power headroom
        (packing-blocked VMs cannot be helped by budget growth, and the
        pool only mutates at processed steps).  The budget must cover
        both the power term (``running + m``) and, under power-relative
        admission, the utilization cap ``int(util * budget) >=
        allocated + m`` — inverted in closed form by
        :func:`min_budget_for_cap`.
        """
        m = self._launch_blocked_min_cores
        if m is None:
            return None
        admission = self.admission
        util = admission.target_utilization
        total = admission.total_cores
        need = self._allocated_cores + m
        if need > int(util * total):
            # Even a fully-powered cluster cannot admit under the cap;
            # only allocation shrinking (a completion or eviction — an
            # event in itself) can unblock the queue.
            return None
        running_threshold = self._running_cores + m
        if not self.config.power_relative_admission:
            return running_threshold
        budget = min_budget_for_cap(need, util, total)
        return max(running_threshold, budget)

    def _run_dense(
        self,
        n: int,
        budgets: np.ndarray,
        arrivals_by_step: dict[int, list[VM]],
        cols: StepColumns,
    ) -> int:
        """Reference engine: execute every grid step.

        Returns the number of steps processed (all of them).
        """
        budget_list = budgets.tolist()
        for step in range(n):
            self._step(
                step,
                budget_list[step],
                arrivals_by_step.get(step, ()),
                cols,
                batched=False,
            )
        return n

    def _run_event(
        self,
        n: int,
        budgets: np.ndarray,
        arrivals_by_step: dict[int, list[VM]],
        cols: StepColumns,
    ) -> int:
        """Event-driven engine: wake only where state can change.

        Wake sources: VM arrivals, the finish-step min-heap, the
        queue-expiry min-heap, and the first step in the skipped window
        where the precomputed budget series crosses a wake threshold
        (below running cores, or at/above the resume or launch
        thresholds).  Waking at a stale step is a harmless no-op;
        skipping never drops work (see the wake-threshold proofs in the
        module docstring), so skipped records are exact forward-fills.

        Returns the number of wake steps actually processed; the
        difference from ``n`` is the skipped-step count the run span
        reports.  Wakes are counted in a local int — the loop allocates
        nothing per step for observability.
        """
        processed = 0
        patience = self.config.queue_patience_steps
        arrival_steps = sorted(arrivals_by_step)
        n_arrivals = len(arrival_steps)
        arrival_index = 0
        finish_heap = self._finish_heap
        expiry_heap: list[int] = []
        queue = self._queue
        paused = self._paused
        last = -1
        while True:
            nxt = n
            if arrival_index < n_arrivals:
                nxt = arrival_steps[arrival_index]
            while finish_heap and finish_heap[0] <= last:
                heappop(finish_heap)
            if finish_heap and finish_heap[0] < nxt:
                nxt = finish_heap[0]
            while expiry_heap and expiry_heap[0] <= last:
                heappop(expiry_heap)
            if expiry_heap and expiry_heap[0] < nxt:
                nxt = expiry_heap[0]
            window_start = last + 1
            if window_start < nxt:
                running = self._running_cores
                window = budgets[window_start:nxt]
                wake = window < running if running > 0 else None
                threshold = None
                if paused:
                    threshold = running + paused[0].cores
                if queue:
                    launch_threshold = self._launch_wake_threshold()
                    if launch_threshold is not None and (
                        threshold is None or launch_threshold < threshold
                    ):
                        threshold = launch_threshold
                if threshold is not None:
                    above = window >= threshold
                    wake = above if wake is None else (wake | above)
                if wake is not None:
                    hit = int(np.argmax(wake))
                    if wake[hit]:
                        nxt = window_start + hit
                if window_start < nxt:
                    # Provably no-op span: forward-fill carried state
                    # (counts and bytes are already zero).
                    cols.running_cores[window_start:nxt] = running
                    cols.allocated_cores[window_start:nxt] = (
                        self._allocated_cores
                    )
                    cols.queue_length[window_start:nxt] = len(queue)
            if nxt >= n:
                return processed
            step = nxt
            if (
                arrival_index < n_arrivals
                and arrival_steps[arrival_index] == step
            ):
                arrivals: Sequence[VM] = arrivals_by_step[step]
                arrival_index += 1
            else:
                arrivals = ()
            self._step(step, int(budgets[step]), arrivals, cols, batched=True)
            processed += 1
            if queue and queue[-1][1] == step:
                # VMs queued this step expire (REJECT) the first step
                # their patience is exceeded; wake there even if power
                # never recovers.
                expiry = step + patience + 1
                if expiry < n:
                    heappush(expiry_heap, expiry)
            last = step

    def _demand_cores(self, step: int, arrivals: Sequence[VM]) -> int:
        """Cores the site could productively power this step.

        Work that wants power right now: currently running cores minus
        those completing this step, plus paused VMs awaiting resume,
        queued VMs awaiting launch, and this step's arrivals — capped
        at the cluster size.  An upper estimate (packing and the
        admission cap may keep some of it from starting), which errs
        toward discharging for work that then queues rather than
        browning out work that could run.
        """
        finishing = 0
        bucket = self._finish_at.get(step)
        if bucket:
            seen: set[int] = set()
            for vm in bucket:
                if (
                    vm.state is VMState.RUNNING
                    and vm.finish_step == step
                    and vm.vm_id not in seen
                ):
                    seen.add(vm.vm_id)
                    finishing += vm.cores
        demand = self._running_cores - finishing
        for vm in self._paused:
            if vm.state is VMState.PAUSED:
                demand += vm.cores
        for vm, _ in self._queue:
            demand += vm.cores
        for vm in arrivals:
            demand += vm.cores
        return min(max(demand, 0), self.config.cluster.total_cores)

    def _run_closed(
        self,
        n: int,
        arrivals_by_step: dict[int, list[VM]],
        cols: StepColumns,
        dispatcher: SupplyDispatcher,
        batched: bool,
    ) -> int:
        """Closed-loop engine: dispatch the supply stack every step.

        Battery SoC (and grid budget) evolve from every step's balance,
        so no step is provably a no-op and the event engine's skip
        machinery cannot apply — both engines execute all ``n`` steps
        here, differing only in the (result-identical) batched
        completion path.
        """
        core_budget = self.power_model.core_budget
        norm_for_cores = self.power_model.norm_for_cores
        dispatch = dispatcher.dispatch
        for step in range(n):
            arrivals = arrivals_by_step.get(step, ())
            demand_norm = norm_for_cores(self._demand_cores(step, arrivals))
            delivered = dispatch(step, demand_norm)
            delivered = min(max(delivered, 0.0), 1.0)
            budget = core_budget(delivered)
            cols.norm_power[step] = delivered
            cols.core_budget[step] = budget
            self._step(step, budget, arrivals, cols, batched=batched)
        return n

    def _norm_bounds(
        self, lower: int, upper: int | None
    ) -> tuple[float | None, float | None]:
        """Budget wake thresholds translated to delivered-norm space.

        Returns ``(lo_norm, up_norm)`` for the closed-loop span kernel:
        a clipped delivered power below ``lo_norm`` means the budget
        would drop below running cores, one at or above ``up_norm``
        means it could resume or launch work.  Thresholds are the exact
        minimal floats (:func:`min_norm_for_budget`), so norm-space
        crossings equal budget-space crossings bit for bit.  Cached per
        bound pair — closed-loop windows revisit the same handful of
        ``(running, threshold)`` pairs all run long, and each miss costs
        a closed-form inverse plus a few ``nextafter`` probes.
        """
        key = (lower, upper)
        cached = self._norm_bounds_cache.get(key)
        if cached is not None:
            return cached
        lo_norm: float | None = None
        if lower > 0:
            lo_norm = min_norm_for_budget(self.power_model, lower)
            if lo_norm is None:
                # Even full power cannot cover what is running: every
                # step's budget sits below the eviction threshold.
                lo_norm = np.inf
        up_norm: float | None = None
        if upper is not None:
            up_norm = min_norm_for_budget(self.power_model, upper)
        bounds = (lo_norm, up_norm)
        self._norm_bounds_cache[key] = bounds
        return bounds

    def _run_closed_event(
        self,
        n: int,
        site,
        cols: StepColumns,
        dispatcher: SupplyDispatcher,
    ) -> int:
        """Closed-loop event engine: skip windows the stack cannot touch.

        Per-step dispatch is unavoidable while any component's state can
        move, but once the stack is *pinned* for a balance sign — every
        battery at the relevant SoC bound, every grid budget exhausted —
        a dispatch on that sign returns exactly ``base / capacity``,
        mutates nothing, and accrues no telemetry.  A window is skipped
        when (a) it ends before the next arrival / finish / expiry
        event, (b) every step's balance keeps a sign the stack is
        pinned for (demand is constant between events, so the sign
        series is precomputable), and (c) the window's would-be budget
        series never crosses an eviction / resume / launch wake
        threshold (the open-loop event engine's scan, applied to the
        reconstructed budgets).  Skipped steps get vectorized fills of
        the step columns and the supply telemetry, bit-identical to
        per-step dispatch (golden-tested against :meth:`_run_closed`).

        ``site`` is the cluster side of the loop behind a small wake
        protocol — ``demand_at`` / ``step_wake`` / ``next_event`` /
        ``window_demand`` / ``wake_bounds`` / ``carried_state`` — so the
        same driver runs the object model (:class:`_ClosedEventSite`)
        and the SoA kernel (:class:`~repro.cluster.kernel.StepKernel`)
        unchanged.
        """
        return self.advance_closed_event(site, cols, dispatcher, 0, n)

    def closed_span_precompute(
        self, dispatcher: SupplyDispatcher
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-run arrays the closed-loop window machinery commits.

        A pinned window behaves open-loop: delivered is the base round
        trip (modulo the rare covered-demand ulp clamp), so the
        whole-run clip and budget series can be precomputed once and
        windows commit views into them instead of recomputing.
        Sessions advancing a run tick by tick cache the tuple across
        :meth:`advance_closed_event` calls.
        """
        base_mw = dispatcher.base_mw_series()
        rt_full = base_mw / dispatcher.capacity_mw
        clipped_full = np.clip(rt_full, 0.0, 1.0)
        budgets_full = self._budget_series(clipped_full)
        return base_mw, rt_full, clipped_full, budgets_full

    def advance_closed_event(
        self,
        site,
        cols: StepColumns,
        dispatcher: SupplyDispatcher,
        step: int,
        until: int,
        precomp: tuple | None = None,
    ) -> int:
        """Run the closed-loop event engine over ``[step, until)``.

        The resumable core of :meth:`_run_closed_event`: dispatches and
        wakes exactly as the full run would, but halts once the cursor
        reaches ``until`` (windows are clamped there).  Because a wake
        at a provably no-op step is harmless and dispatching a pinned
        or in-span step is bit-identical either way, splitting a run
        into consecutive ``[step, until)`` segments produces columns,
        event logs, and supply telemetry identical to one uninterrupted
        call — the invariant checkpoint/resume sessions rely on.

        Args:
            site: Wake-protocol adapter (object model or SoA kernel).
            cols: The run's column store.
            dispatcher: The run's closed-loop supply dispatcher.
            step: First step to process (0, or a previous ``until``).
            until: One past the last step to process (≤ grid length).
            precomp: Optional cached :meth:`closed_span_precompute`
                tuple; recomputed when omitted.

        Returns:
            Wake steps dispatched within the segment.
        """
        processed = 0
        core_budget = self.power_model.core_budget
        norm_for_cores = self.power_model.norm_for_cores
        dispatch = dispatcher.dispatch
        if precomp is None:
            precomp = self.closed_span_precompute(dispatcher)
        base_mw, rt_full, clipped_full, budgets_full = precomp
        capacity = dispatcher.capacity_mw
        # A span-kernel crossing has already dispatched its step; the
        # delivered value is handed to the wake iteration via
        # ``pending`` instead of dispatching twice.
        pending: float | None = None
        while step < until:
            if pending is None:
                demand_norm = norm_for_cores(site.demand_at(step))
                delivered = dispatch(step, demand_norm)
            else:
                delivered = pending
                pending = None
            delivered = min(max(delivered, 0.0), 1.0)
            budget = core_budget(delivered)
            cols.norm_power[step] = delivered
            cols.core_budget[step] = budget
            site.step_wake(step, budget)
            processed += 1
            start = step + 1
            if start >= until:
                break
            # Window end: the next step where something can happen
            # regardless of power (arrival, scheduled finish, queue
            # expiry).  Stale heap tops are spent events.  Segment runs
            # clamp the window at ``until``; the first step beyond it is
            # dispatched as a (harmless, bit-identical) wake on resume.
            stop = site.next_event()
            if stop > until:
                stop = until
            if stop <= start:
                step = start
                continue
            # Demand is constant between events (running / paused /
            # queued only mutate at processed steps, and no VM finishes
            # inside the window), so one value covers the whole window.
            demand_norm = max(norm_for_cores(site.window_demand()), 0.0)
            running, upper = site.wake_bounds()
            pinned_surplus = dispatcher.pinned(True)
            pinned_deficit = dispatcher.pinned(False)
            if not pinned_surplus and not pinned_deficit:
                # Live stack: component state moves every step, so the
                # window cannot be skipped — but it can run as one
                # scalar span (inlined component arithmetic, telemetry
                # flushed in bulk) that halts at the first wake-
                # threshold crossing.  Only crossings execute the step;
                # every other step is a provable no-op whose columns
                # forward-fill below.
                lo_norm, up_norm = self._norm_bounds(running, upper)
                deliveries, crossed = dispatcher.advance_span(
                    start, stop, demand_norm, lo_norm, up_norm
                )
                fill = len(deliveries) - 1 if crossed else len(deliveries)
                if fill:
                    fill_end = start + fill
                    clipped_w = np.clip(
                        np.array(deliveries[:fill]), 0.0, 1.0
                    )
                    run_c, alloc_c, qlen = site.carried_state()
                    cols.norm_power[start:fill_end] = clipped_w
                    cols.core_budget[start:fill_end] = (
                        self._budget_series(clipped_w)
                    )
                    cols.running_cores[start:fill_end] = run_c
                    cols.allocated_cores[start:fill_end] = alloc_c
                    cols.queue_length[start:fill_end] = qlen
                if crossed:
                    pending = deliveries[-1]
                    step = start + len(deliveries) - 1
                else:
                    # The span may have returned early because the
                    # stack went idle (pinned for the sign it was
                    # dispatching) partway through the window; resume
                    # right after the prefix so the pinned-window
                    # vectorized path below takes over the remainder.
                    step = start + len(deliveries)
                continue
            # Pinned window: every dispatch of the window's balance
            # sign is a provable no-op, so the whole span vectorizes.
            # ``covered`` doubles as the balance sign:
            # balance >= 0  ⟺  base_mw >= demand_mw.
            demand_mw = demand_norm * capacity
            covered = base_mw[start:stop] >= demand_mw
            if not (pinned_surplus and pinned_deficit):
                off_sign = ~covered if pinned_surplus else covered
                flip = int(np.argmax(off_sign))
                if off_sign[flip]:
                    stop = start + flip
                if stop <= start:
                    step = start
                    continue
                covered = covered[: stop - start]
            # With the stack pinned, dispatch returns the base round
            # trip, clamped up to the demand on covered steps (the same
            # ulp guard the scalar path applies).  The clamp fires only
            # when the round trip lands an ulp under the demand, so the
            # common case commits precomputed views untouched.
            rt = rt_full[start:stop]
            clamp = covered & (rt < demand_norm)
            if clamp.any():
                delivered_w = np.where(clamp, demand_norm, rt)
                clipped = np.clip(delivered_w, 0.0, 1.0)
                budgets_w = self._budget_series(clipped)
            else:
                delivered_w = rt
                clipped = clipped_full[start:stop]
                budgets_w = budgets_full[start:stop]
            # The open-loop engine's budget-crossing scan, applied to
            # the window's would-be budgets.
            wake = budgets_w < running if running > 0 else None
            if upper is not None:
                above = budgets_w >= upper
                wake = above if wake is None else (wake | above)
            if wake is not None:
                hit = int(np.argmax(wake))
                if wake[hit]:
                    stop = start + hit
            if stop <= start:
                step = start
                continue
            width = stop - start
            run_c, alloc_c, qlen = site.carried_state()
            cols.norm_power[start:stop] = clipped[:width]
            cols.core_budget[start:stop] = budgets_w[:width]
            cols.running_cores[start:stop] = run_c
            cols.allocated_cores[start:stop] = alloc_c
            cols.queue_length[start:stop] = qlen
            balance = base_mw[start:stop] - demand_mw
            dispatcher.fill_skipped(
                start, stop, balance, delivered_w[:width]
            )
            step = stop
        return processed

    # ------------------------------------------------------------------
    # Run preparation / finalization (shared with the fleet engine)
    # ------------------------------------------------------------------

    @property
    def closed_loop(self) -> bool:
        """True when this site dispatches supply against live demand.

        Closed-loop budgets cannot be precomputed, so such sites cannot
        join a fleet group's shared budget matrix.
        """
        supply = self.supply
        return (
            supply is not None
            and not supply.stateless
            and self.supply_mode == "closed"
        )

    #: Phase keys of the ``sim.phase.*`` timing counters, in step order.
    PHASE_NAMES = (
        "completions", "power_down", "resume", "arrivals", "launches"
    )

    def prepare_run(
        self,
        requests: Sequence[VMRequest],
        cols: StepColumns | None = None,
        kernel: bool = False,
    ) -> EngineState:
        """Build the per-run engine state :meth:`run` executes over.

        Extracted so external engines — the cross-site
        :class:`repro.sim.fleet.FleetEngine` — can prepare many sites
        and interleave their wakes.  Materializes VM objects per
        arrival step, resolves the supply mode (closed-loop dispatcher
        vs open-loop precomputed delivery), and precomputes the budget
        series and power columns for open-loop runs.

        Args:
            requests: VM arrivals to replay.
            cols: Optional preallocated column store (the fleet engine
                passes views into one site-major block); allocated
                fresh when omitted.
            kernel: Build a :class:`~repro.cluster.kernel.StepKernel`
                over the requests instead of materializing VM objects
                (``engine="soa"`` and fleet runs).
        """
        grid = self.power_trace.grid
        n = grid.n
        # Arm the per-phase timers only under observability — the
        # default step stays on its timer-free straight-line path.
        self._phase_seconds = (
            dict.fromkeys(self.PHASE_NAMES, 0.0) if obs.enabled() else None
        )
        arrivals_by_step: dict[int, list[VM]] = {}
        if not kernel:
            for request in requests:
                if request.arrival_step >= n:
                    continue
                arrivals_by_step.setdefault(
                    request.arrival_step, []
                ).append(VM(request))
        supply = self.supply
        if supply is not None and supply.stateless:
            supply = None
        closed = self.closed_loop
        evaluation: SupplyEvaluation | None = None
        dispatcher: SupplyDispatcher | None = None
        if cols is None:
            cols = StepColumns(n)
        if closed:
            # Budgets cannot be precomputed — each step's delivered
            # power depends on live demand; the closed engines fill the
            # power/budget columns as they dispatch.
            dispatcher = supply.dispatcher(self.power_trace)
            evaluation = dispatcher.evaluation
            budgets = None
        else:
            if supply is not None:
                evaluation = supply.evaluate_open_loop(self.power_trace)
                values = np.asarray(evaluation.delivered, dtype=float)
            else:
                values = np.asarray(self.power_trace.values, dtype=float)
            budgets = self._budget_series(values)
            if n:
                cols.norm_power[:] = values
                cols.core_budget[:] = budgets
        return EngineState(
            n=n,
            grid=grid,
            cols=cols,
            budgets=budgets,
            arrivals_by_step=arrivals_by_step,
            arrival_steps=sorted(arrivals_by_step),
            n_requests=len(requests),
            closed=closed,
            dispatcher=dispatcher,
            evaluation=evaluation,
            kernel=StepKernel(self, requests, cols) if kernel else None,
        )

    def finish_run(self, state: EngineState, engine: str) -> SimulationResult:
        """Emit post-run telemetry and assemble the result."""
        site = self.power_trace.name
        cols = state.cols
        if state.evaluation is not None:
            state.evaluation.emit_metrics(site=site)
        if obs.enabled():
            # Aggregates come from the preallocated columns after the
            # run — the hot loops stay observability-free.
            obs.count("sim.wakes", state.processed, site=site, engine=engine)
            obs.count(
                "sim.steps_skipped", state.n - state.processed,
                site=site, engine=engine,
            )
            obs.count(
                "sim.evictions", int(cols.n_evicted.sum()), site=site
            )
            obs.count(
                "sim.migrations_in", int(cols.n_launched.sum()),
                site=site,
            )
            obs.count("sim.pauses", int(cols.n_paused.sum()), site=site)
            obs.count("sim.resumes", int(cols.n_resumed.sum()), site=site)
            obs.count(
                "sim.completions", int(cols.n_completed.sum()), site=site
            )
            obs.count(
                "sim.rejections", int(cols.n_expired.sum()), site=site
            )
            timers = self._phase_seconds
            if timers is not None:
                for phase, seconds in timers.items():
                    obs.count(
                        f"sim.phase.{phase}_us", int(seconds * 1e6),
                        site=site, engine=engine,
                    )
        return SimulationResult(
            state.grid, self.config, cols, self.events, site_name=site,
            supply=state.evaluation,
        )

    # ------------------------------------------------------------------
    # Wake-by-wake advancement (driven by the fleet engine)
    # ------------------------------------------------------------------

    def next_event_step(self, state: EngineState) -> int:
        """Next arrival / finish / expiry at or after ``state.last + 1``.

        Returns ``state.n`` when no further event is scheduled.  Pops
        stale heap tops (spent finish buckets, past expiries) as the
        open-loop event loop does.
        """
        nxt = state.n
        if state.arrival_index < len(state.arrival_steps):
            nxt = state.arrival_steps[state.arrival_index]
        last = state.last
        heap = self._finish_heap
        while heap and heap[0] <= last:
            heappop(heap)
        if heap and heap[0] < nxt:
            nxt = heap[0]
        heap = state.expiry_heap
        while heap and heap[0] <= last:
            heappop(heap)
        if heap and heap[0] < nxt:
            nxt = heap[0]
        return nxt

    def wake_bounds(self) -> tuple[int, int | None]:
        """Budget thresholds that make a skipped step impossible.

        Returns ``(lower, upper)``: a budget *below* ``lower`` forces
        evictions, one *at or above* ``upper`` can resume or launch
        work (``None`` when neither resumes nor launches are possible).
        Both derive from the state at the last processed step, exactly
        like the window scan in :meth:`_run_event`.
        """
        running = self._running_cores
        upper: int | None = None
        if self._paused:
            upper = running + self._paused[0].cores
        if self._queue:
            launch = self._launch_wake_threshold()
            if launch is not None and (upper is None or launch < upper):
                upper = launch
        return running, upper

    def process_wake(self, state: EngineState, step: int) -> None:
        """Execute one wake step under the precomputed budget series.

        The caller (fleet engine) is responsible for having filled the
        forward-fill window ``(state.last, step)`` before advancing.
        """
        if (
            state.arrival_index < len(state.arrival_steps)
            and state.arrival_steps[state.arrival_index] == step
        ):
            arrivals: Sequence[VM] = state.arrivals_by_step[step]
            state.arrival_index += 1
        else:
            arrivals = ()
        self._step(
            step, int(state.budgets[step]), arrivals, state.cols,
            batched=True,
        )
        state.processed += 1
        queue = self._queue
        if queue and queue[-1][1] == step:
            # VMs queued this step expire (REJECT) the first step their
            # patience is exceeded; wake there even if power never
            # recovers.
            expiry = step + self.config.queue_patience_steps + 1
            if expiry < state.n:
                heappush(state.expiry_heap, expiry)
        state.last = step

    def carried_state(self) -> tuple[int, int, int]:
        """(running, allocated, queue length) for forward-fill windows."""
        return self._running_cores, self._allocated_cores, len(self._queue)

    def run(
        self, requests: Sequence[VMRequest], *, engine: str = "event"
    ) -> SimulationResult:
        """Replay ``requests`` against the power trace.

        Args:
            requests: VM arrivals to replay.
            engine: ``"event"`` (default) skips provably no-op steps
                over the object model; ``"dense"`` executes every grid
                step; ``"soa"`` runs the event loop over the
                structure-of-arrays :class:`~repro.cluster.kernel.\
StepKernel` instead of VM/Server objects.  All engines produce
                identical results (enforced by the golden equivalence
                tests).

        Returns:
            Per-step records plus the full event log.
        """
        if engine not in ("event", "dense", "soa"):
            raise ConfigurationError(f"unknown simulation engine: {engine!r}")
        state = self.prepare_run(requests, kernel=engine == "soa")
        n = state.n
        cols = state.cols
        arrivals_by_step = state.arrivals_by_step
        with obs.span(
            "datacenter.run",
            site=self.power_trace.name,
            engine=engine,
            n_steps=n,
            n_requests=state.n_requests,
        ):
            if state.closed:
                if engine == "soa":
                    state.processed = self._run_closed_event(
                        n, state.kernel, cols, state.dispatcher
                    )
                elif engine == "event":
                    state.processed = self._run_closed_event(
                        n, _ClosedEventSite(self, state), cols,
                        state.dispatcher,
                    )
                else:
                    state.processed = self._run_closed(
                        n, arrivals_by_step, cols, state.dispatcher,
                        batched=False,
                    )
            elif engine == "soa":
                state.processed = state.kernel.run_event(state.budgets)
            elif engine == "dense":
                state.processed = self._run_dense(
                    n, state.budgets, arrivals_by_step, cols
                )
            else:
                state.processed = self._run_event(
                    n, state.budgets, arrivals_by_step, cols
                )
            return self.finish_run(state, engine)


class _ClosedEventSite:
    """Object-model side of the closed-loop wake protocol.

    Adapts a :class:`Datacenter` plus its :class:`EngineState` (arrival
    cursor, expiry heap) to the site interface
    :meth:`Datacenter._run_closed_event` drives, mirroring what
    :class:`~repro.cluster.kernel.StepKernel` implements natively.
    """

    __slots__ = ("dc", "state")

    def __init__(self, dc: Datacenter, state: EngineState):
        self.dc = dc
        self.state = state

    def demand_at(self, step: int) -> int:
        """Demand at a wake step, including its unconsumed arrivals."""
        state = self.state
        if (
            state.arrival_index < len(state.arrival_steps)
            and state.arrival_steps[state.arrival_index] == step
        ):
            arrivals: Sequence[VM] = state.arrivals_by_step[step]
        else:
            arrivals = ()
        return self.dc._demand_cores(step, arrivals)

    def step_wake(self, step: int, budget: int) -> None:
        """Consume the step's arrivals, execute it, push queue expiry."""
        dc = self.dc
        state = self.state
        if (
            state.arrival_index < len(state.arrival_steps)
            and state.arrival_steps[state.arrival_index] == step
        ):
            arrivals: Sequence[VM] = state.arrivals_by_step[step]
            state.arrival_index += 1
        else:
            arrivals = ()
        dc._step(step, budget, arrivals, state.cols, batched=True)
        queue = dc._queue
        if queue and queue[-1][1] == step:
            expiry = step + dc.config.queue_patience_steps + 1
            if expiry < state.n:
                heappush(state.expiry_heap, expiry)
        state.last = step

    def next_event(self) -> int:
        """Next arrival / finish / expiry after the last wake."""
        return self.dc.next_event_step(self.state)

    def window_demand(self) -> int:
        """Demand over an event-free window.

        Step ``-1`` has no finish bucket and no arrivals — exactly the
        window-start situation (a window whose first step had a finish
        or arrival would have been a wake instead).
        """
        return self.dc._demand_cores(-1, ())

    def wake_bounds(self) -> tuple[int, int | None]:
        return self.dc.wake_bounds()

    def carried_state(self) -> tuple[int, int, int]:
        return self.dc.carried_state()
