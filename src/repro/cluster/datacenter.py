"""The single-site datacenter simulator (§3's experiment engine).

Per step, the simulator:

1. Derives the powered-core budget from the site's power trace.
2. Completes VMs whose lifetimes ended.
3. If running cores exceed the budget, frees cores: degradable VMs can
   be paused in place (optional), stable/remaining VMs are migrated out
   round-robin across servers — each eviction moves the VM's allocated
   memory across the WAN (the paper's traffic estimate).
4. Admits arrivals while allocation stays under the utilization cap and
   the power budget; arrivals that cannot start are queued ("rejected"
   in the paper's wording).
5. When power allows, launches queued VMs — each launch counts as an
   in-migration, again moving its memory footprint.

Placement uses a free-core-bucketed server pool so a 700-server,
3-month simulation runs in seconds rather than hours.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace
from ..units import TimeGrid, bytes_to_gb
from ..workload import VMRequest
from .admission import AdmissionControl
from .events import EventKind, EventLog
from .livemigration import LiveMigrationModel, estimate_migration
from .migration import EvictionOrder, EvictionPlanner
from .power import LinearCorePower, PowerModel, ServerGranularPower
from .resources import ClusterSpec
from .server import Server
from .vm import VM, VMState


@dataclass(frozen=True)
class DatacenterConfig:
    """Configuration of a single simulated VB site.

    Attributes:
        cluster: Hardware shape (paper: 700 x 40 cores x 512 GB).
        admission_utilization: Allocation cap as a fraction of total
            cores (paper: 0.70).
        allocation: Placement policy name: ``bestfit`` (default),
            ``firstfit``, or ``worstfit``.
        power_model: ``linear`` (cores scale with power, the paper's
            model) or ``server`` (server-granular gating with idle
            draw).
        eviction_order: Victim choice within a server during round-robin
            eviction.
        pause_degradable: Park degradable VMs in place instead of
            migrating them (the §3.1 co-scheduler behaviour).
        queue_patience_steps: How long a queued VM waits for power
            before giving up (and presumably being served elsewhere).
        power_relative_admission: When True (the paper's behaviour),
            the utilization cap is measured against *currently powered*
            capacity, so allocation tracks generation with headroom and
            minor dips are absorbed by unallocated cores.  When False
            the cap is static against total cores (ablation variant).
        migration_model: Optional pre-copy live-migration model (the
            paper's footnote-2 future work).  When set, migration
            traffic is the model's wire bytes (pre-copy amplification
            over the single memory copy the paper assumes) instead of
            the raw memory size.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    admission_utilization: float = 0.70
    allocation: str = "bestfit"
    power_model: str = "linear"
    eviction_order: EvictionOrder = EvictionOrder.FIRST_PLACED
    pause_degradable: bool = False
    queue_patience_steps: int = 96
    power_relative_admission: bool = True
    migration_model: "LiveMigrationModel | None" = None

    def __post_init__(self) -> None:
        if self.allocation not in ("bestfit", "firstfit", "worstfit"):
            raise ConfigurationError(
                f"unknown allocation policy: {self.allocation!r}"
            )
        if self.power_model not in ("linear", "server"):
            raise ConfigurationError(
                f"unknown power model: {self.power_model!r}"
            )
        if self.queue_patience_steps < 0:
            raise ConfigurationError(
                f"queue patience must be >= 0: {self.queue_patience_steps}"
            )


@dataclass(frozen=True)
class StepRecord:
    """Everything measured in one simulation step."""

    step: int
    norm_power: float
    core_budget: int
    running_cores: int
    allocated_cores: int
    out_bytes: float
    in_bytes: float
    n_arrivals: int
    n_admitted: int
    n_queued: int
    n_launched: int
    n_evicted: int
    n_paused: int
    n_resumed: int
    n_completed: int
    n_expired: int
    queue_length: int


@dataclass
class SimulationResult:
    """Full output of a single-site run."""

    grid: TimeGrid
    config: DatacenterConfig
    records: list[StepRecord]
    events: EventLog

    def out_bytes_series(self) -> np.ndarray:
        """Out-migration traffic per step, bytes."""
        return np.array([r.out_bytes for r in self.records])

    def in_bytes_series(self) -> np.ndarray:
        """In-migration traffic per step, bytes."""
        return np.array([r.in_bytes for r in self.records])

    def out_gb_series(self) -> np.ndarray:
        """Out-migration traffic per step, GB (paper's unit)."""
        return bytes_to_gb(self.out_bytes_series())

    def in_gb_series(self) -> np.ndarray:
        """In-migration traffic per step, GB (paper's unit)."""
        return bytes_to_gb(self.in_bytes_series())

    def power_series(self) -> np.ndarray:
        """Normalized power per step."""
        return np.array([r.norm_power for r in self.records])

    def utilization_series(self) -> np.ndarray:
        """Allocated-core fraction per step."""
        total = self.config.cluster.total_cores
        return np.array([r.allocated_cores / total for r in self.records])

    def power_changes_without_migration_fraction(
        self, power_epsilon: float = 1e-9
    ) -> float:
        """Fraction of power *changes* that caused no migration traffic.

        The paper reports >80%: at 70% utilization, minor power moves
        are absorbed by powering (un)allocated cores up or down.
        """
        changes = 0
        silent = 0
        previous = None
        for record in self.records:
            if previous is not None and abs(
                record.norm_power - previous
            ) > power_epsilon:
                changes += 1
                if record.out_bytes == 0.0 and record.in_bytes == 0.0:
                    silent += 1
            previous = record.norm_power
        if changes == 0:
            return 1.0
        return silent / changes

    def migration_active_fraction(self, link_gbps: float = 200.0) -> float:
        """Fraction of wall-clock time the WAN link carries migrations.

        §5's discussion point: with a 200 Gbps link per site, migration
        is active only 2-4% of the time.  Each step's traffic occupies
        the link for ``bytes / link_rate`` seconds out of the step.
        """
        step_seconds = self.grid.step_seconds
        rate = link_gbps * 1e9 / 8.0
        total = self.out_bytes_series() + self.in_bytes_series()
        busy = np.minimum(total / rate, step_seconds)
        return float(np.sum(busy) / (len(self.records) * step_seconds))


class _ServerPool:
    """Servers bucketed by free cores for O(1)-ish placement queries."""

    def __init__(self, cluster: ClusterSpec):
        self.servers = [
            Server(i, cluster.server) for i in range(cluster.n_servers)
        ]
        self._max_cores = cluster.server.cores
        # _buckets[f] holds ids of servers with exactly f free cores.
        self._buckets: list[set[int]] = [
            set() for _ in range(self._max_cores + 1)
        ]
        self._buckets[self._max_cores].update(range(cluster.n_servers))

    def _move(self, server: Server, old_free: int) -> None:
        self._buckets[old_free].discard(server.server_id)
        self._buckets[server.free_cores].add(server.server_id)

    def host(self, server: Server, vm: VM) -> None:
        """Place ``vm`` and update buckets."""
        old_free = server.free_cores
        server.host(vm)
        self._move(server, old_free)

    def release(self, server: Server, vm: VM) -> None:
        """Remove ``vm`` and update buckets."""
        old_free = server.free_cores
        server.release(vm)
        self._move(server, old_free)

    def find(self, vm: VM, mode: str) -> Server | None:
        """Find a hosting server under the named policy.

        ``bestfit``: smallest adequate free-core count;
        ``worstfit``: largest free-core count;
        ``firstfit``: lowest server id among all that fit.
        """
        need = vm.cores
        if need > self._max_cores:
            return None
        if mode == "bestfit":
            buckets: Iterable[int] = range(need, self._max_cores + 1)
        elif mode == "worstfit":
            buckets = range(self._max_cores, need - 1, -1)
        else:  # firstfit: exact semantics need a full scan.
            best_id = None
            for free in range(need, self._max_cores + 1):
                for server_id in self._buckets[free]:
                    if best_id is None or server_id < best_id:
                        candidate = self.servers[server_id]
                        if candidate.fits(vm):
                            best_id = server_id
            return self.servers[best_id] if best_id is not None else None
        for free in buckets:
            for server_id in self._buckets[free]:
                server = self.servers[server_id]
                if server.fits(vm):
                    return server
        return None


class Datacenter:
    """A single VB site: cluster + power trace + workload replay.

    Args:
        config: Site configuration.
        power_trace: Normalized generation; the cluster is fully powered
            at 1.0, matching the paper's scaling of the ELIA trace to
            the farm's max capacity.
    """

    def __init__(self, config: DatacenterConfig, power_trace: PowerTrace):
        self.config = config
        self.power_trace = power_trace
        self.pool = _ServerPool(config.cluster)
        self.admission = AdmissionControl(
            config.cluster.total_cores, config.admission_utilization
        )
        if config.power_model == "linear":
            self.power_model: PowerModel = LinearCorePower(config.cluster)
        else:
            self.power_model = ServerGranularPower(config.cluster)
        self.planner = EvictionPlanner(
            config.cluster.n_servers,
            config.eviction_order,
            config.pause_degradable,
        )
        self.events = EventLog()
        self._queue: deque[tuple[VM, int]] = deque()
        self._paused: deque[VM] = deque()
        self._running_cores = 0
        self._allocated_cores = 0
        self._finish_at: dict[int, list[VM]] = {}
        # Per-memory-size wire-byte cache for the live-migration model.
        self._wire_cache: dict[float, float] = {}

    def _eviction_wire_bytes(self, vm: VM) -> float:
        """Bytes a live migration of ``vm`` actually puts on the wire.

        One memory copy (the paper's estimate) without a migration
        model; the pre-copy model's amplified volume with one.  Only
        evictions amplify — a queued VM launching into the site is a
        cold transfer of a single memory image.
        """
        if self.config.migration_model is None:
            return vm.memory_bytes
        cached = self._wire_cache.get(vm.memory_bytes)
        if cached is None:
            cached = estimate_migration(
                vm.memory_bytes, self.config.migration_model
            ).total_bytes
            self._wire_cache[vm.memory_bytes] = cached
        return cached

    # ------------------------------------------------------------------
    # Internal state transitions (all bookkeeping goes through these)
    # ------------------------------------------------------------------

    def _schedule_finish(self, vm: VM, step: int) -> None:
        finish = step + vm.remaining_steps
        vm.finish_step = finish
        self._finish_at.setdefault(finish, []).append(vm)

    def _start(self, vm: VM, server: Server, step: int) -> None:
        self.pool.host(server, vm)
        self._running_cores += vm.cores
        self._allocated_cores += vm.cores
        self._schedule_finish(vm, step)

    def _complete(self, vm: VM, step: int) -> None:
        server = self.pool.servers[vm.server_id]
        vm.state = VMState.COMPLETED
        vm.remaining_steps = 0
        vm.finish_step = None
        self.pool.release(server, vm)
        vm.server_id = None
        self._running_cores -= vm.cores
        self._allocated_cores -= vm.cores
        self.events.record(step, EventKind.COMPLETE, vm.vm_id)

    def _evict(self, vm: VM, step: int) -> float:
        server = self.pool.servers[vm.server_id]
        self.pool.release(server, vm)
        # Record how much work the VM still owes wherever it lands next.
        if vm.finish_step is not None:
            vm.remaining_steps = max(1, vm.finish_step - step)
        vm.finish_step = None
        vm.evict()
        self._running_cores -= vm.cores
        self._allocated_cores -= vm.cores
        wire_bytes = self._eviction_wire_bytes(vm)
        self.events.record(step, EventKind.EVICT, vm.vm_id, wire_bytes)
        return wire_bytes

    def _pause(self, vm: VM, step: int) -> None:
        # A paused VM keeps its server reservation (memory stays
        # resident) but its cores power down; it makes no progress, so
        # its remaining work freezes until resume.
        if vm.finish_step is not None:
            vm.remaining_steps = max(1, vm.finish_step - step)
        vm.finish_step = None
        vm.pause()
        self._running_cores -= vm.cores
        self._paused.append(vm)
        self.events.record(step, EventKind.PAUSE, vm.vm_id)

    def _resume(self, vm: VM, step: int) -> None:
        vm.resume()
        self._running_cores += vm.cores
        self._schedule_finish(vm, step)
        self.events.record(step, EventKind.RESUME, vm.vm_id)

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------

    def _phase_completions(self, step: int) -> int:
        finished = self._finish_at.pop(step, [])
        completed = 0
        for vm in finished:
            # Skip stale entries: the VM was paused or evicted after
            # this finish time was scheduled, or was re-scheduled to a
            # later finish (its authoritative finish_step moved on).
            if vm.state is not VMState.RUNNING or vm.finish_step != step:
                continue
            self._complete(vm, step)
            completed += 1
        return completed

    def _phase_power_down(self, step: int, budget: int) -> tuple[float, int, int]:
        out_bytes = 0.0
        n_evicted = 0
        n_paused = 0
        overflow = self._running_cores - budget
        if overflow <= 0:
            return out_bytes, n_evicted, n_paused
        to_migrate, to_pause = self.planner.plan(
            self.pool.servers, overflow
        )
        for vm in to_pause:
            self._pause(vm, step)
            n_paused += 1
        for vm in to_migrate:
            out_bytes += self._evict(vm, step)
            n_evicted += 1
        return out_bytes, n_evicted, n_paused

    def _phase_resume(self, step: int, budget: int) -> int:
        n_resumed = 0
        while self._paused:
            vm = self._paused[0]
            if vm.state is not VMState.PAUSED:
                self._paused.popleft()
                continue
            if self._running_cores + vm.cores > budget:
                break
            self._paused.popleft()
            self._resume(vm, step)
            n_resumed += 1
        return n_resumed

    def _phase_arrivals(
        self, step: int, budget: int, arrivals: Sequence[VM]
    ) -> tuple[int, int]:
        n_admitted = 0
        n_queued = 0
        cap_capacity = budget if self.config.power_relative_admission else None
        for vm in arrivals:
            under_cap = self.admission.admits(
                vm, self._allocated_cores, cap_capacity
            )
            under_power = self._running_cores + vm.cores <= budget
            server = (
                self.pool.find(vm, self.config.allocation)
                if under_cap and under_power
                else None
            )
            if server is not None:
                self._start(vm, server, step)
                self.events.record(step, EventKind.ADMIT, vm.vm_id)
                n_admitted += 1
            else:
                self._queue.append((vm, step))
                self.events.record(step, EventKind.QUEUE, vm.vm_id)
                n_queued += 1
        return n_admitted, n_queued

    def _phase_launches(self, step: int, budget: int) -> tuple[float, int, int]:
        in_bytes = 0.0
        n_launched = 0
        n_expired = 0
        patience = self.config.queue_patience_steps
        survivors: list[tuple[VM, int]] = []
        pending = len(self._queue)
        for _ in range(pending):
            vm, queued_at = self._queue.popleft()
            if step - queued_at > patience:
                vm.state = VMState.REJECTED
                self.events.record(step, EventKind.REJECT, vm.vm_id)
                n_expired += 1
                continue
            cap_capacity = (
                budget if self.config.power_relative_admission else None
            )
            headroom = min(
                self.admission.headroom_cores(
                    self._allocated_cores, cap_capacity
                ),
                budget - self._running_cores,
            )
            if headroom <= 0:
                # Nothing more can start this step; keep the rest queued.
                survivors.append((vm, queued_at))
                survivors.extend(
                    self._queue.popleft() for _ in range(len(self._queue))
                )
                break
            if vm.cores > headroom:
                survivors.append((vm, queued_at))
                continue
            server = self.pool.find(vm, self.config.allocation)
            if server is None:
                survivors.append((vm, queued_at))
                continue
            self._start(vm, server, step)
            in_bytes += vm.memory_bytes
            self.events.record(
                step, EventKind.LAUNCH, vm.vm_id, vm.memory_bytes
            )
            n_launched += 1
        self._queue.extend(survivors)
        return in_bytes, n_launched, n_expired

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, requests: Sequence[VMRequest]) -> SimulationResult:
        """Replay ``requests`` against the power trace.

        Returns:
            Per-step records plus the full event log.
        """
        grid = self.power_trace.grid
        arrivals_by_step: dict[int, list[VM]] = {}
        for request in requests:
            if request.arrival_step >= grid.n:
                continue
            arrivals_by_step.setdefault(request.arrival_step, []).append(
                VM(request)
            )

        records: list[StepRecord] = []
        for step in range(grid.n):
            norm_power = float(self.power_trace.values[step])
            budget = self.power_model.core_budget(norm_power)
            n_completed = self._phase_completions(step)
            out_bytes, n_evicted, n_paused = self._phase_power_down(
                step, budget
            )
            n_resumed = self._phase_resume(step, budget)
            arrivals = arrivals_by_step.get(step, [])
            n_admitted, n_queued = self._phase_arrivals(
                step, budget, arrivals
            )
            in_bytes, n_launched, n_expired = self._phase_launches(
                step, budget
            )
            records.append(
                StepRecord(
                    step=step,
                    norm_power=norm_power,
                    core_budget=budget,
                    running_cores=self._running_cores,
                    allocated_cores=self._allocated_cores,
                    out_bytes=out_bytes,
                    in_bytes=in_bytes,
                    n_arrivals=len(arrivals),
                    n_admitted=n_admitted,
                    n_queued=n_queued,
                    n_launched=n_launched,
                    n_evicted=n_evicted,
                    n_paused=n_paused,
                    n_resumed=n_resumed,
                    n_completed=n_completed,
                    n_expired=n_expired,
                    queue_length=len(self._queue),
                )
            )
        return SimulationResult(grid, self.config, records, self.events)
