"""Pre-copy live-migration cost model (the paper's stated future work).

Footnote 2 of the paper: "As future work, we plan to incorporate
migration latency and impact to application's execution time similar to
[Akoush et al. 2010]".  This module implements that model: iterative
pre-copy live migration, where memory is copied while the VM runs and
dirtied pages are re-sent in rounds until the residual is small enough
to stop-and-copy.

Outputs per migration: total bytes on the wire (an *amplification* of
the VM's memory size — the paper's Figure-4 volumes assume exactly one
memory copy), wall-clock duration, blackout (downtime), and the
execution-time impact on the migrating VM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import gbps_to_bytes_per_second


@dataclass(frozen=True)
class LiveMigrationModel:
    """Pre-copy migration parameters.

    Attributes:
        link_gbps: Bandwidth available to one migration stream.
        dirty_rate_bytes_per_s: Rate at which the running VM dirties
            memory during a copy round.  Write-heavy VMs converge
            slowly (or not at all) and pay higher amplification.
        downtime_target_bytes: Stop-and-copy once the residual dirty
            set is at most this size — the final blackout transfers it
            with the VM paused.
        max_rounds: Pre-copy round cap; if the dirty set has not
            converged by then, the VM stops and copies whatever is
            left (the "non-convergent" case of write-heavy workloads).
        slowdown_during_copy: Fractional execution slowdown the VM
            experiences while its memory is being copied (page-tracking
            and bandwidth contention overhead).
    """

    link_gbps: float = 10.0
    dirty_rate_bytes_per_s: float = 100e6
    downtime_target_bytes: float = 64e6
    max_rounds: int = 10
    slowdown_during_copy: float = 0.10

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise ConfigurationError(
                f"link bandwidth must be positive: {self.link_gbps}"
            )
        if self.dirty_rate_bytes_per_s < 0:
            raise ConfigurationError(
                f"dirty rate must be >= 0: {self.dirty_rate_bytes_per_s}"
            )
        if self.downtime_target_bytes <= 0:
            raise ConfigurationError(
                "downtime target must be positive:"
                f" {self.downtime_target_bytes}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1: {self.max_rounds}"
            )
        if not 0.0 <= self.slowdown_during_copy < 1.0:
            raise ConfigurationError(
                "slowdown must be in [0,1):"
                f" {self.slowdown_during_copy}"
            )

    @property
    def link_bytes_per_s(self) -> float:
        """Link bandwidth in bytes/second."""
        return gbps_to_bytes_per_second(self.link_gbps)

    @property
    def dirty_to_link_ratio(self) -> float:
        """Dirty rate over link rate; < 1 means pre-copy converges."""
        return self.dirty_rate_bytes_per_s / self.link_bytes_per_s


@dataclass(frozen=True)
class MigrationEstimate:
    """Predicted cost of one live migration.

    Attributes:
        memory_bytes: The VM's memory footprint.
        total_bytes: Bytes actually sent (pre-copy rounds + blackout).
        duration_s: Wall-clock time from start to completion.
        downtime_s: Blackout while the final dirty set transfers.
        rounds: Pre-copy rounds performed (1 = the initial full copy).
        converged: False when the round cap forced stop-and-copy with a
            dirty set still above the downtime target.
        execution_delay_s: Extra VM execution time attributable to the
            migration (slowdown during copy plus the blackout itself) —
            the "impact to application's execution time" of footnote 2.
    """

    memory_bytes: float
    total_bytes: float
    duration_s: float
    downtime_s: float
    rounds: int
    converged: bool
    execution_delay_s: float

    @property
    def amplification(self) -> float:
        """Wire bytes relative to a single memory copy."""
        if self.memory_bytes <= 0:
            return 1.0
        return self.total_bytes / self.memory_bytes


def estimate_migration(
    memory_bytes: float, model: LiveMigrationModel | None = None
) -> MigrationEstimate:
    """Predict the cost of live-migrating a VM of ``memory_bytes``.

    Pre-copy iteration: round 1 sends all memory; while a round of
    ``b`` bytes is on the wire (taking ``b / link``) the VM dirties
    ``dirty_rate * b / link`` bytes, which the next round must resend.
    With ``rho = dirty_rate / link < 1`` the dirty set shrinks
    geometrically; rounds stop when it reaches the downtime target or
    the round cap, and the remainder ships during the blackout.
    """
    model = model or LiveMigrationModel()
    if memory_bytes < 0:
        raise ConfigurationError(
            f"memory must be >= 0: {memory_bytes}"
        )
    link = model.link_bytes_per_s
    rho = model.dirty_to_link_ratio
    sent = 0.0
    copy_time = 0.0
    pending = float(memory_bytes)
    rounds = 0
    converged = True
    while True:
        rounds += 1
        sent += pending
        round_time = pending / link
        copy_time += round_time
        # Dirty pages accumulated during this round (capped at the
        # memory size — a page dirtied twice still only needs one send).
        pending = min(
            model.dirty_rate_bytes_per_s * round_time, float(memory_bytes)
        )
        if pending <= model.downtime_target_bytes:
            break
        if rounds >= model.max_rounds:
            converged = False
            break
        if rho >= 1.0:
            # Dirtying outpaces the link: pre-copy cannot converge, so
            # stop early rather than loop at the cap for nothing.
            converged = False
            break
    downtime = pending / link
    sent += pending
    duration = copy_time + downtime
    execution_delay = copy_time * model.slowdown_during_copy + downtime
    return MigrationEstimate(
        memory_bytes=float(memory_bytes),
        total_bytes=sent,
        duration_s=duration,
        downtime_s=downtime,
        rounds=rounds,
        converged=converged,
        execution_delay_s=execution_delay,
    )


def amplification_factor(
    memory_bytes: float, model: LiveMigrationModel | None = None
) -> float:
    """Wire-bytes amplification for a VM of ``memory_bytes``.

    A convenience for scaling the paper's one-copy traffic estimates
    into live-migration wire traffic.
    """
    if memory_bytes <= 0:
        return 1.0
    return estimate_migration(memory_bytes, model).amplification
