"""Eviction planning: which VMs migrate out when power drops.

The paper migrates VMs "from servers in a round-robin order".  The
planner walks servers round-robin (continuing from where the previous
power dip left off) and picks one VM per visited server until enough
cores are freed.  Which VM to take from a server is configurable; the
paper leaves it unspecified, so the default is the first-placed VM and
the alternatives feed the eviction-order ablation.

Degradable VMs can optionally be paused in place instead of migrated —
§3.1's "degradable VMs take most of the hit without needing to migrate
stable VMs".  Pausing frees cores at zero network cost.
"""

from __future__ import annotations

import enum
from typing import Sequence

from ..errors import ConfigurationError
from .server import Server
from .vm import VM


class EvictionOrder(enum.Enum):
    """How to pick the victim VM on a visited server."""

    FIRST_PLACED = "first_placed"
    LARGEST_CORES = "largest_cores"
    SMALLEST_MEMORY = "smallest_memory"


class EvictionPlanner:
    """Round-robin victim selection across servers.

    Args:
        n_servers: Cluster size; the rotor position persists across
            calls, matching a real control loop that keeps cycling.
        order: Victim choice within a server.
        pause_degradable: When True, degradable VMs found by the rotor
            are paused in place (freeing cores, costing no bytes)
            instead of being migrated out.
    """

    def __init__(
        self,
        n_servers: int,
        order: EvictionOrder = EvictionOrder.FIRST_PLACED,
        pause_degradable: bool = False,
    ):
        if n_servers <= 0:
            raise ConfigurationError(
                f"n_servers must be positive: {n_servers}"
            )
        self.n_servers = n_servers
        self.order = order
        self.pause_degradable = pause_degradable
        self._rotor = 0

    def _pick_victim(self, server: Server) -> VM | None:
        candidates = server.running_vms()
        if not candidates:
            return None
        if self.order is EvictionOrder.FIRST_PLACED:
            return candidates[0]
        if self.order is EvictionOrder.LARGEST_CORES:
            return max(candidates, key=lambda vm: (vm.cores, -vm.vm_id))
        return min(candidates, key=lambda vm: (vm.memory_bytes, vm.vm_id))

    def plan(
        self, servers: Sequence[Server], cores_to_free: int
    ) -> tuple[list[VM], list[VM]]:
        """Select VMs until at least ``cores_to_free`` cores are freed.

        Walks servers round-robin from the persisted rotor position,
        taking one victim per visited server per lap.  Returns
        ``(to_migrate, to_pause)``; the caller performs the actual
        transitions and bookkeeping.  If the cluster cannot free enough
        cores (everything already evicted), returns what it could.
        """
        if cores_to_free <= 0:
            return [], []
        to_migrate: list[VM] = []
        to_pause: list[VM] = []
        selected: set[int] = set()
        freed = 0
        visited_without_progress = 0
        first_placed = self.order is EvictionOrder.FIRST_PLACED
        while freed < cores_to_free and visited_without_progress < len(servers):
            server = servers[self._rotor % len(servers)]
            self._rotor = (self._rotor + 1) % len(servers)
            if first_placed:
                # Fast path: first RUNNING VM in placement order, with
                # no intermediate candidate list.
                victim = server.first_running_vm(selected)
            else:
                victim = None
                for candidate in self._iter_candidates(server):
                    if candidate.vm_id not in selected:
                        victim = candidate
                        break
            if victim is None:
                visited_without_progress += 1
                continue
            visited_without_progress = 0
            selected.add(victim.vm_id)
            freed += victim.cores
            if self.pause_degradable and not victim.is_stable:
                to_pause.append(victim)
            else:
                to_migrate.append(victim)
        return to_migrate, to_pause

    def _iter_candidates(self, server: Server):
        """Victims on ``server`` in preference order for this planner."""
        candidates = server.running_vms()
        if self.order is EvictionOrder.FIRST_PLACED:
            return candidates
        if self.order is EvictionOrder.LARGEST_CORES:
            return sorted(candidates, key=lambda vm: (-vm.cores, vm.vm_id))
        return sorted(candidates, key=lambda vm: (vm.memory_bytes, vm.vm_id))


def migration_bytes(vms: Sequence[VM]) -> float:
    """Total migration traffic for a set of VMs, in bytes.

    The paper estimates migration traffic by the memory allocated to the
    VM (no disk/memory-utilization data in the trace), so the volume is
    simply the sum of memory footprints.
    """
    return float(sum(vm.memory_bytes for vm in vms))
