"""Cluster power models: generation -> powered-core budget.

The paper scales the renewable trace so the cluster is fully powered at
the farm's max capacity, and absorbs dips by "powering down unallocated
cores".  The implied model — cluster power proportional to powered
cores — is :class:`LinearCorePower`, the default.
:class:`ServerGranularPower` refines it with per-server idle draw, where
power gates at server granularity (a server must be on, paying idle
power, for any of its cores to be powered); it exists for the power-
model ablation.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..errors import ConfigurationError
from .resources import ClusterSpec


@runtime_checkable
class PowerModel(Protocol):
    """Maps normalized generation to a powered-core budget."""

    def core_budget(self, norm_power: float) -> int:
        """Cores that may be powered when generation is ``norm_power``."""
        ...


class LinearCorePower:
    """Power draw proportional to powered cores (the paper's model).

    At ``norm_power = 1.0`` every core can be powered; at 0.25, a
    quarter of them.  Budgets floor (never round up past generation).
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    def core_budget(self, norm_power: float) -> int:
        """Cores powerable at ``norm_power`` (floored, linear)."""
        if not 0.0 <= norm_power <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"normalized power out of range: {norm_power}"
            )
        return int(min(norm_power, 1.0) * self.cluster.total_cores)


class ServerGranularPower:
    """Server-granular gating with idle overhead.

    Each powered-on server pays ``idle_fraction`` of its max draw before
    any core is powered; cores then cost the incremental core power.
    Given a generation budget in watts, the model answers: powering on
    ``s`` fully-used servers costs ``s * max_power_w``; the usable core
    budget is the largest count achievable by greedily filling whole
    servers.  This models why consolidation (few, full servers) beats
    spreading for a VB site.
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    def core_budget(self, norm_power: float) -> int:
        """Cores powerable after paying per-server idle overhead."""
        if not 0.0 <= norm_power <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"normalized power out of range: {norm_power}"
            )
        spec = self.cluster.server
        budget_w = min(norm_power, 1.0) * self.cluster.max_power_w
        idle_w = spec.max_power_w * spec.idle_fraction
        core_w = spec.core_power_w
        # Fill whole servers first (each costs idle + all cores), then a
        # partial server with as many cores as the remainder affords.
        full_server_w = idle_w + core_w * spec.cores
        full_servers = min(
            int(budget_w / full_server_w), self.cluster.n_servers
        )
        cores = full_servers * spec.cores
        remaining_w = budget_w - full_servers * full_server_w
        if full_servers < self.cluster.n_servers and remaining_w > idle_w:
            partial = int((remaining_w - idle_w) / core_w)
            cores += min(partial, spec.cores)
        return cores
