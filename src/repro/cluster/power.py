"""Cluster power models: generation -> powered-core budget.

The paper scales the renewable trace so the cluster is fully powered at
the farm's max capacity, and absorbs dips by "powering down unallocated
cores".  The implied model — cluster power proportional to powered
cores — is :class:`LinearCorePower`, the default.
:class:`ServerGranularPower` refines it with per-server idle draw, where
power gates at server granularity (a server must be on, paying idle
power, for any of its cores to be powered); it exists for the power-
model ablation.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from .resources import ClusterSpec


@runtime_checkable
class PowerModel(Protocol):
    """Maps normalized generation to a powered-core budget.

    Implementations may additionally provide a vectorized
    ``core_budget_series(values) -> np.ndarray`` returning the budget
    for a whole trace at once; the simulator uses it when present and
    falls back to per-step ``core_budget`` calls otherwise.
    """

    def core_budget(self, norm_power: float) -> int:
        """Cores that may be powered when generation is ``norm_power``."""
        ...

    def norm_for_cores(self, cores: int) -> float:
        """Smallest normalized power whose budget covers ``cores``."""
        ...


def _raise_to_cover(model: PowerModel, norm: float, cores: int) -> float:
    """Nudge ``norm`` up until ``model.core_budget(norm) >= cores``.

    Closed-form inverses of the budget maps land within one float ulp of
    the true threshold, but the forward map truncates, so a value that is
    an ulp low yields ``cores - 1``.  A few ``nextafter`` steps close the
    gap exactly; the loop is bounded because the forward map is monotone
    and reaches ``cores`` by ``norm = 1``.
    """
    norm = min(max(norm, 0.0), 1.0)
    while model.core_budget(norm) < cores and norm < 1.0:
        norm = min(np.nextafter(norm, np.inf), 1.0)
    return norm


def min_norm_for_budget(model: PowerModel, cores: int) -> float | None:
    """Exact delivered-power threshold for a core-budget wake bound.

    Returns the smallest float ``nu`` in ``[0, 1]`` such that
    ``model.core_budget(d) >= cores``  ⟺  ``d >= nu`` for every float
    ``d`` in ``[0, 1]``, or ``None`` when even full power cannot cover
    ``cores``.  The closed-loop engines compare delivered power against
    these thresholds instead of computing a core budget per step; the
    equivalence makes norm-space crossings exactly the budget-space
    crossings of the reference engines (no missed wakes, no spurious
    band beyond the comparison itself).

    Requires the model's budget map to be nondecreasing in normalized
    power (true of both shipped models; a non-monotone model has no
    single threshold).  :meth:`PowerModel.norm_for_cores` already lands
    within a few ulps *above* the boundary (its closed-form inverse is
    corrected upward by :func:`_raise_to_cover`), so the descent to the
    exact minimum is a handful of ``nextafter`` probes.
    """
    if cores <= 0:
        return 0.0
    if model.core_budget(1.0) < cores:
        return None
    norm = model.norm_for_cores(cores)
    while norm > 0.0:
        below = float(np.nextafter(norm, -np.inf))
        if below < 0.0 or model.core_budget(below) < cores:
            break
        norm = below
    return norm


def _validated_series(values: np.ndarray) -> np.ndarray:
    """Range-check a normalized power series (vectorized)."""
    values = np.asarray(values, dtype=float)
    if values.size:
        bad = (values < 0.0) | (values > 1.0 + 1e-9)
        if bad.any():
            offender = float(values[bad][0])
            raise ConfigurationError(
                f"normalized power out of range: {offender}"
            )
    return values


class LinearCorePower:
    """Power draw proportional to powered cores (the paper's model).

    At ``norm_power = 1.0`` every core can be powered; at 0.25, a
    quarter of them.  Budgets floor (never round up past generation).
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    def core_budget(self, norm_power: float) -> int:
        """Cores powerable at ``norm_power`` (floored, linear)."""
        if not 0.0 <= norm_power <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"normalized power out of range: {norm_power}"
            )
        return int(min(norm_power, 1.0) * self.cluster.total_cores)

    def core_budget_series(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`core_budget` over a whole trace.

        Identical arithmetic per element (float multiply, truncate), so
        the result matches the scalar path bit for bit.
        """
        values = _validated_series(values)
        return (
            np.minimum(values, 1.0) * self.cluster.total_cores
        ).astype(np.int64)

    def norm_for_cores(self, cores: int) -> float:
        """Inverse budget map: least norm power covering ``cores``."""
        total = self.cluster.total_cores
        if cores <= 0:
            return 0.0
        if cores >= total:
            return 1.0
        return _raise_to_cover(self, cores / total, cores)


class ServerGranularPower:
    """Server-granular gating with idle overhead.

    Each powered-on server pays ``idle_fraction`` of its max draw before
    any core is powered; cores then cost the incremental core power.
    Given a generation budget in watts, the model answers: powering on
    ``s`` fully-used servers costs ``s * max_power_w``; the usable core
    budget is the largest count achievable by greedily filling whole
    servers.  This models why consolidation (few, full servers) beats
    spreading for a VB site.
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    def core_budget(self, norm_power: float) -> int:
        """Cores powerable after paying per-server idle overhead."""
        if not 0.0 <= norm_power <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"normalized power out of range: {norm_power}"
            )
        spec = self.cluster.server
        budget_w = min(norm_power, 1.0) * self.cluster.max_power_w
        idle_w = spec.max_power_w * spec.idle_fraction
        core_w = spec.core_power_w
        # Fill whole servers first (each costs idle + all cores), then a
        # partial server with as many cores as the remainder affords.
        full_server_w = idle_w + core_w * spec.cores
        full_servers = min(
            int(budget_w / full_server_w), self.cluster.n_servers
        )
        cores = full_servers * spec.cores
        remaining_w = budget_w - full_servers * full_server_w
        if full_servers < self.cluster.n_servers and remaining_w > idle_w:
            partial = int((remaining_w - idle_w) / core_w)
            cores += min(partial, spec.cores)
        return cores

    def core_budget_series(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`core_budget` over a whole trace.

        Mirrors the scalar arithmetic operation for operation (same
        float64 multiplies/divides, same truncations), so the series
        matches per-step calls exactly.
        """
        values = _validated_series(values)
        spec = self.cluster.server
        n_servers = self.cluster.n_servers
        budget_w = np.minimum(values, 1.0) * self.cluster.max_power_w
        idle_w = spec.max_power_w * spec.idle_fraction
        core_w = spec.core_power_w
        full_server_w = idle_w + core_w * spec.cores
        full_servers = np.minimum(
            (budget_w / full_server_w).astype(np.int64), n_servers
        )
        cores = full_servers * spec.cores
        remaining_w = budget_w - full_servers * full_server_w
        partial = np.minimum(
            ((remaining_w - idle_w) / core_w).astype(np.int64), spec.cores
        )
        add = (full_servers < n_servers) & (remaining_w > idle_w)
        return cores + np.where(add, partial, 0)

    def norm_for_cores(self, cores: int) -> float:
        """Inverse budget map: least norm power covering ``cores``.

        Costs ``cores`` greedily the way :meth:`core_budget` fills them
        — whole servers first, then a partial server paying its idle
        draw — and converts the watts back to a normalized value.
        """
        spec = self.cluster.server
        if cores <= 0:
            return 0.0
        cores = min(cores, self.cluster.total_cores)
        idle_w = spec.max_power_w * spec.idle_fraction
        core_w = spec.core_power_w
        full_server_w = idle_w + core_w * spec.cores
        full_servers, partial = divmod(cores, spec.cores)
        budget_w = full_servers * full_server_w
        if partial:
            budget_w += idle_w + core_w * partial
        return _raise_to_cover(
            self, budget_w / self.cluster.max_power_w, cores
        )
