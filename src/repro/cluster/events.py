"""Typed event log for the datacenter simulator.

Every admission, rejection, launch, eviction, pause, resume, and
completion is recorded with its step and traffic volume, so tests and
analyses can audit the simulator's behaviour instead of trusting
aggregate counters.

Storage is columnar: appends push one tuple, and :class:`Event`
objects are materialized lazily by the query helpers.  A year-long
run records ~1M events, so constructing a dataclass per append was a
measurable slice of simulation time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class EventKind(enum.Enum):
    """What happened."""

    ADMIT = "admit"              # VM placed on arrival
    REJECT = "reject"            # VM refused by admission control
    QUEUE = "queue"              # VM admitted but waiting for power
    LAUNCH = "launch"            # queued VM started (in-migration)
    EVICT = "evict"              # VM migrated out (out-migration)
    PAUSE = "pause"              # degradable VM parked in place
    RESUME = "resume"            # paused VM continued
    COMPLETE = "complete"        # VM lifetime finished


@dataclass(frozen=True)
class Event:
    """One simulator event.

    Attributes:
        step: Simulation step at which it happened.
        kind: Event type.
        vm_id: Subject VM.
        bytes_moved: Migration traffic attributed to the event (only
            LAUNCH and EVICT move bytes).
    """

    step: int
    kind: EventKind
    vm_id: int
    bytes_moved: float = 0.0


class EventLog:
    """Append-only event record with simple query helpers."""

    def __init__(self) -> None:
        # (step, kind, vm_id, bytes_moved) rows; Events are built on
        # demand so the hot append path is a single tuple push.
        self._rows: list[tuple[int, EventKind, int, float]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Event]:
        for row in self._rows:
            yield Event(*row)

    def record(
        self, step: int, kind: EventKind, vm_id: int, bytes_moved: float = 0.0
    ) -> None:
        """Append an event."""
        self._rows.append((step, kind, vm_id, bytes_moved))

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in order."""
        return [Event(*r) for r in self._rows if r[1] is kind]

    def count(self, kind: EventKind) -> int:
        """Number of events of one kind."""
        return sum(1 for r in self._rows if r[1] is kind)

    def bytes_of_kind(self, kind: EventKind) -> float:
        """Total traffic attributed to events of one kind."""
        return sum(r[3] for r in self._rows if r[1] is kind)

    def for_vm(self, vm_id: int) -> list[Event]:
        """Every event touching one VM, in order."""
        return [Event(*r) for r in self._rows if r[2] == vm_id]


class NullEventLog(EventLog):
    """An event log that drops appends.

    The fleet engine runs sites with per-step columns only — at 500
    sites × 1 year the per-VM audit trail is pure overhead — so sites
    constructed with ``record_events=False`` record into this sink.
    Queries all see an empty log.
    """

    def record(
        self, step: int, kind: EventKind, vm_id: int, bytes_moved: float = 0.0
    ) -> None:
        """Drop the event."""
        return
