"""Structure-of-arrays step kernel: the per-step hot path, columnar.

:class:`StepKernel` re-implements the five phases of
:meth:`repro.cluster.datacenter.Datacenter._step` — completions,
power-down, resume, arrivals, launches — over flat per-VM and
per-server state arrays instead of ``VM`` / ``Server`` object graphs.
A VM is an index into parallel lists (cores, memory, lifetime, state
code, hosting server, scheduled finish); a server is an index into
free-core / free-memory arrays plus an insertion-ordered placement map.
The object model stays untouched as the golden reference engine
(``engine="event"`` / ``"dense"``), exactly the pattern those two
engines already form with each other; the kernel is a third engine
(``engine="soa"``) pinned result-identical — columns, event logs, and
summaries — by the golden tests.

Why it is faster than the object engines:

* **No attribute traffic.**  Every phase reads ``cores[i]`` out of a
  list instead of chasing ``vm.cores`` through a dataclass, and server
  accounting is two list stores instead of ``Server.host`` /
  ``Server.release`` method calls.
* **Busy-server eviction index.**  The object planner's round-robin
  rotor visits every server — on a mostly-empty cluster almost all
  visits find nothing.  The kernel keeps a sorted index of servers
  with at least one RUNNING VM and walks only those; the walk is
  provably visit-equivalent (empty servers can never yield a victim,
  one full victimless lap over busy servers is one full victimless
  lap over all servers, and the persisted rotor lands on
  ``last_victim + 1`` in every terminating case — see
  :meth:`StepKernel._plan_power_down`).
* **One engine surface.**  The kernel exposes the same wake-by-wake
  protocol the fleet engine drives (``next_event`` / ``wake_bounds`` /
  ``drain_block``), so cross-site runs batch its sites without
  touching object state at all.

Determinism notes mirrored from the object engines: free-core buckets
are id-sorted lists, victim ties resolve through the VM id exactly as
the planner's sort keys do, completion deduplication keys on the VM id
(duplicate ids in a request stream dedup identically), and pause events
are recorded before eviction events within one power-down phase.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from heapq import heappop, heappush
from time import perf_counter
from typing import Sequence

import numpy as np

from ..workload import VMClass, VMRequest
from .admission import min_budget_for_cap
from .events import EventKind, NullEventLog
from .migration import EvictionOrder

# VM lifecycle codes (order-free; compared by equality only).  They
# mirror repro.cluster.vm.VMState: the kernel never round-trips through
# the enum on the hot path.
PENDING = 0
RUNNING = 1
PAUSED = 2
MIGRATED_OUT = 3
COMPLETED = 4
REJECTED = 5

_ADMIT = EventKind.ADMIT
_REJECT = EventKind.REJECT
_QUEUE = EventKind.QUEUE
_LAUNCH = EventKind.LAUNCH
_EVICT = EventKind.EVICT
_PAUSE = EventKind.PAUSE
_RESUME = EventKind.RESUME
_COMPLETE = EventKind.COMPLETE

_FIRST_PLACED = 0
_LARGEST_CORES = 1
_SMALLEST_MEMORY = 2


class StepKernel:
    """SoA step engine for one site (see module docstring).

    Built by :meth:`Datacenter.prepare_run` with ``kernel=True``; the
    datacenter still owns the power model, the supply dispatcher, and
    the result assembly — the kernel owns everything the five phases
    touch per step.

    Args:
        dc: The site whose configuration (and event log) this kernel
            executes under.
        requests: VM arrivals to replay (arrivals at or past the grid
            end are dropped, as the object engine's ``prepare_run``
            does).
        cols: The run's preallocated column store (possibly fleet row
            views).
    """

    def __init__(self, dc, requests: Sequence[VMRequest], cols):
        config = dc.config
        cluster = config.cluster
        spec = cluster.server
        self.cols = cols
        self.n = dc.power_trace.grid.n
        self.events = dc.events
        self._record = (
            None if isinstance(dc.events, NullEventLog)
            else dc.events.record
        )
        self._timers: dict[str, float] | None = dc._phase_seconds
        # --- configuration scalars, hoisted ---
        self.total_cores = cluster.total_cores
        self.n_servers = cluster.n_servers
        self._max_cores = spec.cores
        self.util = dc.admission.target_utilization
        self.power_relative = config.power_relative_admission
        self.patience = config.queue_patience_steps
        self.allocation = config.allocation
        self.pause_degradable = config.pause_degradable
        # Identity tests, mirroring EvictionPlanner._pick_victim's
        # dispatch exactly (anything else falls to smallest-memory).
        order = config.eviction_order
        self._order = (
            _FIRST_PLACED if order is EvictionOrder.FIRST_PLACED
            else _LARGEST_CORES if order is EvictionOrder.LARGEST_CORES
            else _SMALLEST_MEMORY
        )
        # int(util * total): the static admission ceiling the launch
        # threshold tests against (constant per run).
        self._static_cap = int(self.util * self.total_cores)
        # --- per-VM SoA state ---
        self.vm_cores: list[int] = []
        self.vm_mem: list[float] = []
        self.vm_ids: list[int] = []
        self.vm_stable: list[bool] = []
        self.vm_wire: list[float] = []
        self.vm_state: list[int] = []
        self.vm_server: list[int] = []
        self.vm_remaining: list[int] = []
        self.vm_finish: list[int] = []
        arrivals_by_step: dict[int, list[int]] = {}
        n = self.n
        wire_for = dc._wire_bytes_for
        for request in requests:
            if request.arrival_step >= n:
                continue
            index = len(self.vm_cores)
            self.vm_cores.append(request.cores)
            self.vm_mem.append(request.memory_bytes)
            self.vm_ids.append(request.vm_id)
            self.vm_stable.append(request.vm_class is VMClass.STABLE)
            self.vm_wire.append(wire_for(request.memory_bytes))
            self.vm_state.append(PENDING)
            self.vm_server.append(-1)
            self.vm_remaining.append(request.lifetime_steps)
            self.vm_finish.append(-1)
            arrivals_by_step.setdefault(request.arrival_step, []).append(
                index
            )
        self.arrivals_by_step = arrivals_by_step
        self.arrival_steps = sorted(arrivals_by_step)
        self.arrival_index = 0
        # --- per-server SoA state ---
        ns = self.n_servers
        self.srv_free_cores: list[int] = [spec.cores] * ns
        self.srv_free_mem: list[float] = [spec.memory_bytes] * ns
        # Insertion-ordered placement map per server (vm index -> None);
        # iteration order is the object model's dict-of-VMs order.
        self.srv_placed: list[dict[int, None]] = [{} for _ in range(ns)]
        self.srv_running: list[int] = [0] * ns
        # Sorted ids of servers hosting at least one RUNNING VM — the
        # eviction rotor's walk set.
        self.busy: list[int] = []
        # Free-core buckets, mirroring _ServerPool: _buckets[f] is the
        # sorted ids of servers with exactly f free cores.
        self._buckets: list[list[int]] = [
            [] for _ in range(self._max_cores + 1)
        ]
        self._buckets[self._max_cores] = list(range(ns))
        self._nonempty: list[int] = [self._max_cores] if ns else []
        # --- run state ---
        self.queue: deque[tuple[int, int]] = deque()
        self.paused: deque[int] = deque()
        self.finish_at: dict[int, list[int]] = {}
        self.finish_heap: list[int] = []
        self.expiry_heap: list[int] = []
        self.rotor = 0
        self.running_cores = 0
        self.allocated_cores = 0
        self.launch_blocked_min: int | None = None
        self.last = -1

    # ------------------------------------------------------------------
    # Pool bookkeeping (mirrors _ServerPool)
    # ------------------------------------------------------------------

    def _move(self, server_id: int, old_free: int) -> None:
        new_free = self.srv_free_cores[server_id]
        if new_free == old_free:
            return
        bucket = self._buckets[old_free]
        del bucket[bisect_left(bucket, server_id)]
        if not bucket:
            nonempty = self._nonempty
            del nonempty[bisect_left(nonempty, old_free)]
        target = self._buckets[new_free]
        if not target:
            insort(self._nonempty, new_free)
        insort(target, server_id)

    def _find(self, need: int, mem: float) -> int:
        """Placement query under the configured policy; -1 when none fits."""
        if need > self._max_cores:
            return -1
        nonempty = self._nonempty
        free_cores = self.srv_free_cores
        free_mem = self.srv_free_mem
        start = bisect_left(nonempty, need)
        mode = self.allocation
        if mode == "bestfit":
            for free in nonempty[start:]:
                for server_id in self._buckets[free]:
                    if (
                        need <= free_cores[server_id]
                        and mem <= free_mem[server_id]
                    ):
                        return server_id
            return -1
        if mode == "worstfit":
            for free in reversed(nonempty[start:]):
                for server_id in self._buckets[free]:
                    if (
                        need <= free_cores[server_id]
                        and mem <= free_mem[server_id]
                    ):
                        return server_id
            return -1
        best_id = -1
        for free in nonempty[start:]:
            for server_id in self._buckets[free]:
                if best_id >= 0 and server_id >= best_id:
                    break
                if (
                    need <= free_cores[server_id]
                    and mem <= free_mem[server_id]
                ):
                    best_id = server_id
                    break
        return best_id

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def _schedule_finish(self, index: int, step: int) -> None:
        finish = step + self.vm_remaining[index]
        self.vm_finish[index] = finish
        bucket = self.finish_at.get(finish)
        if bucket is None:
            self.finish_at[finish] = [index]
            heappush(self.finish_heap, finish)
        else:
            bucket.append(index)

    def _host(self, server_id: int, index: int, step: int) -> None:
        cores = self.vm_cores[index]
        old_free = self.srv_free_cores[server_id]
        self.srv_free_cores[server_id] = old_free - cores
        self.srv_free_mem[server_id] -= self.vm_mem[index]
        self.srv_placed[server_id][index] = None
        self._move(server_id, old_free)
        self.vm_state[index] = RUNNING
        self.vm_server[index] = server_id
        count = self.srv_running[server_id]
        self.srv_running[server_id] = count + 1
        if count == 0:
            insort(self.busy, server_id)
        self.running_cores += cores
        self.allocated_cores += cores
        self._schedule_finish(index, step)

    def _drop_running(self, server_id: int) -> None:
        count = self.srv_running[server_id] - 1
        self.srv_running[server_id] = count
        if count == 0:
            busy = self.busy
            del busy[bisect_left(busy, server_id)]

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _phase_completions(self, step: int) -> int:
        finished = self.finish_at.pop(step, None)
        if not finished:
            return 0
        vm_state = self.vm_state
        vm_finish = self.vm_finish
        vm_ids = self.vm_ids
        # Same-step pause->resume can re-add a VM under its original
        # finish step: dedup on the VM id, as the object engine does.
        valid: list[int] = []
        seen: set[int] = set()
        for index in finished:
            if (
                vm_state[index] == RUNNING
                and vm_finish[index] == step
                and vm_ids[index] not in seen
            ):
                seen.add(vm_ids[index])
                valid.append(index)
        if not valid:
            return 0
        by_server: dict[int, list[int]] = {}
        vm_server = self.vm_server
        for index in valid:
            by_server.setdefault(vm_server[index], []).append(index)
        vm_cores = self.vm_cores
        vm_mem = self.vm_mem
        free_cores = self.srv_free_cores
        free_mem = self.srv_free_mem
        placed = self.srv_placed
        for server_id, members in by_server.items():
            old_free = free_cores[server_id]
            on_server = placed[server_id]
            for index in members:
                free_cores[server_id] += vm_cores[index]
                free_mem[server_id] += vm_mem[index]
                del on_server[index]
            count = self.srv_running[server_id] - len(members)
            self.srv_running[server_id] = count
            if count == 0:
                busy = self.busy
                del busy[bisect_left(busy, server_id)]
            self._move(server_id, old_free)
        freed = 0
        record = self._record
        vm_remaining = self.vm_remaining
        for index in valid:
            vm_state[index] = COMPLETED
            vm_remaining[index] = 0
            vm_finish[index] = -1
            vm_server[index] = -1
            freed += vm_cores[index]
            if record is not None:
                record(step, _COMPLETE, vm_ids[index])
        self.running_cores -= freed
        self.allocated_cores -= freed
        return len(valid)

    def _pick_victim(self, server_id: int, selected: set[int]) -> int:
        """The planner's per-server victim choice, over indices.

        Mirrors ``EvictionPlanner``: FIRST_PLACED takes the first
        RUNNING VM in placement order; LARGEST_CORES the max by
        ``(cores, -vm_id)``; SMALLEST_MEMORY the min by
        ``(memory_bytes, vm_id)`` — strict-improvement scans keep the
        first occurrence on fully-equal keys, matching the stable sorts
        of the object planner.  Returns -1 when no candidate remains.
        """
        vm_state = self.vm_state
        vm_ids = self.vm_ids
        order = self._order
        if order == _FIRST_PLACED:
            for index in self.srv_placed[server_id]:
                if vm_state[index] == RUNNING and vm_ids[index] not in selected:
                    return index
            return -1
        best = -1
        if order == _LARGEST_CORES:
            vm_cores = self.vm_cores
            best_cores = -1
            best_id = 0
            for index in self.srv_placed[server_id]:
                if vm_state[index] != RUNNING or vm_ids[index] in selected:
                    continue
                cores = vm_cores[index]
                vm_id = vm_ids[index]
                if best < 0 or cores > best_cores or (
                    cores == best_cores and vm_id < best_id
                ):
                    best = index
                    best_cores = cores
                    best_id = vm_id
            return best
        vm_mem = self.vm_mem
        best_mem = 0.0
        best_id = 0
        for index in self.srv_placed[server_id]:
            if vm_state[index] != RUNNING or vm_ids[index] in selected:
                continue
            mem = vm_mem[index]
            vm_id = vm_ids[index]
            if best < 0 or mem < best_mem or (
                mem == best_mem and vm_id < best_id
            ):
                best = index
                best_mem = mem
                best_id = vm_id
        return best

    def _plan_power_down(
        self, cores_to_free: int
    ) -> tuple[list[int], list[int]]:
        """Round-robin victim selection over the busy-server index.

        Visit-equivalent to ``EvictionPlanner.plan`` over all servers:
        a server without a RUNNING VM can never yield a victim, so
        skipping it changes neither the victim sequence nor the
        termination condition (one full victimless lap over busy
        servers *is* one full victimless lap over all servers — the
        ``selected`` set does not change during a victimless lap).  The
        persisted rotor also matches: every terminating case leaves the
        object planner's rotor at ``last_victim_server + 1`` modulo the
        cluster (success, and exhaustion after progress: the final
        ``n_servers`` failed visits advance it by exactly one full
        lap), or unchanged when no victim was found at all.
        """
        busy = self.busy
        if not busy:
            return [], []
        to_migrate: list[int] = []
        to_pause: list[int] = []
        selected: set[int] = set()
        freed = 0
        fails = 0
        n_busy = len(busy)
        pos = bisect_left(busy, self.rotor)
        if pos == n_busy:
            pos = 0
        vm_cores = self.vm_cores
        vm_ids = self.vm_ids
        vm_stable = self.vm_stable
        pause_degradable = self.pause_degradable
        last_victim_server = -1
        while freed < cores_to_free and fails < n_busy:
            server_id = busy[pos]
            pos += 1
            if pos == n_busy:
                pos = 0
            victim = self._pick_victim(server_id, selected)
            if victim < 0:
                fails += 1
                continue
            fails = 0
            selected.add(vm_ids[victim])
            freed += vm_cores[victim]
            last_victim_server = server_id
            if pause_degradable and not vm_stable[victim]:
                to_pause.append(victim)
            else:
                to_migrate.append(victim)
        if last_victim_server >= 0:
            self.rotor = (last_victim_server + 1) % self.n_servers
        return to_migrate, to_pause

    def _phase_power_down(
        self, step: int, budget: int
    ) -> tuple[float, int, int]:
        overflow = self.running_cores - budget
        if overflow <= 0:
            return 0.0, 0, 0
        to_migrate, to_pause = self._plan_power_down(overflow)
        vm_cores = self.vm_cores
        vm_finish = self.vm_finish
        vm_remaining = self.vm_remaining
        vm_state = self.vm_state
        vm_server = self.vm_server
        record = self._record
        for index in to_pause:
            finish = vm_finish[index]
            if finish >= 0:
                remaining = finish - step
                vm_remaining[index] = remaining if remaining > 1 else 1
            vm_finish[index] = -1
            vm_state[index] = PAUSED
            self.running_cores -= vm_cores[index]
            self._drop_running(vm_server[index])
            self.paused.append(index)
            if record is not None:
                record(step, _PAUSE, self.vm_ids[index])
        out_bytes = 0.0
        free_cores = self.srv_free_cores
        free_mem = self.srv_free_mem
        for index in to_migrate:
            server_id = vm_server[index]
            old_free = free_cores[server_id]
            free_cores[server_id] = old_free + vm_cores[index]
            free_mem[server_id] += self.vm_mem[index]
            del self.srv_placed[server_id][index]
            self._move(server_id, old_free)
            finish = vm_finish[index]
            if finish >= 0:
                remaining = finish - step
                vm_remaining[index] = remaining if remaining > 1 else 1
            vm_finish[index] = -1
            vm_state[index] = MIGRATED_OUT
            vm_server[index] = -1
            self.running_cores -= vm_cores[index]
            self.allocated_cores -= vm_cores[index]
            self._drop_running(server_id)
            wire = self.vm_wire[index]
            out_bytes += wire
            if record is not None:
                record(step, _EVICT, self.vm_ids[index], wire)
        return out_bytes, len(to_migrate), len(to_pause)

    def _phase_resume(self, step: int, budget: int) -> int:
        paused = self.paused
        n_resumed = 0
        vm_state = self.vm_state
        vm_cores = self.vm_cores
        record = self._record
        while paused:
            index = paused[0]
            if vm_state[index] != PAUSED:
                paused.popleft()
                continue
            cores = vm_cores[index]
            if self.running_cores + cores > budget:
                break
            paused.popleft()
            vm_state[index] = RUNNING
            self.running_cores += cores
            self._schedule_finish(index, step)
            server_id = self.vm_server[index]
            count = self.srv_running[server_id]
            self.srv_running[server_id] = count + 1
            if count == 0:
                insort(self.busy, server_id)
            if record is not None:
                record(step, _RESUME, self.vm_ids[index])
            n_resumed += 1
        return n_resumed

    def _core_cap(self, budget: int) -> int:
        """The admission cap, replicating ``AdmissionControl.core_cap``."""
        total = self.total_cores
        if self.power_relative:
            capacity = budget if budget < total else total
        else:
            capacity = total
        return int(self.util * capacity)

    def _phase_arrivals(
        self, step: int, budget: int, arrivals: Sequence[int]
    ) -> tuple[int, int]:
        if not arrivals:
            return 0, 0
        n_admitted = 0
        n_queued = 0
        cap = self._core_cap(budget)
        vm_cores = self.vm_cores
        vm_mem = self.vm_mem
        record = self._record
        queue = self.queue
        for index in arrivals:
            cores = vm_cores[index]
            server_id = (
                self._find(cores, vm_mem[index])
                if (
                    self.allocated_cores + cores <= cap
                    and self.running_cores + cores <= budget
                )
                else -1
            )
            if server_id >= 0:
                self._host(server_id, index, step)
                if record is not None:
                    record(step, _ADMIT, self.vm_ids[index])
                n_admitted += 1
            else:
                queue.append((index, step))
                if record is not None:
                    record(step, _QUEUE, self.vm_ids[index])
                n_queued += 1
        return n_admitted, n_queued

    def _phase_launches(
        self, step: int, budget: int
    ) -> tuple[float, int, int]:
        queue = self.queue
        if not queue:
            self.launch_blocked_min = None
            return 0.0, 0, 0
        in_bytes = 0.0
        n_launched = 0
        n_expired = 0
        blocked_min: int | None = None
        patience = self.patience
        cap = self._core_cap(budget)
        vm_cores = self.vm_cores
        vm_mem = self.vm_mem
        vm_state = self.vm_state
        record = self._record
        survivors: list[tuple[int, int]] = []
        for _ in range(len(queue)):
            index, queued_at = queue.popleft()
            if step - queued_at > patience:
                vm_state[index] = REJECTED
                if record is not None:
                    record(step, _REJECT, self.vm_ids[index])
                n_expired += 1
                continue
            cap_room = cap - self.allocated_cores
            if cap_room < 0:
                cap_room = 0
            power_room = budget - self.running_cores
            headroom = cap_room if cap_room < power_room else power_room
            if headroom <= 0:
                survivors.append((index, queued_at))
                blocked = vm_cores[index]
                while queue:
                    other = queue.popleft()
                    survivors.append(other)
                    if vm_cores[other[0]] < blocked:
                        blocked = vm_cores[other[0]]
                if blocked_min is None or blocked < blocked_min:
                    blocked_min = blocked
                break
            cores = vm_cores[index]
            if cores > headroom:
                if blocked_min is None or cores < blocked_min:
                    blocked_min = cores
                survivors.append((index, queued_at))
                continue
            server_id = self._find(cores, vm_mem[index])
            if server_id < 0:
                survivors.append((index, queued_at))
                continue
            self._host(server_id, index, step)
            in_bytes += vm_mem[index]
            if record is not None:
                record(step, _LAUNCH, self.vm_ids[index], vm_mem[index])
            n_launched += 1
        queue.extend(survivors)
        self.launch_blocked_min = blocked_min
        return in_bytes, n_launched, n_expired

    # ------------------------------------------------------------------
    # The step
    # ------------------------------------------------------------------

    def _step(self, step: int, budget: int, arrivals: Sequence[int]) -> None:
        cols = self.cols
        timers = self._timers
        if timers is None:
            n_completed = self._phase_completions(step)
            out_bytes, n_evicted, n_paused = self._phase_power_down(
                step, budget
            )
            n_resumed = self._phase_resume(step, budget)
            n_admitted, n_queued = self._phase_arrivals(
                step, budget, arrivals
            )
            in_bytes, n_launched, n_expired = self._phase_launches(
                step, budget
            )
        else:
            t0 = perf_counter()
            n_completed = self._phase_completions(step)
            t1 = perf_counter()
            timers["completions"] += t1 - t0
            out_bytes, n_evicted, n_paused = self._phase_power_down(
                step, budget
            )
            t2 = perf_counter()
            timers["power_down"] += t2 - t1
            n_resumed = self._phase_resume(step, budget)
            t3 = perf_counter()
            timers["resume"] += t3 - t2
            n_admitted, n_queued = self._phase_arrivals(
                step, budget, arrivals
            )
            t4 = perf_counter()
            timers["arrivals"] += t4 - t3
            in_bytes, n_launched, n_expired = self._phase_launches(
                step, budget
            )
            timers["launches"] += perf_counter() - t4
        cols.running_cores[step] = self.running_cores
        cols.allocated_cores[step] = self.allocated_cores
        cols.out_bytes[step] = out_bytes
        cols.in_bytes[step] = in_bytes
        cols.n_arrivals[step] = len(arrivals)
        cols.n_admitted[step] = n_admitted
        cols.n_queued[step] = n_queued
        cols.n_launched[step] = n_launched
        cols.n_evicted[step] = n_evicted
        cols.n_paused[step] = n_paused
        cols.n_resumed[step] = n_resumed
        cols.n_completed[step] = n_completed
        cols.n_expired[step] = n_expired
        cols.queue_length[step] = len(self.queue)

    # ------------------------------------------------------------------
    # Wake-by-wake protocol (single-site loops + fleet engine)
    # ------------------------------------------------------------------

    def _launch_wake_threshold(self) -> int | None:
        """Smallest budget at which a queued VM could launch (see
        :meth:`Datacenter._launch_wake_threshold`)."""
        m = self.launch_blocked_min
        if m is None:
            return None
        need = self.allocated_cores + m
        if need > self._static_cap:
            return None
        running_threshold = self.running_cores + m
        if not self.power_relative:
            return running_threshold
        budget = min_budget_for_cap(need, self.util, self.total_cores)
        return max(running_threshold, budget)

    def wake_bounds(self) -> tuple[int, int | None]:
        """Budget thresholds making a skipped step impossible."""
        running = self.running_cores
        upper: int | None = None
        if self.paused:
            upper = running + self.vm_cores[self.paused[0]]
        if self.queue:
            launch = self._launch_wake_threshold()
            if launch is not None and (upper is None or launch < upper):
                upper = launch
        return running, upper

    def carried_state(self) -> tuple[int, int, int]:
        """(running, allocated, queue length) for forward-fill windows."""
        return self.running_cores, self.allocated_cores, len(self.queue)

    def next_event(self) -> int:
        """Next arrival / finish / expiry after :attr:`last` (or ``n``)."""
        nxt = self.n
        if self.arrival_index < len(self.arrival_steps):
            nxt = self.arrival_steps[self.arrival_index]
        last = self.last
        heap = self.finish_heap
        while heap and heap[0] <= last:
            heappop(heap)
        if heap and heap[0] < nxt:
            nxt = heap[0]
        heap = self.expiry_heap
        while heap and heap[0] <= last:
            heappop(heap)
        if heap and heap[0] < nxt:
            nxt = heap[0]
        return nxt

    def step_wake(self, step: int, budget: int) -> None:
        """Execute one wake: resolve arrivals, step, push queue expiry."""
        arrival_steps = self.arrival_steps
        index = self.arrival_index
        if index < len(arrival_steps) and arrival_steps[index] == step:
            arrivals: Sequence[int] = self.arrivals_by_step[step]
            self.arrival_index = index + 1
        else:
            arrivals = ()
        self._step(step, budget, arrivals)
        queue = self.queue
        if queue and queue[-1][1] == step:
            expiry = step + self.patience + 1
            if expiry < self.n:
                heappush(self.expiry_heap, expiry)
        self.last = step

    def demand_at(self, step: int) -> int:
        """Demand at a wake step: :meth:`Datacenter._demand_cores` with
        this step's (unconsumed) arrivals and finish bucket."""
        index = self.arrival_index
        arrival_steps = self.arrival_steps
        if index < len(arrival_steps) and arrival_steps[index] == step:
            arrivals: Sequence[int] = self.arrivals_by_step[step]
        else:
            arrivals = ()
        return self._demand_cores(step, arrivals)

    def window_demand(self) -> int:
        """Demand over an event-free window (no finishes, no arrivals)."""
        return self._demand_cores(-1, ())

    def _demand_cores(self, step: int, arrivals: Sequence[int]) -> int:
        vm_cores = self.vm_cores
        vm_state = self.vm_state
        finishing = 0
        bucket = self.finish_at.get(step)
        if bucket:
            vm_finish = self.vm_finish
            vm_ids = self.vm_ids
            seen: set[int] = set()
            for index in bucket:
                if (
                    vm_state[index] == RUNNING
                    and vm_finish[index] == step
                    and vm_ids[index] not in seen
                ):
                    seen.add(vm_ids[index])
                    finishing += vm_cores[index]
        demand = self.running_cores - finishing
        for index in self.paused:
            if vm_state[index] == PAUSED:
                demand += vm_cores[index]
        for index, _ in self.queue:
            demand += vm_cores[index]
        for index in arrivals:
            demand += vm_cores[index]
        if demand < 0:
            return 0
        total = self.total_cores
        return demand if demand < total else total

    # ------------------------------------------------------------------
    # Single-site open-loop event engine
    # ------------------------------------------------------------------

    def run_event(self, budgets) -> int:
        """Open-loop event loop over a precomputed budget series.

        Mirrors :meth:`Datacenter._run_event` — same wake sources, same
        forward-fills — over the SoA state.  Returns the number of
        wake steps processed.
        """
        n = self.n
        cols = self.cols
        processed = 0
        arrival_steps = self.arrival_steps
        n_arrival_steps = len(arrival_steps)
        finish_heap = self.finish_heap
        expiry_heap = self.expiry_heap
        queue = self.queue
        paused = self.paused
        vm_cores = self.vm_cores
        last = -1
        while True:
            nxt = n
            if self.arrival_index < n_arrival_steps:
                nxt = arrival_steps[self.arrival_index]
            while finish_heap and finish_heap[0] <= last:
                heappop(finish_heap)
            if finish_heap and finish_heap[0] < nxt:
                nxt = finish_heap[0]
            while expiry_heap and expiry_heap[0] <= last:
                heappop(expiry_heap)
            if expiry_heap and expiry_heap[0] < nxt:
                nxt = expiry_heap[0]
            window_start = last + 1
            if window_start < nxt:
                running = self.running_cores
                window = budgets[window_start:nxt]
                wake = window < running if running > 0 else None
                threshold = None
                if paused:
                    threshold = running + vm_cores[paused[0]]
                if queue:
                    launch_threshold = self._launch_wake_threshold()
                    if launch_threshold is not None and (
                        threshold is None or launch_threshold < threshold
                    ):
                        threshold = launch_threshold
                if threshold is not None:
                    above = window >= threshold
                    wake = above if wake is None else (wake | above)
                if wake is not None:
                    hit = int(np.argmax(wake))
                    if wake[hit]:
                        nxt = window_start + hit
                if window_start < nxt:
                    cols.running_cores[window_start:nxt] = running
                    cols.allocated_cores[window_start:nxt] = (
                        self.allocated_cores
                    )
                    cols.queue_length[window_start:nxt] = len(queue)
            if nxt >= n:
                self.last = last
                return processed
            self.step_wake(nxt, int(budgets[nxt]))
            processed += 1
            last = nxt

    # ------------------------------------------------------------------
    # Fleet drain (the cross-site engine's inner loop)
    # ------------------------------------------------------------------

    def drain_block(
        self,
        step: int,
        budget_row,
        b1: int,
        processed: list[int],
    ) -> tuple[int, int, int | None]:
        """Process the chain of in-block wakes starting at ``step``.

        The fleet engine pops one ``(step, site)`` wake per site per
        block; the site then drains every wake it can reach before
        ``b1`` — arrivals, finishes, expiries, and budget-threshold
        crossings rescanned over its own budget row — without
        re-entering the shared heap.  Appends processed steps to
        ``processed`` and returns ``(next_wake, running, upper)`` where
        ``next_wake`` is the first event at or past ``b1`` (or ``n``)
        and the bounds are the site's wake thresholds after the chain.
        """
        n = self.n
        arrivals_by_step = self.arrivals_by_step
        arrival_steps = self.arrival_steps
        n_arrival_steps = len(arrival_steps)
        ai = self.arrival_index
        finish_heap = self.finish_heap
        expiry_heap = self.expiry_heap
        queue = self.queue
        paused = self.paused
        vm_cores = self.vm_cores
        patience = self.patience
        while True:
            processed.append(step)
            if ai < n_arrival_steps and arrival_steps[ai] == step:
                arrivals: Sequence[int] = arrivals_by_step[step]
                ai += 1
            else:
                arrivals = ()
            self._step(step, int(budget_row[step]), arrivals)
            if queue and queue[-1][1] == step:
                expiry = step + patience + 1
                if expiry < n:
                    heappush(expiry_heap, expiry)
            # --- wake bounds ---
            running = self.running_cores
            upper: int | None = None
            if paused:
                upper = running + vm_cores[paused[0]]
            if queue:
                launch = self._launch_wake_threshold()
                if launch is not None and (upper is None or launch < upper):
                    upper = launch
            # --- next event ---
            wake = n
            if ai < n_arrival_steps:
                wake = arrival_steps[ai]
            while finish_heap and finish_heap[0] <= step:
                heappop(finish_heap)
            if finish_heap and finish_heap[0] < wake:
                wake = finish_heap[0]
            while expiry_heap and expiry_heap[0] <= step:
                heappop(expiry_heap)
            if expiry_heap and expiry_heap[0] < wake:
                wake = expiry_heap[0]
            # --- in-block crossing rescan ---
            start = step + 1
            if start < b1 and (running or upper is not None):
                scan_stop = b1 if wake > b1 else wake
                if start < scan_stop:
                    row = budget_row[start:scan_stop]
                    if upper is None:
                        cross = row < running
                    elif running:
                        cross = (row < running) | (row >= upper)
                    else:
                        cross = row >= upper
                    hit = cross.argmax()
                    if cross[hit]:
                        wake = start + int(hit)
            if wake < b1:
                step = wake
                continue
            break
        self.arrival_index = ai
        self.last = step
        return wake, running, upper
