"""Geographic latency estimation between VB sites.

The paper connects two sites in the scheduling graph when their ping
latency is under 50 ms.  We estimate RTT from great-circle distance:
light in fibre covers ~200 km/ms one way, real paths detour (routing
inflation ~1.5x is the long-standing empirical figure), plus a fixed
per-hop processing overhead.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..traces.sites import Site, SiteCatalog

#: The paper's edge threshold for the VB site graph (§3.1).
DEFAULT_LATENCY_THRESHOLD_MS = 50.0

#: Speed of light in fibre, km per millisecond (one way).
FIBRE_KM_PER_MS = 200.0

#: Path-stretch factor: fibre routes are not great circles.
ROUTE_INFLATION = 1.5

#: Fixed RTT overhead (last-mile, queuing, processing), milliseconds.
FIXED_OVERHEAD_MS = 4.0


def latency_ms(
    site_a: Site,
    site_b: Site,
    inflation: float = ROUTE_INFLATION,
    overhead_ms: float = FIXED_OVERHEAD_MS,
) -> float:
    """Estimated round-trip latency between two sites, milliseconds."""
    if inflation < 1.0:
        raise ConfigurationError(
            f"route inflation must be >= 1: {inflation}"
        )
    if overhead_ms < 0:
        raise ConfigurationError(
            f"overhead must be >= 0: {overhead_ms}"
        )
    distance = site_a.distance_km(site_b)
    one_way_ms = distance * inflation / FIBRE_KM_PER_MS
    return 2.0 * one_way_ms + overhead_ms


def latency_matrix_ms(
    catalog: SiteCatalog,
    inflation: float = ROUTE_INFLATION,
    overhead_ms: float = FIXED_OVERHEAD_MS,
) -> np.ndarray:
    """Pairwise RTT matrix for a catalog, milliseconds.

    The diagonal is zero (a site to itself).
    """
    sites = list(catalog)
    n = len(sites)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            rtt = latency_ms(sites[i], sites[j], inflation, overhead_ms)
            matrix[i, j] = matrix[j, i] = rtt
    return matrix
