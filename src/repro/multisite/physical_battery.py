"""Physical (chemical) battery model — the alternative VB replaces.

§1's motivation: grid-scale batteries are minuscule relative to
renewable capacity (~0.4% in the US) and lose energy round-trip, which
is why the paper shifts *computation* instead of electrons.  This
module makes that comparison quantitative: a battery of a given energy
capacity and power rating smooths a generation trace (charge on
surplus, discharge on deficit against a target floor), and the smoothed
trace's stable energy can be compared against what the same site gains
from joining a multi-VB group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..supply import BatteryDispatch, SupplyStack
from ..traces import PowerTrace


@dataclass(frozen=True)
class BatterySpec:
    """A stationary battery attached to one site.

    Attributes:
        capacity_mwh: Usable energy capacity.
        max_power_mw: Charge and discharge power limit.
        round_trip_efficiency: Fraction of charged energy recoverable
            on discharge (applied on discharge; ~0.85 for Li-ion).
        initial_charge_fraction: State of charge at the start.
    """

    capacity_mwh: float
    max_power_mw: float
    round_trip_efficiency: float = 0.85
    initial_charge_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_mwh < 0:
            raise ConfigurationError(
                f"capacity must be >= 0: {self.capacity_mwh}"
            )
        if self.max_power_mw <= 0:
            raise ConfigurationError(
                f"power rating must be positive: {self.max_power_mw}"
            )
        if not 0.0 < self.round_trip_efficiency <= 1.0:
            raise ConfigurationError(
                "round-trip efficiency must be in (0,1]:"
                f" {self.round_trip_efficiency}"
            )
        if not 0.0 <= self.initial_charge_fraction <= 1.0:
            raise ConfigurationError(
                "initial charge must be in [0,1]:"
                f" {self.initial_charge_fraction}"
            )


@dataclass(frozen=True)
class BatterySimulation:
    """Result of smoothing a trace through a battery.

    Attributes:
        output: The delivered power trace (generation +/- battery).
        state_of_charge_mwh: Stored energy after each step.
        charged_mwh: Total energy sent into the battery.
        discharged_mwh: Total energy delivered from it.
        losses_mwh: Round-trip losses (charged minus recoverable).
    """

    output: PowerTrace
    state_of_charge_mwh: np.ndarray
    charged_mwh: float
    discharged_mwh: float
    losses_mwh: float


def smooth_with_battery(
    trace: PowerTrace,
    battery: BatterySpec,
    target_fraction: float = 0.5,
) -> BatterySimulation:
    """Run a greedy target-tracking battery policy over a trace.

    The controller tries to hold delivered power at
    ``target_fraction x mean generation``: above the target it charges
    the surplus (up to power and capacity limits) and below it it
    discharges (up to power and stored-energy limits).  Greedy
    target-tracking is the standard firming baseline; it needs no
    forecast, which keeps the comparison with the forecast-using
    co-scheduler honest about where VB's advantage comes from.

    Args:
        trace: Site generation.
        battery: Battery parameters.
        target_fraction: Delivery target relative to mean generation.

    Returns:
        The smoothed trace and the battery's energy accounting.
    """
    # The smoothing *is* an open-loop evaluation of a one-battery
    # supply stack: BatteryDispatch.step mirrors the original greedy
    # controller operation for operation, so the delegation is
    # bit-identical (pinned by tests/test_physical_battery.py).
    stack = SupplyStack(
        (
            BatteryDispatch(
                capacity_mwh=battery.capacity_mwh,
                max_power_mw=battery.max_power_mw,
                efficiency=battery.round_trip_efficiency,
                initial_charge_fraction=battery.initial_charge_fraction,
            ),
        ),
        target_fraction,
    )
    evaluation = stack.evaluate_open_loop(trace)
    efficiency = battery.round_trip_efficiency
    discharged = evaluation.discharge_total_mwh
    # Delivering `discharged` MWh drew `discharged / efficiency` from
    # storage; the difference is the realized round-trip loss.
    losses = discharged * (1.0 / efficiency - 1.0) if efficiency else 0.0
    smoothed = PowerTrace(
        trace.grid,
        evaluation.delivered,
        f"{trace.name}+battery",
        trace.kind,
        trace.capacity_mw,
    )
    return BatterySimulation(
        output=smoothed,
        state_of_charge_mwh=evaluation.soc_mwh,
        charged_mwh=evaluation.charge_total_mwh,
        discharged_mwh=discharged,
        losses_mwh=max(losses, 0.0),
    )


def battery_capacity_for_stable_parity(
    site_trace: PowerTrace,
    group_trace: PowerTrace,
    window_days: float = 3.0,
    max_capacity_mwh: float = 50_000.0,
    tolerance_mwh: float = 50.0,
) -> float | None:
    """Battery size matching a multi-VB group's stable-energy share.

    Binary-searches the battery capacity (power rating scaled as C/4,
    a typical 4-hour system) at which the battery-smoothed single site
    reaches the *stable energy fraction* of the multi-VB aggregate.
    Returns None when even ``max_capacity_mwh`` falls short — the
    paper's point that batteries cannot economically match site
    aggregation.
    """
    from .variability import windowed_stable_energy

    group_stable, group_variable = windowed_stable_energy(
        group_trace, window_days
    )
    group_total = group_stable + group_variable
    if group_total <= 0:
        return 0.0
    target_fraction = group_stable / group_total

    def stable_fraction(capacity: float) -> float:
        if capacity == 0.0:
            stable, variable = windowed_stable_energy(
                site_trace, window_days
            )
        else:
            battery = BatterySpec(capacity, max(capacity / 4.0, 1e-6))
            smoothed = smooth_with_battery(site_trace, battery).output
            stable, variable = windowed_stable_energy(
                smoothed, window_days
            )
        total = stable + variable
        return stable / total if total > 0 else 0.0

    if stable_fraction(max_capacity_mwh) < target_fraction:
        return None
    low, high = 0.0, max_capacity_mwh
    while high - low > tolerance_mwh:
        mid = (low + high) / 2.0
        if stable_fraction(mid) >= target_fraction:
            high = mid
        else:
            low = mid
    return high
