"""Wholesale-market model: curtailment and negative prices (§2.1).

Two of the paper's four economic arguments are market phenomena: grid
operators increasingly *curtail* renewable farms to keep supply and
demand balanced (up to ~6% of generation and rising), and high
renewable output depresses wholesale prices, "including negative
prices".  A VB consumes that energy on site at full compute value.

This module synthesizes a wholesale price series anti-correlated with
renewable output (the mechanism behind both effects), derives the
curtailment the grid would impose, and compares the revenue of
exporting to the grid against running compute — quantifying §2.1's
"generate high value from it".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace, SpotPriceTrace


@dataclass(frozen=True)
class MarketModel:
    """Wholesale price dynamics driven by renewable penetration.

    The clearing price falls as renewable output rises (merit-order
    effect): ``price = base - sensitivity * normalized_output + noise``.
    High-output hours push the price through zero — the negative-price
    episodes of the paper's reference [4] — and the grid curtails
    whatever it cannot absorb above an output threshold.

    Attributes:
        base_price_per_mwh: Price at zero renewable output.
        sensitivity_per_mwh: Price drop from zero to full output.
        noise_std_per_mwh: Demand-side price noise (i.i.d.).
        curtailment_threshold: Normalized output above which the grid
            curtails the excess entirely.
        compute_value_per_mwh: Revenue a VB earns per MWh turned into
            compute (cloud margin on the energy).
    """

    base_price_per_mwh: float = 55.0
    sensitivity_per_mwh: float = 70.0
    noise_std_per_mwh: float = 8.0
    curtailment_threshold: float = 0.85
    compute_value_per_mwh: float = 120.0

    def __post_init__(self) -> None:
        if self.base_price_per_mwh < 0:
            raise ConfigurationError(
                f"base price must be >= 0: {self.base_price_per_mwh}"
            )
        if self.sensitivity_per_mwh < 0 or self.noise_std_per_mwh < 0:
            raise ConfigurationError("price dynamics must be >= 0")
        if not 0.0 < self.curtailment_threshold <= 1.0:
            raise ConfigurationError(
                "curtailment threshold must be in (0,1]:"
                f" {self.curtailment_threshold}"
            )
        if self.compute_value_per_mwh <= 0:
            raise ConfigurationError(
                "compute value must be positive:"
                f" {self.compute_value_per_mwh}"
            )

    def price_series(
        self,
        trace: PowerTrace,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Wholesale price per step, currency/MWh (can go negative).

        Thin shim over :meth:`SpotPriceTrace.merit_order` — the single
        merit-order price generator — kept for callers that want the
        raw array; the RNG call sequence is identical, so existing
        seeded results are unchanged bit for bit.
        """
        return self.price_trace(trace, rng=rng, seed=seed).values

    def price_trace(
        self,
        trace: PowerTrace,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> SpotPriceTrace:
        """The merit-order price as a typed :class:`SpotPriceTrace`."""
        return SpotPriceTrace.merit_order(
            trace,
            base_price_per_mwh=self.base_price_per_mwh,
            sensitivity_per_mwh=self.sensitivity_per_mwh,
            noise_std_per_mwh=self.noise_std_per_mwh,
            rng=rng,
            seed=seed,
        )

    def curtailed_series_mwh(self, trace: PowerTrace) -> np.ndarray:
        """Energy the grid refuses per step (output above threshold)."""
        excess = np.clip(
            trace.values - self.curtailment_threshold, 0.0, None
        )
        return excess * trace.capacity_mw * trace.grid.step_hours


@dataclass(frozen=True)
class RevenueComparison:
    """Export-to-grid vs consume-as-compute over one trace.

    Attributes:
        export_revenue: Selling all *accepted* energy at the wholesale
            price (curtailed energy earns nothing; negative-price hours
            cost the exporter).
        compute_revenue: Running compute on all generated energy at the
            compute value (curtailment and prices are irrelevant — the
            electrons never leave the site).
        curtailed_mwh: Energy the grid would have refused.
        negative_price_fraction: Share of steps with a negative price.
    """

    export_revenue: float
    compute_revenue: float
    curtailed_mwh: float
    negative_price_fraction: float

    @property
    def uplift(self) -> float:
        """Compute revenue relative to export revenue.

        ``inf`` when exporting earns nothing or loses money — exactly
        the negative-price regime the paper highlights.
        """
        if self.export_revenue <= 0:
            return float("inf")
        return self.compute_revenue / self.export_revenue


def compare_revenue(
    trace: PowerTrace,
    market: MarketModel | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> RevenueComparison:
    """Bill one site's generation both ways (§2.1's economics).

    Export: every step sells ``min(output, threshold)`` of capacity at
    the step's wholesale price — negative prices *charge* the exporter,
    as they do real farms.  Compute: every generated MWh earns the
    compute value, curtailment-free.
    """
    market = market or MarketModel()
    prices = market.price_series(trace, rng=rng, seed=seed)
    step_energy = trace.power_mw() * trace.grid.step_hours
    curtailed = market.curtailed_series_mwh(trace)
    accepted = step_energy - curtailed
    export = float(np.sum(accepted * prices))
    compute = float(np.sum(step_energy)) * market.compute_value_per_mwh
    return RevenueComparison(
        export_revenue=export,
        compute_revenue=compute,
        curtailed_mwh=float(curtailed.sum()),
        negative_price_fraction=float(np.mean(prices < 0.0)),
    )
