"""VBSite: a site's metadata, trace, and compute capacity in one object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..cluster import ClusterSpec
from ..cluster.power import LinearCorePower
from ..errors import ConfigurationError
from ..supply import SupplyStack
from ..traces import PowerTrace
from ..traces.sites import Site, SiteCatalog


@dataclass(frozen=True)
class VBSite:
    """One Virtual Battery site: renewable farm + co-located mini-DC.

    Attributes:
        site: Catalog entry (name, kind, coordinates, capacity).
        trace: The site's (actual) generation trace; the scheduler never
            reads this directly — it sees forecasts.
        cluster: The co-located cluster, sized so full generation powers
            every core (the paper's sizing rule).
    """

    site: Site
    trace: PowerTrace
    cluster: ClusterSpec

    def __post_init__(self) -> None:
        if self.trace.name != self.site.name:
            raise ConfigurationError(
                f"trace {self.trace.name!r} does not belong to site"
                f" {self.site.name!r}"
            )

    @property
    def name(self) -> str:
        """The site's catalog name."""
        return self.site.name

    @property
    def total_cores(self) -> int:
        """Core capacity of the co-located cluster."""
        return self.cluster.total_cores

    def core_budget_series(
        self, supply: SupplyStack | None = None
    ) -> "list[int]":
        """Powered-core budget per step under the linear power model.

        Computed through the shared
        :class:`~repro.cluster.power.LinearCorePower` vectorized path
        (bit-identical to the former inline ``int(v * total)`` loop).
        A ``supply`` stack, when given, firms the trace open-loop
        before conversion — the same composition every other consumer
        applies.
        """
        trace = self.trace if supply is None else supply.apply(self.trace)
        model = LinearCorePower(self.cluster)
        return model.core_budget_series(trace.values).tolist()


def build_vb_sites(
    catalog: SiteCatalog,
    traces: Mapping[str, PowerTrace],
    cluster: ClusterSpec | None = None,
) -> list[VBSite]:
    """Assemble :class:`VBSite` objects from a catalog and its traces.

    Args:
        catalog: Site metadata.
        traces: Per-site generation traces (from
            :func:`repro.traces.synthesize_catalog_traces`).
        cluster: Cluster shape per site; defaults to the paper's
            700 x 40-core configuration.

    Raises:
        ConfigurationError: if any catalog site lacks a trace.
    """
    cluster = cluster or ClusterSpec()
    sites: list[VBSite] = []
    for site in catalog:
        if site.name not in traces:
            raise ConfigurationError(
                f"no trace supplied for site {site.name!r}"
            )
        sites.append(VBSite(site, traces[site.name], cluster))
    return sites
