"""Small reliable top-ups: grid purchases / physical batteries (§2.3).

The paper's observation: traditional firm energy is unattractive at
scale, but a *small* amount — "just enough to cope with minor
variability" — is highly leveraged.  Filling the worst generation gaps
of the NO+UK+PT combination with 4,000 MWh of purchased energy
stabilizes 8,000 MWh of previously-variable energy, netting 12,000 MWh
of additional stable energy: a 3x leverage on the purchase.

The mechanism: stable energy over a window is its minimum power times
its length, so raising the window's floor by filling the dips below a
level L converts *all* energy between the old floor and L to stable —
not just the purchased fill.  Dips that are brief (few steps below L)
are the cheapest to fill per unit of stable energy gained, so the
allocator fills windows in order of that efficiency (a waterfilling
scheme driven by one global efficiency threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace


@dataclass(frozen=True)
class GridPurchase:
    """A firm-energy budget available to top up generation.

    Attributes:
        budget_mwh: Total energy purchasable over the analysis span.
        window_days: Stable-energy window length (must match the
            variability analysis it complements).
    """

    budget_mwh: float
    window_days: float = 3.0

    def __post_init__(self) -> None:
        if self.budget_mwh < 0:
            raise ConfigurationError(
                f"budget must be >= 0: {self.budget_mwh}"
            )
        if self.window_days <= 0:
            raise ConfigurationError(
                f"window must be positive: {self.window_days}"
            )


@dataclass(frozen=True)
class PurchaseOutcome:
    """Result of spending a purchase budget on gap filling.

    Attributes:
        purchased_mwh: Energy actually bought (<= budget).
        new_stable_mwh: Total *additional* stable energy gained.
        stabilized_variable_mwh: Previously-variable generation that the
            higher floor converted to stable (gain minus purchase).
        floors_mw: The raised floor per window, MW.
    """

    purchased_mwh: float
    new_stable_mwh: float
    stabilized_variable_mwh: float
    floors_mw: tuple[float, ...]

    @property
    def leverage(self) -> float:
        """Stable energy gained per MWh purchased (paper: ~3x)."""
        if self.purchased_mwh <= 0:
            return 0.0
        return self.new_stable_mwh / self.purchased_mwh


def _window_chunks(trace: PowerTrace, window_days: float) -> list[np.ndarray]:
    per_day = trace.grid.steps_per_day()
    window_steps = max(1, int(round(window_days * per_day)))
    power = trace.power_mw()
    return [
        power[start : start + window_steps]
        for start in range(0, len(power), window_steps)
    ]


def _purchase_for_fraction(
    chunks: list[np.ndarray], fraction: float, step_hours: float
) -> tuple[float, float, list[float]]:
    """Cost, gain, and floors when every window raises its floor to its
    ``fraction`` quantile of power values."""
    cost = 0.0
    gain = 0.0
    floors: list[float] = []
    for chunk in chunks:
        floor = float(np.quantile(chunk, fraction))
        old = float(np.min(chunk))
        deficit = np.clip(floor - chunk, 0.0, None)
        cost += float(np.sum(deficit)) * step_hours
        gain += (floor - old) * len(chunk) * step_hours
        floors.append(floor)
    return cost, gain, floors


def stabilize_with_purchase(
    trace: PowerTrace, purchase: GridPurchase, tolerance: float = 1e-6
) -> PurchaseOutcome:
    """Spend a purchase budget filling the cheapest generation gaps.

    Every window raises its floor to a common power *quantile* — brief
    dips (low quantile mass) are filled before deep sustained troughs —
    and the quantile is binary-searched so total purchased energy meets
    the budget.  Raising floors by quantile equalizes the marginal
    cost-per-stable-MWh across windows, which is the optimality
    condition of the underlying waterfilling problem.

    Args:
        trace: Aggregate generation (typically a multi-VB combination).
        purchase: Budget and window configuration.
        tolerance: Relative binary-search stopping tolerance.

    Returns:
        The achieved purchase, stable-energy gain, and per-window floors.
    """
    chunks = _window_chunks(trace, purchase.window_days)
    step_hours = trace.grid.step_hours
    if purchase.budget_mwh == 0 or not chunks:
        floors = tuple(float(np.min(c)) for c in chunks)
        return PurchaseOutcome(0.0, 0.0, 0.0, floors)

    # Does the budget flatten everything?
    cost_full, gain_full, floors_full = _purchase_for_fraction(
        chunks, 1.0, step_hours
    )
    if cost_full <= purchase.budget_mwh:
        return PurchaseOutcome(
            cost_full,
            gain_full,
            gain_full - cost_full,
            tuple(floors_full),
        )

    low, high = 0.0, 1.0
    for _ in range(60):
        mid = (low + high) / 2.0
        cost, _, _ = _purchase_for_fraction(chunks, mid, step_hours)
        if cost > purchase.budget_mwh:
            high = mid
        else:
            low = mid
        if high - low < tolerance:
            break
    cost, gain, floors = _purchase_for_fraction(chunks, low, step_hours)
    return PurchaseOutcome(cost, gain, gain - cost, tuple(floors))
