"""Multi-VB analysis: site groups, latency graphs, and variability.

Implements §2.3 (aggregating complementary sites to mask variability,
stable/variable energy accounting, small grid purchases) and the site
graph the §3.1 co-scheduler searches (latency-thresholded edges,
k-clique enumeration ranked by combined coefficient of variation).
"""

from .site import VBSite, build_vb_sites
from .latency import latency_ms, latency_matrix_ms, DEFAULT_LATENCY_THRESHOLD_MS
from .graph import SiteGraph, CliqueCandidate
from .variability import (
    AggregationReport,
    combination_report,
    cov_improvement,
    pairwise_cov_improvements,
    stable_energy_split,
    windowed_stable_energy,
)
from .battery import GridPurchase, PurchaseOutcome, stabilize_with_purchase
from .physical_battery import (
    BatterySimulation,
    BatterySpec,
    battery_capacity_for_stable_parity,
    smooth_with_battery,
)
from .economics import CarbonModel, CostBreakdown, EconomicModel
from .market import MarketModel, RevenueComparison, compare_revenue

__all__ = [
    "VBSite",
    "build_vb_sites",
    "latency_ms",
    "latency_matrix_ms",
    "DEFAULT_LATENCY_THRESHOLD_MS",
    "SiteGraph",
    "CliqueCandidate",
    "AggregationReport",
    "combination_report",
    "cov_improvement",
    "pairwise_cov_improvements",
    "stable_energy_split",
    "windowed_stable_energy",
    "GridPurchase",
    "PurchaseOutcome",
    "stabilize_with_purchase",
    "BatterySimulation",
    "BatterySpec",
    "battery_capacity_for_stable_parity",
    "smooth_with_battery",
    "EconomicModel",
    "CostBreakdown",
    "CarbonModel",
    "MarketModel",
    "RevenueComparison",
    "compare_revenue",
]
