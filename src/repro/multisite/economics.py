"""§2.1's economic argument as a small quantitative model.

The paper's numbers: power is ~20% of datacenter operating cost, and
~50% of the power expense is transmission & distribution — so
co-locating compute with generation saves ~10% (= 20% x 50%) of total
operating cost.  On top of that, VB sites can monetize energy that the
grid would otherwise curtail (up to ~6% of renewable generation and
rising) or sell at depressed/negative prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..traces import PowerTrace


@dataclass(frozen=True)
class CostBreakdown:
    """Annual operating cost split for one deployment option.

    Attributes:
        total_cost: Total annual operating cost (currency units).
        power_cost: Share of ``total_cost`` spent on power.
        transmission_cost: Share of ``power_cost`` spent on T&D.
        curtailment_value: Value recovered from otherwise-curtailed
            energy (zero for grid-fed deployments).
    """

    total_cost: float
    power_cost: float
    transmission_cost: float
    curtailment_value: float = 0.0

    @property
    def effective_cost(self) -> float:
        """Cost after netting out curtailment recovery."""
        return self.total_cost - self.curtailment_value


@dataclass(frozen=True)
class EconomicModel:
    """The paper's §2.1 cost parameters.

    Attributes:
        power_cost_fraction: Power's share of operating cost (0.20).
        transmission_fraction: T&D's share of the power bill (0.50).
        curtailment_rate: Fraction of renewable generation the grid
            would curtail (paper cites up to 0.06 and growing).
        energy_price_per_mwh: Value of a delivered MWh.
    """

    power_cost_fraction: float = 0.20
    transmission_fraction: float = 0.50
    curtailment_rate: float = 0.06
    energy_price_per_mwh: float = 40.0

    def __post_init__(self) -> None:
        for name in (
            "power_cost_fraction",
            "transmission_fraction",
            "curtailment_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1]: {value}")
        if self.energy_price_per_mwh < 0:
            raise ConfigurationError(
                f"price must be >= 0: {self.energy_price_per_mwh}"
            )

    def grid_fed(self, annual_operating_cost: float) -> CostBreakdown:
        """Cost breakdown of a conventional grid-fed datacenter."""
        if annual_operating_cost < 0:
            raise ConfigurationError(
                f"cost must be >= 0: {annual_operating_cost}"
            )
        power = annual_operating_cost * self.power_cost_fraction
        return CostBreakdown(
            annual_operating_cost,
            power,
            power * self.transmission_fraction,
        )

    def virtual_battery(
        self,
        annual_operating_cost: float,
        generation: PowerTrace | None = None,
    ) -> CostBreakdown:
        """Cost breakdown of a co-located VB deployment.

        The transmission share of the power bill disappears; if a
        generation trace is supplied, the curtailment fraction of its
        energy is credited at the configured price.
        """
        grid = self.grid_fed(annual_operating_cost)
        saved = grid.transmission_cost
        curtailment_value = 0.0
        if generation is not None:
            curtailment_value = (
                generation.energy_mwh()
                * self.curtailment_rate
                * self.energy_price_per_mwh
            )
        return CostBreakdown(
            annual_operating_cost - saved,
            grid.power_cost - saved,
            0.0,
            curtailment_value,
        )

    def savings_fraction(self) -> float:
        """Headline §2.1 figure: fraction of total cost saved (~10%)."""
        return self.power_cost_fraction * self.transmission_fraction


@dataclass(frozen=True)
class CarbonModel:
    """Carbon accounting behind §1's motivation.

    Cloud computing's emissions "surpass the aviation industry"; the
    cloud providers' pledges are about the *grid mix* powering their
    datacenters.  A VB site consumes its renewable generation directly
    (lifecycle emissions only) and skips transmission losses, while a
    grid-fed site pays the grid's average intensity plus the extra
    generation burnt in transit.

    Attributes:
        grid_intensity_kg_per_mwh: Average grid carbon intensity
            (EU mix ~300-400 kgCO2/MWh).
        renewable_intensity_kg_per_mwh: Lifecycle intensity of wind/
            solar (~10-40 kgCO2/MWh).
        transmission_loss_fraction: Share of generated energy lost in
            T&D before reaching a grid-fed datacenter.
    """

    grid_intensity_kg_per_mwh: float = 380.0
    renewable_intensity_kg_per_mwh: float = 15.0
    transmission_loss_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.grid_intensity_kg_per_mwh < 0:
            raise ConfigurationError(
                "grid intensity must be >= 0:"
                f" {self.grid_intensity_kg_per_mwh}"
            )
        if self.renewable_intensity_kg_per_mwh < 0:
            raise ConfigurationError(
                "renewable intensity must be >= 0:"
                f" {self.renewable_intensity_kg_per_mwh}"
            )
        if not 0.0 <= self.transmission_loss_fraction < 1.0:
            raise ConfigurationError(
                "transmission loss must be in [0,1):"
                f" {self.transmission_loss_fraction}"
            )

    def grid_fed_emissions_kg(self, consumed_mwh: float) -> float:
        """Emissions of serving ``consumed_mwh`` from the grid.

        Losses mean more than ``consumed_mwh`` must be generated.
        """
        if consumed_mwh < 0:
            raise ConfigurationError(
                f"consumption must be >= 0: {consumed_mwh}"
            )
        generated = consumed_mwh / (1.0 - self.transmission_loss_fraction)
        return generated * self.grid_intensity_kg_per_mwh

    def vb_emissions_kg(self, consumed_mwh: float) -> float:
        """Emissions of serving ``consumed_mwh`` at a co-located VB."""
        if consumed_mwh < 0:
            raise ConfigurationError(
                f"consumption must be >= 0: {consumed_mwh}"
            )
        return consumed_mwh * self.renewable_intensity_kg_per_mwh

    def savings_kg(self, consumed_mwh: float) -> float:
        """Emissions avoided by VB vs a grid-fed deployment."""
        return self.grid_fed_emissions_kg(
            consumed_mwh
        ) - self.vb_emissions_kg(consumed_mwh)

    def savings_fraction(self) -> float:
        """Relative emissions reduction of VB vs grid-fed."""
        grid = self.grid_fed_emissions_kg(1.0)
        if grid <= 0:
            return 0.0
        return 1.0 - self.vb_emissions_kg(1.0) / grid
