"""§2.3 variability analysis: aggregation, cov, and stable energy.

The paper's Figure 3 machinery:

- *cov improvement* from combining sites (Fig 3a: adding UK wind to NO
  solar cuts cov 3.7x; adding PT wind a further 2.3x).
- *stable vs variable energy* split (Fig 3b): over a window, stable
  energy is the window's minimum power times its duration — guaranteed
  available, usable by stable VMs; everything above the floor is
  variable and only suits degradable VMs.
- the pairwise study: >52% of 2-site combinations improve cov by >50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace
from ..traces.base import aggregate_traces


@dataclass(frozen=True)
class AggregationReport:
    """Variability summary of one site combination.

    Attributes:
        names: Member site names.
        cov: Coefficient of variation of the aggregate.
        total_energy_mwh: Total energy over the analysis span.
        stable_energy_mwh: Energy below the per-window minimum floors.
        variable_energy_mwh: Energy above the floors.
    """

    names: tuple[str, ...]
    cov: float
    total_energy_mwh: float
    stable_energy_mwh: float
    variable_energy_mwh: float

    @property
    def stable_fraction(self) -> float:
        """Stable share of total energy (Fig 3b's percentage labels)."""
        if self.total_energy_mwh <= 0:
            return 0.0
        return self.stable_energy_mwh / self.total_energy_mwh


def windowed_stable_energy(
    trace: PowerTrace, window_days: float = 3.0
) -> tuple[float, float]:
    """Split a trace's energy into (stable, variable) MWh.

    The trace is cut into consecutive windows of ``window_days``; within
    each, stable energy is ``min power x window length`` (§2.3's
    definition) and the remainder is variable.  A trailing partial
    window is handled the same way.
    """
    if window_days <= 0:
        raise ConfigurationError(
            f"window must be positive: {window_days}"
        )
    per_day = trace.grid.steps_per_day()
    window_steps = max(1, int(round(window_days * per_day)))
    power = trace.power_mw()
    step_hours = trace.grid.step_hours
    stable = 0.0
    for start in range(0, len(power), window_steps):
        chunk = power[start : start + window_steps]
        stable += float(np.min(chunk)) * len(chunk) * step_hours
    total = float(np.sum(power)) * step_hours
    return stable, total - stable


def stable_energy_split(
    traces: Mapping[str, PowerTrace],
    names: Sequence[str],
    window_days: float = 3.0,
) -> AggregationReport:
    """Stable/variable report for one combination of sites."""
    if not names:
        raise ConfigurationError("empty site combination")
    members = [traces[name] for name in names]
    aggregate = (
        members[0]
        if len(members) == 1
        else aggregate_traces(members, name="+".join(names))
    )
    stable, variable = windowed_stable_energy(aggregate, window_days)
    return AggregationReport(
        tuple(names),
        aggregate.cov(),
        stable + variable,
        stable,
        variable,
    )


def combination_report(
    traces: Mapping[str, PowerTrace],
    names: Sequence[str],
    window_days: float = 3.0,
) -> list[AggregationReport]:
    """Reports for every non-empty subset of ``names`` (Fig 3b's bars).

    For the paper's trio this yields the seven combinations NO, UK, PT,
    NO+UK, NO+PT, UK+PT, NO+UK+PT.
    """
    reports: list[AggregationReport] = []
    for size in range(1, len(names) + 1):
        for combo in combinations(names, size):
            reports.append(
                stable_energy_split(traces, combo, window_days)
            )
    return reports


def cov_improvement(
    traces: Mapping[str, PowerTrace], base: Sequence[str], added: str
) -> float:
    """Factor by which adding ``added`` to ``base`` reduces cov.

    Returns ``cov(base) / cov(base + added)``; values > 1 mean the
    addition steadies the aggregate (the paper reports 3.7x for
    NO+UK over NO alone).
    """
    before = stable_energy_split(traces, base).cov
    after = stable_energy_split(traces, list(base) + [added]).cov
    if after <= 0:
        return float("inf")
    return before / after


def pairwise_cov_improvements(
    traces: Mapping[str, PowerTrace],
    baseline: str = "worse",
) -> dict[tuple[str, str], float]:
    """Per-pair cov improvement factor from combining two sites.

    For each pair (a, b), the improvement is ``base_cov / cov(a + b)``,
    where ``base_cov`` depends on ``baseline``:

    - ``"worse"`` (default): the *less steady* member's cov — the
      paper's framing, which measures how much the pairing helps the
      site that needs help (Fig 3a compares against NO-solar, the
      high-cov member).  The paper's claim: >52% of 2-site combinations
      improve cov by >50%, i.e. factor >= 2 on this measure.
    - ``"steadier"``: the steadier member's cov — a stricter measure of
      whether pairing beats just using the better site.

    Only pairs on a common grid are meaningful; all traces here share
    one grid by construction.
    """
    if baseline not in ("worse", "steadier"):
        raise ConfigurationError(
            f"baseline must be 'worse' or 'steadier': {baseline!r}"
        )
    pick = max if baseline == "worse" else min
    names = sorted(traces)
    improvements: dict[tuple[str, str], float] = {}
    for a, b in combinations(names, 2):
        cov_a = traces[a].cov()
        cov_b = traces[b].cov()
        combined = aggregate_traces(
            [traces[a], traces[b]], name=f"{a}+{b}"
        ).cov()
        if combined <= 0:
            improvements[(a, b)] = float("inf")
        else:
            improvements[(a, b)] = pick(cov_a, cov_b) / combined
    return improvements
