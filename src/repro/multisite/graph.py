"""The VB site graph and k-clique subgraph identification (§3.1 step 1).

Nodes are VB sites; an edge connects two sites whose estimated RTT is
below the latency threshold (50 ms in the paper).  Candidate subgraphs
for an application are the k-cliques of this graph — site groups where
*every* pair is close — ranked by the coefficient of variation of their
aggregate generation, so the scheduler considers the most complementary
low-latency groups first.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

import networkx as nx

from ..errors import ConfigurationError
from ..traces import PowerTrace
from ..traces.base import aggregate_traces
from ..traces.sites import SiteCatalog
from .latency import DEFAULT_LATENCY_THRESHOLD_MS, latency_matrix_ms


@dataclass(frozen=True)
class CliqueCandidate:
    """One candidate site group for placement.

    Attributes:
        names: Member site names, sorted.
        cov: Coefficient of variation of the group's aggregate trace
            (lower = steadier = better).
        max_latency_ms: Largest pairwise RTT inside the group.
    """

    names: tuple[str, ...]
    cov: float
    max_latency_ms: float

    @property
    def k(self) -> int:
        """Group size."""
        return len(self.names)


class SiteGraph:
    """Latency-thresholded site graph with clique search.

    Args:
        catalog: The sites.
        traces: Per-site generation traces (for cov ranking).
        latency_threshold_ms: Edge threshold (paper: 50 ms).
    """

    def __init__(
        self,
        catalog: SiteCatalog,
        traces: Mapping[str, PowerTrace],
        latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    ):
        if latency_threshold_ms <= 0:
            raise ConfigurationError(
                f"latency threshold must be positive: {latency_threshold_ms}"
            )
        missing = [s.name for s in catalog if s.name not in traces]
        if missing:
            raise ConfigurationError(f"sites without traces: {missing}")
        self.catalog = catalog
        self.traces = dict(traces)
        self.latency_threshold_ms = latency_threshold_ms
        self._latency = latency_matrix_ms(catalog)
        self._index = {name: i for i, name in enumerate(catalog.names)}
        self.graph = nx.Graph()
        self.graph.add_nodes_from(catalog.names)
        names = catalog.names
        for i, j in combinations(range(len(names)), 2):
            if self._latency[i, j] <= latency_threshold_ms:
                self.graph.add_edge(
                    names[i], names[j], latency_ms=self._latency[i, j]
                )

    def latency_between(self, a: str, b: str) -> float:
        """RTT between two named sites, milliseconds."""
        return float(self._latency[self._index[a], self._index[b]])

    def neighbors(self, name: str) -> list[str]:
        """Sites within the latency threshold of ``name``."""
        return sorted(self.graph.neighbors(name))

    def aggregate_trace(self, names: Sequence[str]) -> PowerTrace:
        """Combined generation trace of a site group."""
        if not names:
            raise ConfigurationError("cannot aggregate an empty group")
        return aggregate_traces(
            [self.traces[name] for name in names],
            name="+".join(sorted(names)),
        )

    def group_cov(self, names: Sequence[str]) -> float:
        """Coefficient of variation of a group's aggregate generation."""
        return self.aggregate_trace(names).cov()

    def group_max_latency(self, names: Sequence[str]) -> float:
        """Largest pairwise RTT within a group, milliseconds."""
        if len(names) < 2:
            return 0.0
        return max(
            self.latency_between(a, b) for a, b in combinations(names, 2)
        )

    def k_cliques(self, k: int) -> list[tuple[str, ...]]:
        """All k-cliques of the graph (sorted name tuples).

        The paper uses k = 2..5.  Enumeration is exact; the graphs here
        are small (tens of sites), so the well-known exponential worst
        case is not a concern.  ``k = 1`` returns every node.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1: {k}")
        if k == 1:
            return [(name,) for name in self.catalog.names]
        cliques: set[tuple[str, ...]] = set()
        for clique in nx.enumerate_all_cliques(self.graph):
            if len(clique) > k:
                break  # enumerate_all_cliques yields by size, ascending
            if len(clique) == k:
                cliques.add(tuple(sorted(clique)))
        return sorted(cliques)

    def candidates(
        self, k: int, limit: int | None = None
    ) -> list[CliqueCandidate]:
        """K-cliques ranked by aggregate cov, steadiest first (§3.1).

        Args:
            k: Clique size.
            limit: Keep only the best ``limit`` candidates (the paper
                prunes here because clique counts grow quickly).
        """
        scored = [
            CliqueCandidate(
                names,
                self.group_cov(names),
                self.group_max_latency(names),
            )
            for names in self.k_cliques(k)
        ]
        scored.sort(key=lambda c: (c.cov, c.names))
        if limit is not None:
            if limit < 0:
                raise ConfigurationError(f"limit must be >= 0: {limit}")
            scored = scored[:limit]
        return scored

    def candidates_up_to(
        self, max_k: int, per_k_limit: int | None = None
    ) -> list[CliqueCandidate]:
        """Ranked candidates for every k in 2..max_k, concatenated."""
        if max_k < 2:
            raise ConfigurationError(f"max_k must be >= 2: {max_k}")
        result: list[CliqueCandidate] = []
        for k in range(2, max_k + 1):
            result.extend(self.candidates(k, per_k_limit))
        return result
