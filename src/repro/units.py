"""Time grids and unit conversions shared across the library.

The paper's traces are uniform time series (ELIA: 15-minute resolution,
EMHIRES: hourly).  :class:`TimeGrid` pins down the convention once: a
grid is ``n`` samples starting at ``start`` (a timezone-naive
``datetime``), spaced ``step`` apart.  Sample ``i`` covers the half-open
interval ``[start + i*step, start + (i+1)*step)``.

Unit helpers convert between the paper's reporting units (MW, MWh, GB,
Gbps) and the internal ones (watts, joules, bytes) so that magic
constants appear in exactly one module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Iterator

import numpy as np

from .errors import TimeGridError

#: Seconds per hour, used in energy integration.
SECONDS_PER_HOUR = 3600.0

#: Bytes in a gigabyte as the paper reports transfers (decimal GB).
BYTES_PER_GB = 1e9

#: Bytes in a gibibyte (used for VM memory sizes, which are powers of two).
BYTES_PER_GIB = float(2**30)


def mw_to_watts(mw: float) -> float:
    """Convert megawatts to watts."""
    return mw * 1e6


def watts_to_mw(watts: float) -> float:
    """Convert watts to megawatts."""
    return watts / 1e6


def mwh_to_joules(mwh: float) -> float:
    """Convert megawatt-hours to joules."""
    return mwh * 1e6 * SECONDS_PER_HOUR


def joules_to_mwh(joules: float) -> float:
    """Convert joules to megawatt-hours."""
    return joules / (1e6 * SECONDS_PER_HOUR)


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (the paper's transfer unit)."""
    return n_bytes / BYTES_PER_GB


def gb_to_bytes(gb: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gb * BYTES_PER_GB


def gib_to_bytes(gib: float) -> float:
    """Convert gibibytes (binary GB, VM memory unit) to bytes."""
    return gib * BYTES_PER_GIB


def gbps_to_bytes_per_second(gbps: float) -> float:
    """Convert gigabits/second (link capacity unit) to bytes/second."""
    return gbps * 1e9 / 8.0


def transfer_seconds(n_bytes: float, link_gbps: float) -> float:
    """Time to move ``n_bytes`` over a ``link_gbps`` link, in seconds."""
    if link_gbps <= 0:
        raise ValueError(f"link capacity must be positive, got {link_gbps}")
    return n_bytes / gbps_to_bytes_per_second(link_gbps)


@dataclass(frozen=True)
class TimeGrid:
    """A uniform sampling grid: ``n`` samples of width ``step`` from ``start``.

    Attributes:
        start: Timestamp of the first sample's left edge.
        step: Width of each sample interval.
        n: Number of samples.
    """

    start: datetime
    step: timedelta
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise TimeGridError(f"grid length must be >= 0, got {self.n}")
        if self.step <= timedelta(0):
            raise TimeGridError(f"grid step must be positive, got {self.step}")

    @property
    def step_seconds(self) -> float:
        """Sample width in seconds."""
        return self.step.total_seconds()

    @property
    def step_hours(self) -> float:
        """Sample width in hours (energy integration uses MWh = MW * h)."""
        return self.step_seconds / SECONDS_PER_HOUR

    @property
    def end(self) -> datetime:
        """Right edge of the final sample (exclusive)."""
        return self.start + self.n * self.step

    @property
    def duration(self) -> timedelta:
        """Total span covered by the grid."""
        return self.n * self.step

    def time_at(self, index: int) -> datetime:
        """Timestamp of sample ``index``'s left edge.

        Negative indices count from the end, as with sequences.
        """
        if index < 0:
            index += self.n
        if not 0 <= index < self.n:
            raise TimeGridError(f"index {index} out of range for grid of {self.n}")
        return self.start + index * self.step

    def index_at(self, when: datetime) -> int:
        """Index of the sample interval containing ``when``.

        Raises:
            TimeGridError: if ``when`` falls outside ``[start, end)``.
        """
        offset = (when - self.start).total_seconds()
        index = math.floor(offset / self.step_seconds)
        if not 0 <= index < self.n:
            raise TimeGridError(f"{when} outside grid [{self.start}, {self.end})")
        return index

    def times(self) -> Iterator[datetime]:
        """Iterate over all sample timestamps (left edges)."""
        for i in range(self.n):
            yield self.start + i * self.step

    def hours_elapsed(self) -> np.ndarray:
        """Array of hours since ``start`` for each sample's left edge."""
        return np.arange(self.n, dtype=float) * self.step_hours

    def hour_of_day(self) -> np.ndarray:
        """Fractional hour-of-day (0..24) for each sample's left edge."""
        base = self.start.hour + self.start.minute / 60 + self.start.second / 3600
        return (base + self.hours_elapsed()) % 24.0

    def day_of_year(self) -> np.ndarray:
        """Fractional day-of-year (0-based) for each sample's left edge."""
        base = float(self.start.timetuple().tm_yday - 1)
        base += (self.start.hour + self.start.minute / 60) / 24.0
        return (base + self.hours_elapsed() / 24.0) % 365.0

    def subgrid(self, start_index: int, length: int) -> "TimeGrid":
        """A contiguous slice of this grid as a new :class:`TimeGrid`."""
        if start_index < 0 or length < 0 or start_index + length > self.n:
            raise TimeGridError(
                f"subgrid [{start_index}, {start_index + length}) out of"
                f" range for grid of {self.n}"
            )
        return TimeGrid(self.start + start_index * self.step, self.step, length)

    def compatible_with(self, other: "TimeGrid") -> bool:
        """True if both grids have identical start, step, and length."""
        return (
            self.start == other.start
            and self.step == other.step
            and self.n == other.n
        )

    def require_compatible(self, other: "TimeGrid") -> None:
        """Raise :class:`TimeGridError` unless grids match exactly."""
        if not self.compatible_with(other):
            raise TimeGridError(
                f"incompatible grids: ({self.start}, {self.step}, {self.n})"
                f" vs ({other.start}, {other.step}, {other.n})"
            )

    def steps_per_day(self) -> int:
        """Number of whole samples per 24 hours.

        Raises:
            TimeGridError: if a day is not an integer number of steps.
        """
        per_day = timedelta(days=1) / self.step
        rounded = round(per_day)
        if abs(per_day - rounded) > 1e-9:
            raise TimeGridError(f"step {self.step} does not divide one day")
        return int(rounded)


def grid_days(start: datetime, days: float, step_minutes: float = 15.0) -> TimeGrid:
    """Convenience constructor: a grid spanning ``days`` at ``step_minutes``.

    The default 15-minute step matches the ELIA dataset resolution the
    paper uses for its fine-grained analysis.
    """
    step = timedelta(minutes=step_minutes)
    n = int(round(days * 24 * 60 / step_minutes))
    return TimeGrid(start, step, n)
