"""Synthetic cloud workloads.

Stands in for the Azure production VM arrival trace the paper replays
(§3).  The generator reproduces the statistics the experiment actually
consumes: arrival times, VM core/memory sizes (skewed heavily toward
small VMs, as in the public Azure 2019 trace), heavy-tailed lifetimes,
and the stable/degradable class split of §2.3.
"""

from .vmtypes import VMClass, VMType, VMRequest, default_vm_catalog
from .azure import (
    AzureWorkloadConfig,
    arrival_rate_for_utilization,
    generate_vm_requests,
    workload_matched_to_power,
)
from .apps import Application, generate_applications

__all__ = [
    "VMClass",
    "VMType",
    "VMRequest",
    "default_vm_catalog",
    "AzureWorkloadConfig",
    "generate_vm_requests",
    "arrival_rate_for_utilization",
    "workload_matched_to_power",
    "Application",
    "generate_applications",
]
