"""Azure-like synthetic VM arrival trace.

Arrivals are Poisson with a mild diurnal modulation (cloud demand peaks
in working hours), sizes draw from the catalog mix, and lifetimes are
log-normal — the public Azure 2019 trace shows a heavy right tail where
most VMs live minutes-to-hours but a meaningful minority runs for days
and dominates core-hours.  The arrival rate is derived from the target
steady-state utilization via Little's law, so the generated load matches
the paper's "cluster running at 70% utilization" setup by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..units import TimeGrid
from .vmtypes import VMClass, VMRequest, VMType, default_vm_catalog


@dataclass(frozen=True)
class AzureWorkloadConfig:
    """Parameters of the synthetic Azure-like workload.

    Attributes:
        target_utilization: Desired steady-state core utilization of the
            cluster the workload is aimed at (paper: 0.7).
        total_cores: Core capacity of that cluster (paper: ~700 servers
            x 40 cores = 28,000).
        mean_lifetime_hours: Mean VM lifetime (log-normal mean).
        lifetime_sigma: Log-normal shape; ~1.5 gives the heavy tail
            where the longest VMs dominate core-hours.
        stable_fraction: Probability a VM is STABLE rather than
            DEGRADABLE.
        diurnal_amplitude: Relative day/night swing of the arrival rate
            (0 = flat Poisson, 0.3 = 30% swing around the mean).
        catalog: (type, probability) size mix.
    """

    target_utilization: float = 0.70
    total_cores: int = 700 * 40
    mean_lifetime_hours: float = 24.0
    lifetime_sigma: float = 1.5
    stable_fraction: float = 0.5
    diurnal_amplitude: float = 0.25
    catalog: tuple[tuple[VMType, float], ...] = field(
        default_factory=lambda: tuple(default_vm_catalog())
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigurationError(
                f"target utilization must be in (0,1]: {self.target_utilization}"
            )
        if self.total_cores <= 0:
            raise ConfigurationError(
                f"total cores must be positive: {self.total_cores}"
            )
        if self.mean_lifetime_hours <= 0 or self.lifetime_sigma <= 0:
            raise ConfigurationError("invalid lifetime parameters")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ConfigurationError(
                f"stable fraction must be in [0,1]: {self.stable_fraction}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0,1): {self.diurnal_amplitude}"
            )
        total_p = sum(p for _, p in self.catalog)
        if not np.isclose(total_p, 1.0, atol=1e-9):
            raise ConfigurationError(
                f"catalog probabilities sum to {total_p}, expected 1"
            )

    @property
    def mean_cores_per_vm(self) -> float:
        """Expected cores of a freshly drawn VM."""
        return sum(t.cores * p for t, p in self.catalog)


def arrival_rate_for_utilization(
    config: AzureWorkloadConfig, step_hours: float
) -> float:
    """Mean VM arrivals per step that sustain the target utilization.

    Little's law: in steady state, occupied cores equal
    ``rate * mean_lifetime * mean_cores``; solve for rate such that
    occupied cores equal ``target_utilization * total_cores``.
    """
    if step_hours <= 0:
        raise ConfigurationError(f"step_hours must be positive: {step_hours}")
    mean_lifetime_steps = config.mean_lifetime_hours / step_hours
    target_cores = config.target_utilization * config.total_cores
    return target_cores / (mean_lifetime_steps * config.mean_cores_per_vm)


def workload_matched_to_power(
    mean_norm_power: float,
    total_cores: int,
    utilization: float = 0.70,
    **overrides,
) -> AzureWorkloadConfig:
    """Workload whose steady-state demand fits the site's average power.

    A VB site can only run ``mean_norm_power`` of its cores on average;
    a demand stream sized for the full cluster would leave the admission
    queue permanently backlogged (every minor power gain would trigger
    launches, hiding the paper's ">80% of power changes are silent"
    behaviour).  This helper targets ``utilization`` of the *average
    powered* capacity instead, which is how a provider would size the
    tenancy of a renewable-backed site.

    Args:
        mean_norm_power: Average normalized generation of the site.
        total_cores: Cluster core capacity.
        utilization: Utilization target against powered capacity.
        **overrides: Extra :class:`AzureWorkloadConfig` fields.
    """
    if not 0.0 < mean_norm_power <= 1.0:
        raise ConfigurationError(
            f"mean power must be in (0,1]: {mean_norm_power}"
        )
    return AzureWorkloadConfig(
        target_utilization=min(1.0, utilization * mean_norm_power),
        total_cores=total_cores,
        **overrides,
    )


def generate_vm_requests(
    grid: TimeGrid,
    config: AzureWorkloadConfig | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    warm_start: bool = True,
) -> list[VMRequest]:
    """Generate the VM arrival trace for ``grid``.

    Args:
        grid: Simulation time grid.
        config: Workload parameters.
        rng: Random generator; if omitted, built from ``seed``.
        seed: Convenience seed when ``rng`` is not supplied.
        warm_start: If True, also generate the VMs that would already be
            running at step 0 (arrivals from before the window whose
            lifetimes overlap it, approximated as step-0 arrivals with
            residual lifetimes), so utilization starts near target
            instead of ramping from an empty cluster.

    Returns:
        Requests sorted by arrival step, ids dense from 0.
    """
    config = config or AzureWorkloadConfig()
    if rng is None:
        rng = np.random.default_rng(seed)
    step_hours = grid.step_hours
    base_rate = arrival_rate_for_utilization(config, step_hours)
    hour_of_day = grid.hour_of_day()
    # Demand peaks mid-afternoon (hour 15) with the configured amplitude.
    modulation = 1.0 + config.diurnal_amplitude * np.sin(
        2.0 * np.pi * (hour_of_day - 9.0) / 24.0
    )
    rates = base_rate * modulation

    types = [t for t, _ in config.catalog]
    probabilities = np.array([p for _, p in config.catalog])
    # Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
    sigma = config.lifetime_sigma
    mu = np.log(config.mean_lifetime_hours) - sigma**2 / 2.0

    requests: list[VMRequest] = []
    vm_id = 0

    def draw_vm(arrival: int, lifetime_steps: int) -> VMRequest:
        nonlocal vm_id
        vm_type = types[rng.choice(len(types), p=probabilities)]
        vm_class = (
            VMClass.STABLE
            if rng.random() < config.stable_fraction
            else VMClass.DEGRADABLE
        )
        request = VMRequest(vm_id, arrival, lifetime_steps, vm_type, vm_class)
        vm_id += 1
        return request

    if warm_start and grid.n > 0:
        # Steady-state population: the number in system is Poisson with
        # mean rate * E[lifetime] (Little's law).  VMs observed at a
        # random instant have *length-biased* lifetimes; for a
        # log-normal(mu, sigma) the length-biased distribution is
        # log-normal(mu + sigma^2, sigma), and the residual is a uniform
        # fraction of the (biased) total.  Without the bias the
        # long-lived stock that dominates core-hours is underweighted
        # and utilization starts far below target.
        mean_lifetime_steps = config.mean_lifetime_hours / step_hours
        n_initial = rng.poisson(base_rate * mean_lifetime_steps)
        for _ in range(n_initial):
            lifetime_hours = rng.lognormal(mu + sigma**2, sigma)
            lifetime_steps = max(1, int(round(lifetime_hours / step_hours)))
            residual = max(1, int(np.ceil(lifetime_steps * rng.random())))
            requests.append(draw_vm(0, residual))

    for step in range(grid.n):
        for _ in range(rng.poisson(rates[step])):
            lifetime_hours = rng.lognormal(mu, sigma)
            lifetime_steps = max(1, int(round(lifetime_hours / step_hours)))
            requests.append(draw_vm(step, lifetime_steps))

    requests.sort(key=lambda r: (r.arrival_step, r.vm_id))
    return requests
