"""Applications: the co-scheduler's unit of placement.

§3.1 schedules *applications*, each requesting a number of VMs, onto a
group of VB sites.  An application carries its VM count, per-VM size,
class mix, and duration; the scheduler decides which site(s) host it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import TimeGrid
from .vmtypes import VMType, default_vm_catalog


@dataclass(frozen=True)
class Application:
    """A scheduling request: ``vm_count`` identical VMs for a duration.

    Attributes:
        app_id: Unique id.
        arrival_step: Step at which the application must be placed.
        duration_steps: How long its VMs run.
        vm_count: Number of VMs requested.
        vm_type: Size of each VM.
        stable_fraction: Fraction of the VMs that are STABLE (the rest
            are DEGRADABLE and absorb power dips in place).
    """

    app_id: int
    arrival_step: int
    duration_steps: int
    vm_count: int
    vm_type: VMType
    stable_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.arrival_step < 0:
            raise ConfigurationError(
                f"negative arrival step: {self.arrival_step}"
            )
        if self.duration_steps < 1:
            raise ConfigurationError(
                f"duration must be >= 1: {self.duration_steps}"
            )
        if self.vm_count < 1:
            raise ConfigurationError(f"vm_count must be >= 1: {self.vm_count}")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ConfigurationError(
                f"stable fraction must be in [0,1]: {self.stable_fraction}"
            )

    @property
    def total_cores(self) -> int:
        """Cores requested across all the application's VMs."""
        return self.vm_count * self.vm_type.cores

    @property
    def stable_cores(self) -> int:
        """Cores belonging to the STABLE share of the VMs."""
        return round(self.stable_fraction * self.vm_count) * self.vm_type.cores

    @property
    def degradable_cores(self) -> int:
        """Cores belonging to the DEGRADABLE share of the VMs."""
        return self.total_cores - self.stable_cores

    @property
    def total_memory_bytes(self) -> float:
        """Memory footprint across all the application's VMs, bytes."""
        return self.vm_count * self.vm_type.memory_bytes

    @property
    def end_step(self) -> int:
        """First step at which the application is gone."""
        return self.arrival_step + self.duration_steps


def generate_applications(
    grid: TimeGrid,
    count: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    mean_vm_count: float = 24.0,
    mean_duration_days: float = 3.0,
    stable_fraction: float = 0.5,
    arrival_window_fraction: float = 0.5,
) -> list[Application]:
    """Generate a stream of applications for the co-scheduler evaluation.

    Args:
        grid: Simulation time grid.
        count: Number of applications.
        rng: Random generator; if omitted, built from ``seed``.
        seed: Convenience seed when ``rng`` is not supplied.
        mean_vm_count: Mean of the (geometric) VM-count distribution.
        mean_duration_days: Mean application duration; durations are
            exponential, truncated to the grid.
        stable_fraction: STABLE share of each application's VMs.
        arrival_window_fraction: Applications arrive uniformly over the
            first this-fraction of the grid, so every app overlaps a
            meaningful amount of future (the MIP needs lookahead to act
            on).

    Returns:
        Applications sorted by arrival step.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0: {count}")
    if mean_vm_count < 1:
        raise ConfigurationError(
            f"mean_vm_count must be >= 1: {mean_vm_count}"
        )
    if not 0.0 < arrival_window_fraction <= 1.0:
        raise ConfigurationError(
            "arrival_window_fraction must be in (0,1]:"
            f" {arrival_window_fraction}"
        )
    if rng is None:
        rng = np.random.default_rng(seed)
    catalog = default_vm_catalog()
    types = [t for t, _ in catalog]
    probabilities = np.array([p for _, p in catalog])
    per_day = grid.steps_per_day()
    arrival_limit = max(1, int(grid.n * arrival_window_fraction))

    applications: list[Application] = []
    for app_id in range(count):
        arrival = int(rng.integers(0, arrival_limit))
        duration = max(
            1,
            min(
                grid.n - arrival,
                int(round(rng.exponential(mean_duration_days) * per_day)),
            ),
        )
        vm_count = 1 + rng.geometric(1.0 / mean_vm_count)
        vm_type = types[rng.choice(len(types), p=probabilities)]
        applications.append(
            Application(
                app_id, arrival, duration, int(vm_count), vm_type,
                stable_fraction,
            )
        )
    applications.sort(key=lambda a: (a.arrival_step, a.app_id))
    return applications
