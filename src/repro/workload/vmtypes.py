"""VM types, request records, and the default size catalog.

Sizes follow the shape of Azure's public 2019 VM trace: the size mix is
dominated by 1-4 core VMs with a thin tail of large ones, and memory is
a few GiB per core.  The paper's experiment reads exactly three things
off each VM: cores (power/packing), memory (migration bytes — §3 uses
allocated memory as the migration traffic estimate), and the
stable/degradable class (§2.3's two application categories).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import gib_to_bytes


class VMClass(enum.Enum):
    """The paper's two application categories (§2.3).

    STABLE VMs require cloud-like availability: when local power dips
    they must be migrated, never killed.  DEGRADABLE VMs (spot/harvest-
    like) absorb power variability: they are paused or killed in place
    and take "most of the hit" before any stable VM moves.
    """

    STABLE = "stable"
    DEGRADABLE = "degradable"


@dataclass(frozen=True)
class VMType:
    """A VM size: cores and memory.

    Attributes:
        name: SKU-like label, e.g. ``"D4"``.
        cores: Virtual cores.
        memory_gib: Memory in GiB (binary), the unit VM SKUs quote.
    """

    name: str
    cores: int
    memory_gib: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive: {self.cores}")
        if self.memory_gib <= 0:
            raise ConfigurationError(
                f"memory must be positive: {self.memory_gib}"
            )

    @property
    def memory_bytes(self) -> float:
        """Memory in bytes (migration traffic is measured in bytes)."""
        return gib_to_bytes(self.memory_gib)


@dataclass(frozen=True)
class VMRequest:
    """One VM arrival in the workload trace.

    Attributes:
        vm_id: Unique id within the trace.
        arrival_step: Grid step at which the VM arrives.
        lifetime_steps: How many steps the VM runs once started (>= 1).
        vm_type: Size of the VM.
        vm_class: Stable or degradable.
    """

    vm_id: int
    arrival_step: int
    lifetime_steps: int
    vm_type: VMType
    vm_class: VMClass

    def __post_init__(self) -> None:
        if self.arrival_step < 0:
            raise ConfigurationError(
                f"negative arrival step: {self.arrival_step}"
            )
        if self.lifetime_steps < 1:
            raise ConfigurationError(
                f"lifetime must be >= 1 step: {self.lifetime_steps}"
            )

    @property
    def cores(self) -> int:
        """Convenience accessor for the VM's core count."""
        return self.vm_type.cores

    @property
    def memory_bytes(self) -> float:
        """Convenience accessor for the VM's memory footprint in bytes."""
        return self.vm_type.memory_bytes

    @property
    def departure_step(self) -> int:
        """First step at which the VM is gone (arrival + lifetime)."""
        return self.arrival_step + self.lifetime_steps


def default_vm_catalog() -> list[tuple[VMType, float]]:
    """The default (type, probability) size mix.

    Skewed toward small VMs like the public Azure trace: ~70% of VMs
    have <= 2 cores, with a thin tail up to 32 cores.  Memory is 4 GiB
    per core, the common general-purpose ratio.
    """
    return [
        (VMType("B1", 1, 4.0), 0.35),
        (VMType("B2", 2, 8.0), 0.30),
        (VMType("D4", 4, 16.0), 0.18),
        (VMType("D8", 8, 32.0), 0.10),
        (VMType("D16", 16, 64.0), 0.05),
        (VMType("D32", 32, 128.0), 0.02),
    ]
