"""Step 4: VM placement onto servers inside the chosen site.

The paper delegates this to "any state-of-the-art approach" and asks
only that it *consolidate* — pack VMs onto as few servers as possible so
idle servers (and unallocated cores) can be powered down.  This module
provides that consolidation as a standalone function over the cluster
substrate, so the co-scheduler's output can be realized on servers.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster import Server, ServerSpec
from ..cluster.vm import VM
from ..errors import CapacityError
from ..workload import VMRequest


def consolidate_vms_onto_servers(
    requests: Sequence[VMRequest],
    n_servers: int,
    spec: ServerSpec | None = None,
) -> tuple[list[Server], dict[int, int]]:
    """Pack VMs onto servers best-fit-decreasing.

    Classic BFD bin packing: VMs in decreasing core order, each onto
    the fullest server that still fits it.  Returns the servers and a
    vm_id -> server_id map.

    Raises:
        CapacityError: if the VMs cannot all be packed.
    """
    spec = spec or ServerSpec()
    servers = [Server(i, spec) for i in range(n_servers)]
    mapping: dict[int, int] = {}
    for request in sorted(
        requests, key=lambda r: (-r.cores, r.vm_id)
    ):
        vm = VM(request)
        best: Server | None = None
        for server in servers:
            if not server.fits(vm):
                continue
            if best is None or server.free_cores < best.free_cores:
                best = server
        if best is None:
            raise CapacityError(
                f"VM {request.vm_id} ({request.cores} cores) does not fit"
                f" on any of {n_servers} servers"
            )
        best.host(vm)
        mapping[request.vm_id] = best.server_id
    return servers, mapping


def powered_server_count(servers: Sequence[Server]) -> int:
    """Servers that must stay powered (those hosting at least one VM)."""
    return sum(1 for server in servers if not server.is_empty)
