"""The displaced-cores migration-overhead model.

This is the linearization at the heart of both the MIP objective and
the execution engine:

- A site's **stable load** at step t is the stable cores of every
  active app placed there.  Degradable cores pause in place for free,
  so only stable load can be *displaced*:
  ``u(t) = max(0, stable_load(t) - capacity(t))``.
- Displaced cores live elsewhere.  When displacement **rises**, VMs
  migrate out (traffic = rise x bytes/core); when it **falls**, they
  migrate back in (traffic = fall x bytes/core) — matching §3's
  observation that both directions load the WAN.

Total overhead is then ``sum_t |u(t) - u(t-1)| * bytes_per_core``, and
the peak is the largest single-step term — exactly the O1/O2 objectives
of the paper's MIP, in a form that stays linear in the placement
variables.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import SchedulingError
from .problem import Placement, SchedulingProblem


def placement_load_series(
    problem: SchedulingProblem, placement: Placement
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Per-site (stable, total) core load series under a placement.

    Returns:
        Two dicts keyed by site name: stable-core load and total-core
        load, each an array over the problem grid.
    """
    n = problem.grid.n
    stable = {name: np.zeros(n) for name in problem.site_names}
    total = {name: np.zeros(n) for name in problem.site_names}
    for app in problem.apps:
        per_site = placement.assignment.get(app.app_id, {})
        stable_per_vm = app.vm_type.cores * app.stable_fraction
        for name, count in per_site.items():
            if count == 0:
                continue
            window = slice(app.arrival_step, app.end_step)
            stable[name][window] += count * stable_per_vm
            total[name][window] += count * app.vm_type.cores
    return stable, total


def displaced_stable_cores(
    stable_load: np.ndarray, capacity: np.ndarray
) -> np.ndarray:
    """``max(0, stable_load - capacity)`` elementwise.

    Degradable absorption is already accounted for: pausing degradable
    VMs frees exactly their cores, so the residual deficit equals the
    stable load minus capacity (see the derivation in the module
    docstring of :mod:`repro.sched`).
    """
    stable_load = np.asarray(stable_load, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    if stable_load.shape != capacity.shape:
        raise SchedulingError(
            f"shape mismatch: load {stable_load.shape} vs capacity"
            f" {capacity.shape}"
        )
    return np.clip(stable_load - capacity, 0.0, None)


def migration_series_from_displacement(
    displaced: np.ndarray, bytes_per_core: float
) -> tuple[np.ndarray, np.ndarray]:
    """(out_bytes, in_bytes) per step from a displacement series.

    Displacement starts at zero before the horizon: a positive first
    value means VMs had to leave at step 0.
    """
    displaced = np.asarray(displaced, dtype=float)
    if bytes_per_core <= 0:
        raise SchedulingError(
            f"bytes_per_core must be positive: {bytes_per_core}"
        )
    delta = np.diff(displaced, prepend=0.0)
    out_bytes = np.clip(delta, 0.0, None) * bytes_per_core
    in_bytes = np.clip(-delta, 0.0, None) * bytes_per_core
    return out_bytes, in_bytes


def evaluate_placement_overhead(
    problem: SchedulingProblem,
    placement: Placement,
    capacities: Mapping[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Per-site total migration bytes per step for a placement.

    Args:
        problem: The scheduling problem (grid, apps, bytes/core).
        placement: The placement to score.
        capacities: Capacity series to score against; defaults to the
            problem's own (forecast) capacities.  Pass actual-trace
            capacities to score realized overhead.

    Returns:
        Dict of site name -> per-step (out + in) migration bytes.
    """
    if capacities is None:
        capacities = {
            site.name: site.capacity_cores for site in problem.sites
        }
    stable, _ = placement_load_series(problem, placement)
    result: dict[str, np.ndarray] = {}
    for name in problem.site_names:
        displaced = displaced_stable_cores(stable[name], capacities[name])
        out_bytes, in_bytes = migration_series_from_displacement(
            displaced, problem.bytes_per_core
        )
        result[name] = out_bytes + in_bytes
    return result
