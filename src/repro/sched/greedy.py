"""The paper's baseline: greedy most-available-power placement.

"A baseline greedy policy that always assigns VMs to the site with the
most available power."  Each application, in arrival order, goes to the
site with the largest spare capacity *at its arrival step* — no
lookahead, no knowledge of forecasts beyond the present.  If the best
site cannot hold the whole app under the utilization cap, the remainder
spills to the next-best site, and so on (a pure single-site greedy
would simply be infeasible once sites fill).
"""

from __future__ import annotations

import numpy as np

from ..errors import SchedulingError
from .problem import Placement, SchedulingProblem


class GreedyScheduler:
    """Most-available-power-first placement (no lookahead)."""

    def schedule(self, problem: SchedulingProblem) -> Placement:
        """Place every app on the currently-least-loaded-for-power site.

        Raises:
            SchedulingError: if an app cannot fit anywhere even after
                spilling across all sites.
        """
        n = problem.grid.n
        load = {name: np.zeros(n) for name in problem.site_names}
        caps = {
            site.name: problem.utilization_cap * site.total_cores
            for site in problem.sites
        }
        capacity = {
            site.name: site.capacity_cores for site in problem.sites
        }
        assignment: dict[int, dict[str, int]] = {}

        for app in sorted(
            problem.apps, key=lambda a: (a.arrival_step, a.app_id)
        ):
            window = slice(app.arrival_step, app.end_step)
            arrival = app.arrival_step
            remaining = app.vm_count
            per_site: dict[str, int] = {}
            # Sites by available power now: powered capacity minus load.
            ranked = sorted(
                problem.site_names,
                key=lambda name: capacity[name][arrival]
                - load[name][arrival],
                reverse=True,
            )
            for name in ranked:
                if remaining == 0:
                    break
                # Fit limit over the app's whole window under the cap.
                peak_load = float(np.max(load[name][window]))
                spare_cores = caps[name] - peak_load
                fit = int(spare_cores // app.vm_type.cores)
                count = min(remaining, max(fit, 0))
                if count == 0:
                    continue
                per_site[name] = count
                load[name][window] += count * app.vm_type.cores
                remaining -= count
            if remaining:
                raise SchedulingError(
                    f"app {app.app_id} does not fit: {remaining} VMs"
                    " unplaced after spilling across all sites"
                )
            assignment[app.app_id] = per_site
        return Placement(assignment)
