"""Decomposed MIP site selection: windows, relax-and-fix, parallelism.

The monolithic §3.1 MIP (:mod:`repro.sched.mip`) is exact but its
solve time grows superlinearly with ``n_sites * n_steps``; at 500
sites the HiGHS solve dominates assembly by orders of magnitude.  This
module makes MIPScheduler-quality placements tractable at that scale
with three composable strategies, selected by a :class:`DecomposeSpec`
(``MIPScheduler(decompose="window:24,relax-fix,jobs:4")``):

**Rolling-horizon temporal decomposition** (``window:N[,overlap:M]``).
The horizon is cut into commit windows of ``N`` steps (each optionally
*seeing* ``M`` extra lookahead steps); each window places the apps
arriving inside it, with earlier commitments entering as stable/total
background load.  Unlike :class:`~repro.sched.mip.RollingMIPScheduler`
— which this machinery generalizes and subsumes — the displacement
boundary ``u[s, t]`` is carried across seams: window ``k+1``'s C3
traffic row at its first step reads ``d+ - d- - u = -u_prev`` where
``u_prev`` is window ``k``'s final planned displacement.  Because the
optimal displacement plan holds ``u`` at the running max of the
displacement floor (see the :mod:`repro.sched.mip` docstring), carried
boundaries make the sum of per-window charged traffic telescope to
exactly the monolithic objective *of the merged placement*: windowing
never double-charges a seam.  The solved windows are therefore
objective-exact given their placements; the only quality loss is
placement myopia (a window cannot see arrivals beyond its lookahead),
which the golden tests pin to zero on time-separable instances and the
benchmarks bound empirically (< 1% at 500 sites).  A post-solve audit
recomputes the merged placement's closed-form objective and falls back
to the monolithic solve if it exceeds the window-committed bound by
more than ``max_gap`` (a seam-accounting invariant; it catches solver
tolerance drift, not myopia).

**LP-relax-and-fix** (``relax-fix``).  Solve the LP relaxation once
(its objective is a *certified lower bound*), fix every ``y[a, s]``
within ``int_tol`` of an integer, and solve the reduced integer
problem.  If the reduced problem is infeasible or its objective
exceeds the LP bound by more than ``max_gap`` (relative, floored at
:data:`GAP_FLOOR_GB` for near-zero objectives), fall back to the full
MIP.  The reported :attr:`~repro.sched.mip.MIPTimings.gap` is the
certified bound gap of whatever solve produced the answer.

**Parallel window solves** (``jobs:K[,backend:B]``).  When every app's
activity interval avoids the window seams (no app alive at a seam) and
no background/boundary state crosses them, the windows are independent
and solve concurrently on the existing
:class:`~repro.experiments.parallel.ScenarioExecutor` (``thread`` by
default — HiGHS releases the GIL).  Non-separable instances silently
run sequentially, where a single inner scheduler with
``warm_start=True`` chains each window's solve from its predecessor's
solution (inert without ``highspy``).

Every failure path (window infeasible, reduced problem infeasible,
gap exceeded) raises :class:`~repro.errors.SolverError` carrying the
solver status, window index, and problem shape; with ``fallback`` on
(default) the error is absorbed and the full monolithic solve answers
instead, flagged in :attr:`~repro.sched.mip.MIPTimings.fell_back`.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from .. import obs
from ..errors import SolverError
from .overhead import placement_load_series
from .problem import Placement, SchedulingProblem, SiteCapacity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..workload import Application
    from .mip import MIPScheduler, MIPTimings, WindowTiming

#: Objective floor (in GB) for *relative* gap checks: below this, an
#: objective is migration noise and absolute differences up to
#: ``max_gap * GAP_FLOOR_GB`` pass.  Keeps near-zero-objective
#: instances (ample capacity everywhere) from tripping spurious
#: fallbacks on solver tolerance.
GAP_FLOOR_GB = 1.0

_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class DecomposeSpec:
    """Declarative decomposition strategy for :class:`MIPScheduler`.

    Attributes:
        window_steps: Commit-window length for temporal decomposition;
            ``None`` disables windowing (relax-fix only).
        overlap_steps: Extra lookahead steps each window *sees* beyond
            its commit range (commitments stay disjoint).
        relax_fix: Solve each (sub)problem by LP-relax-and-fix instead
            of one integer solve.
        max_gap: Relative objective-gap budget: relax-and-fix falls
            back to the full MIP beyond it, and the windowed audit
            falls back to the monolithic solve beyond it.
        int_tol: |y - round(y)| threshold under which an LP-relaxed
            placement variable is considered integral and fixed.
        jobs: Worker count for parallel window solves (1 = sequential
            with warm-start chaining).
        backend: Executor backend for parallel solves (``"thread"``
            default — HiGHS releases the GIL; also ``"serial"`` /
            ``"process"``).
        fallback: Fall back to the monolithic solve on any
            decomposition failure instead of raising.
    """

    window_steps: int | None = None
    overlap_steps: int = 0
    relax_fix: bool = False
    max_gap: float = 0.01
    int_tol: float = 1e-6
    jobs: int = 1
    backend: str = "thread"
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.window_steps is None and not self.relax_fix:
            raise SolverError(
                "decompose spec needs window:N and/or relax-fix"
            )
        if self.window_steps is not None and self.window_steps <= 0:
            raise SolverError(
                f"window must be positive: {self.window_steps}"
            )
        if self.overlap_steps < 0:
            raise SolverError(
                f"overlap must be >= 0: {self.overlap_steps}"
            )
        if self.max_gap < 0:
            raise SolverError(f"gap must be >= 0: {self.max_gap}")
        if not 0 <= self.int_tol < 0.5:
            raise SolverError(
                f"int-tol must be in [0, 0.5): {self.int_tol}"
            )
        if self.jobs < 1:
            raise SolverError(f"jobs must be >= 1: {self.jobs}")
        if self.backend not in _BACKENDS:
            raise SolverError(
                f"unknown backend {self.backend!r};"
                f" expected one of {_BACKENDS}"
            )

    @classmethod
    def parse(cls, text: str) -> "DecomposeSpec":
        """Parse the CLI/scenario string form.

        Comma-separated tokens: ``window:N``, ``overlap:N``,
        ``relax-fix``, ``gap:F``, ``int-tol:F``, ``jobs:N``,
        ``backend:NAME``, ``no-fallback``.  Example:
        ``"window:24,overlap:6,relax-fix,gap:0.01,jobs:4"``.
        """
        kwargs: dict = {}
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            key, _, value = token.partition(":")
            try:
                if key == "window":
                    kwargs["window_steps"] = int(value)
                elif key == "overlap":
                    kwargs["overlap_steps"] = int(value)
                elif key == "relax-fix" and not value:
                    kwargs["relax_fix"] = True
                elif key == "gap":
                    kwargs["max_gap"] = float(value)
                elif key == "int-tol":
                    kwargs["int_tol"] = float(value)
                elif key == "jobs":
                    kwargs["jobs"] = int(value)
                elif key == "backend":
                    kwargs["backend"] = value
                elif key == "no-fallback" and not value:
                    kwargs["fallback"] = False
                else:
                    raise SolverError(
                        f"unknown decompose token {token!r}"
                        " (expected window:N, overlap:N, relax-fix,"
                        " gap:F, int-tol:F, jobs:N, backend:NAME,"
                        " no-fallback)"
                    )
            except ValueError as exc:
                raise SolverError(
                    f"bad decompose token {token!r}: {exc}"
                ) from exc
        return cls(**kwargs)

    def token(self) -> str:
        """Canonical string form (round-trips through :meth:`parse`)."""
        parts: list[str] = []
        if self.window_steps is not None:
            parts.append(f"window:{self.window_steps}")
            if self.overlap_steps:
                parts.append(f"overlap:{self.overlap_steps}")
        if self.relax_fix:
            parts.append("relax-fix")
        if self.max_gap != 0.01:
            parts.append(f"gap:{self.max_gap:g}")
        if self.int_tol != 1e-6:
            parts.append(f"int-tol:{self.int_tol:g}")
        if self.jobs != 1:
            parts.append(f"jobs:{self.jobs}")
        if self.backend != "thread":
            parts.append(f"backend:{self.backend}")
        if not self.fallback:
            parts.append("no-fallback")
        return ",".join(parts)


# ----------------------------------------------------------------------
# Window planning and sub-problem construction (shared with
# RollingMIPScheduler, which predates and now rides this machinery).


@dataclass(frozen=True)
class WindowPlan:
    """One temporal window: commit range plus lookahead extension."""

    index: int
    start: int
    commit_end: int
    ext_end: int

    @property
    def steps(self) -> int:
        """Steps the window's solve sees."""
        return self.ext_end - self.start

    @property
    def commit_steps(self) -> int:
        """Steps whose arrivals/displacement the window commits."""
        return self.commit_end - self.start


def plan_windows(
    n_steps: int, window_steps: int, overlap_steps: int = 0
) -> tuple[WindowPlan, ...]:
    """Cut ``[0, n_steps)`` into commit windows with optional overlap.

    Commit ranges partition the horizon; each window's solve sees up
    to ``overlap_steps`` beyond its commit range (clipped at the
    horizon).
    """
    if window_steps <= 0:
        raise SolverError(f"window must be positive: {window_steps}")
    if overlap_steps < 0:
        raise SolverError(f"overlap must be >= 0: {overlap_steps}")
    plans = []
    for index, start in enumerate(range(0, n_steps, window_steps)):
        commit_end = min(start + window_steps, n_steps)
        ext_end = min(commit_end + overlap_steps, n_steps)
        plans.append(WindowPlan(index, start, commit_end, ext_end))
    return tuple(plans)


class WindowState:
    """Mutable ledger of placements committed by earlier windows.

    Tracks the merged assignment plus per-site stable/total background
    load over the *full* horizon (committed apps contribute their
    untruncated activity windows, so later windows see load the
    committing window could not).  ``base_cap`` generalizes the
    allocation cap: windows see ``clip(base_cap - total_bg, 0)``.

    When the problem carries a :class:`~repro.sched.problem.GridPricing`,
    the ledger also tracks committed grid spend: ``grid_spent_mwh`` is
    the per-site energy already bought by earlier windows (later
    windows see the budget *minus* it — the seam carry that keeps a
    shared budget exact across windows), and ``grid_import`` merges the
    committed per-step purchase series over the full horizon.
    """

    def __init__(
        self,
        problem: SchedulingProblem,
        allocation_cap: Mapping[str, np.ndarray] | None = None,
        stable_background: Mapping[str, np.ndarray] | None = None,
    ):
        n = problem.grid.n
        self.problem = problem
        self.assignment: dict[int, dict[str, int]] = {}
        self.stable_bg: dict[str, np.ndarray] = {}
        self.total_bg: dict[str, np.ndarray] = {}
        self.base_cap: dict[str, np.ndarray] = {}
        self.grid_spent_mwh: dict[str, float] = {
            site.name: 0.0 for site in problem.sites
        }
        self.grid_import: dict[str, np.ndarray] = {
            site.name: np.zeros(n) for site in problem.sites
        }
        for site in problem.sites:
            if stable_background is not None:
                self.stable_bg[site.name] = np.array(
                    stable_background[site.name], dtype=float
                )
            else:
                self.stable_bg[site.name] = np.zeros(n)
            self.total_bg[site.name] = np.zeros(n)
            if allocation_cap is not None:
                self.base_cap[site.name] = np.asarray(
                    allocation_cap[site.name], dtype=float
                )
            else:
                self.base_cap[site.name] = np.full(
                    n, problem.utilization_cap * site.total_cores
                )

    def commit(
        self, built: "WindowProblem", sub_placement: Placement
    ) -> None:
        """Fold one window's placement into the ledger."""
        for app, sub_app in zip(built.batch, built.shifted):
            per_site = sub_placement.assignment.get(sub_app.app_id, {})
            self.assignment[app.app_id] = dict(per_site)
            for name, count in per_site.items():
                window_full = slice(app.arrival_step, app.end_step)
                self.stable_bg[name][window_full] += (
                    count * app.vm_type.cores * app.stable_fraction
                )
                self.total_bg[name][window_full] += (
                    count * app.vm_type.cores
                )
        if sub_placement.planned_grid_import:
            commit = slice(built.plan.start, built.plan.commit_end)
            for name, series in (
                sub_placement.planned_grid_import.items()
            ):
                committed = np.asarray(series, dtype=float)[
                    : built.plan.commit_steps
                ]
                if committed.size:
                    self.grid_import[name][commit] = committed
                    self.grid_spent_mwh[name] += float(committed.sum())


@dataclass(frozen=True)
class WindowProblem:
    """One window's solvable sub-problem plus its commit bookkeeping."""

    plan: WindowPlan
    problem: SchedulingProblem
    batch: tuple["Application", ...]
    shifted: tuple["Application", ...]
    caps: dict[str, np.ndarray]
    backgrounds: dict[str, np.ndarray]


def build_window_problem(
    problem: SchedulingProblem,
    plan: WindowPlan,
    state: WindowState,
    capacity_provider: Callable[[str, int, int], np.ndarray]
    | None = None,
) -> WindowProblem | None:
    """Build the sub-problem for one window, or ``None`` if no app
    arrives inside its commit range.

    Batched apps are shifted to the window's clock and truncated to
    its visible horizon (the solver only reasons about what it can
    see); committed load enters through ``caps`` / ``backgrounds``.
    """
    batch = [
        app
        for app in problem.apps
        if plan.start <= app.arrival_step < plan.commit_end
    ]
    if not batch:
        return None
    horizon = plan.steps
    shifted = []
    for app in batch:
        duration = min(
            app.duration_steps, plan.ext_end - app.arrival_step
        )
        shifted.append(
            replace(
                app,
                arrival_step=app.arrival_step - plan.start,
                duration_steps=duration,
            )
        )
    window = slice(plan.start, plan.ext_end)
    sub_sites = []
    caps: dict[str, np.ndarray] = {}
    backgrounds: dict[str, np.ndarray] = {}
    for site in problem.sites:
        if capacity_provider is not None:
            capacity = np.asarray(
                capacity_provider(site.name, plan.start, horizon),
                dtype=float,
            )
        else:
            capacity = site.capacity_cores[window]
        capacity = np.clip(capacity, 0, site.total_cores)
        sub_sites.append(
            SiteCapacity(site.name, site.total_cores, capacity)
        )
        caps[site.name] = np.clip(
            state.base_cap[site.name][window]
            - state.total_bg[site.name][window],
            0.0,
            None,
        )
        backgrounds[site.name] = state.stable_bg[site.name][window].copy()
    pricing = None
    if problem.grid_pricing is not None:
        # Window signals plus the budget left after committed spend —
        # the grid-side analogue of the carried displacement boundary.
        gp = problem.grid_pricing
        pricing = gp.slice(plan.start, plan.ext_end).with_budgets(
            {
                name: max(
                    budget - state.grid_spent_mwh.get(name, 0.0), 0.0
                )
                for name, budget in gp.budget_mwh.items()
            }
        )
    sub_problem = SchedulingProblem(
        problem.grid.subgrid(plan.start, horizon),
        tuple(sub_sites),
        tuple(shifted),
        problem.bytes_per_core,
        problem.utilization_cap,
        grid_pricing=pricing,
    )
    return WindowProblem(
        plan, sub_problem, tuple(batch), tuple(shifted), caps,
        backgrounds,
    )


# ----------------------------------------------------------------------
# Closed-form placement objective.


def placement_objective(
    problem: SchedulingProblem,
    placement: Placement,
    stable_background: Mapping[str, np.ndarray] | None = None,
    initial_displacement: Mapping[str, float] | None = None,
    epsilon: float = 1e-6,
    previous_assignment: Mapping[int, Mapping[str, int]] | None = None,
    switch_weight: float = 1.0,
) -> float:
    """O1(+anchor, +switch) objective value of a *fixed* placement.

    Given the placement, the sites decouple and the optimal
    displacement plan is the running max of the displacement floor
    ``clip(stable_load + background - capacity, 0)`` (holding a
    displaced VM costs ``epsilon`` per step; migrating it back costs a
    full ``bytes_per_core`` — see the :mod:`repro.sched.mip`
    docstring), so the objective has the closed form::

        bpc_gb * sum_s [ max(0, max_t floor_s - u0_s)
                         + epsilon * sum_t runmax(floor_s, u0_s) ]

    plus the reassignment term when ``previous_assignment`` is given.
    The O2 peak term is *excluded* — for ``peak_weight > 0`` the
    solver trades O1 against the peak and no placement-only closed
    form exists.

    When the problem carries a :class:`~repro.sched.problem.GridPricing`
    and the placement a grid-import plan, the bought cores raise each
    site's effective capacity (lowering the displacement floor) and
    their ``(price + carbon_weight * carbon)`` cost joins the total —
    the objective of the *fixed* (placement, grid plan) pair.
    """
    stable, _ = placement_load_series(problem, placement)
    bpc_gb = problem.bytes_per_core / 1e9
    total = 0.0
    gp = problem.grid_pricing
    grid_cores: dict[str, np.ndarray] = {}
    if gp is not None and placement.planned_grid_import:
        weight = gp.objective_per_mwh()
        for name, series in placement.planned_grid_import.items():
            mwh = np.asarray(series, dtype=float)
            grid_cores[name] = (
                mwh * gp.cores_per_mw[name] / gp.step_hours
            )
            total += float(mwh @ weight[: len(mwh)])
    for site in problem.sites:
        load = stable[site.name]
        if stable_background is not None:
            load = load + np.asarray(
                stable_background[site.name], dtype=float
            )
        bought = grid_cores.get(site.name)
        if bought is not None:
            load = load - bought
        floor = np.clip(load - site.capacity_cores, 0.0, None)
        u0 = 0.0
        if initial_displacement is not None:
            u0 = float(initial_displacement.get(site.name, 0.0))
        u = np.maximum.accumulate(np.maximum(floor, u0))
        total += ((u[-1] - u0) + epsilon * u.sum()) * bpc_gb
    if previous_assignment is not None:
        for app in problem.apps:
            prev = previous_assignment.get(app.app_id, {})
            move_gb = app.vm_type.memory_bytes / 1e9
            for name, count in placement.assignment.get(
                app.app_id, {}
            ).items():
                moved = max(0, count - int(prev.get(name, 0)))
                total += switch_weight * moved * move_gb
    return total


# ----------------------------------------------------------------------
# Decomposed solve drivers.


def solve_decomposed(
    scheduler: "MIPScheduler",
    problem: SchedulingProblem,
    allocation_cap: Mapping[str, np.ndarray] | None = None,
    stable_background: Mapping[str, np.ndarray] | None = None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None = None,
    switch_weight: float = 1.0,
    initial_displacement: Mapping[str, float] | None = None,
) -> Placement:
    """Entry point from :meth:`MIPScheduler.schedule` when a
    :class:`DecomposeSpec` is set.

    Routes to the windowed or relax-and-fix driver, absorbs any
    :class:`SolverError` into a monolithic fallback when the spec
    allows it, and leaves the aggregate :class:`MIPTimings` (with
    per-window telemetry) on ``scheduler.last_timings``.
    """
    from .mip import MIPTimings

    spec = scheduler.decompose
    with obs.timed_span(
        "mip.schedule",
        n_apps=len(problem.apps),
        n_sites=len(problem.sites),
        n_steps=problem.grid.n,
        decompose=spec.token(),
    ) as span:
        mode = "window" if spec.window_steps is not None else "relax-fix"
        try:
            if spec.window_steps is not None:
                placement, timings = _solve_windowed(
                    scheduler, spec, problem, allocation_cap,
                    stable_background, previous_assignment,
                    switch_weight, initial_displacement,
                )
            else:
                placement, timings = _solve_relax_fix(
                    scheduler, spec, problem, allocation_cap,
                    stable_background, previous_assignment,
                    switch_weight, initial_displacement,
                )
        except SolverError as exc:
            if not spec.fallback:
                raise
            span.set(fallback_reason=str(exc))
            placement = scheduler._schedule_monolithic(
                problem, allocation_cap, stable_background,
                previous_assignment, switch_weight,
                initial_displacement,
            )
            base = scheduler.last_timings
            timings = MIPTimings(
                assembly_s=base.assembly_s,
                solve_s=base.solve_s,
                n_rows=base.n_rows,
                n_cols=base.n_cols,
                nnz=base.nnz,
                warm_start_used=base.warm_start_used,
                objective=base.objective,
                mode=mode,
                fell_back=True,
            )
        scheduler.last_timings = timings
        span.set(
            mode=timings.mode,
            fell_back=timings.fell_back,
            n_windows=len(timings.windows),
        )
        if timings.objective is not None:
            span.set(objective=timings.objective)
        return placement


def _mip_kwargs(scheduler: "MIPScheduler") -> dict:
    """Constructor kwargs for inner per-window schedulers.

    Warm-starting is forced on: sequential windows chain each solve
    from its predecessor's solution (inert without ``highspy``).
    """
    return dict(
        peak_weight=scheduler.peak_weight,
        integer_vms=scheduler.integer_vms,
        time_limit_s=scheduler.time_limit_s,
        mip_rel_gap=scheduler.mip_rel_gap,
        epsilon=scheduler.epsilon,
        warm_start=True,
    )


def _filter_previous(
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
    batch: tuple["Application", ...],
) -> dict[int, dict[str, int]] | None:
    if previous_assignment is None:
        return None
    return {
        app.app_id: dict(previous_assignment.get(app.app_id, {}))
        for app in batch
    }


def _windows_separable(
    problem: SchedulingProblem,
    plans: tuple[WindowPlan, ...],
    stable_background: Mapping[str, np.ndarray] | None,
    initial_displacement: Mapping[str, float] | None,
) -> bool:
    """True when no app activity or carried state crosses any seam.

    This is the precondition for solving windows independently in
    parallel (boundary displacement provably zero at every seam needs
    one more property — no *held* displacement — which zero-crossing
    activity implies only for apps; background load could hold
    displacement across a seam, so any background disables it too).
    """
    if problem.grid_pricing is not None and any(
        np.isfinite(budget)
        for budget in problem.grid_pricing.budget_mwh.values()
    ):
        # A finite shared energy budget couples every window: spend in
        # one reduces what the next may buy.
        return False
    if initial_displacement is not None and any(
        float(v) > 0 for v in initial_displacement.values()
    ):
        return False
    if stable_background is not None and any(
        np.any(np.asarray(series, dtype=float) > 0)
        for series in stable_background.values()
    ):
        return False
    seams = [plan.commit_end for plan in plans[:-1]]
    for seam in seams:
        for app in problem.apps:
            if app.arrival_step < seam and app.end_step >= seam:
                return False
    return True


def _solve_window_task(
    mip_kwargs: dict,
    relax_spec: DecomposeSpec | None,
    sub_problem: SchedulingProblem,
    caps: dict[str, np.ndarray],
    backgrounds: dict[str, np.ndarray],
    previous_sub: dict[int, dict[str, int]] | None,
    switch_weight: float,
    index: int,
    start: int,
    steps: int,
) -> tuple[Placement, "MIPTimings"]:
    """Solve one independent window (module-level: process-picklable)."""
    from .mip import MIPScheduler

    inner = MIPScheduler(**mip_kwargs, decompose=relax_spec)
    with obs.timed_span(
        "mip.window",
        index=index,
        start=start,
        steps=steps,
        n_apps=len(sub_problem.apps),
    ):
        placement = inner.schedule(
            sub_problem,
            allocation_cap=caps,
            stable_background=backgrounds,
            previous_assignment=previous_sub,
            switch_weight=switch_weight,
        )
    return placement, inner.last_timings


def _run_in_context(ctx: contextvars.Context, func, *args):
    """Run ``func`` under a copied context so thread-pool workers see
    the caller's obs sinks and span parent (ContextVars don't cross
    thread boundaries by themselves)."""
    return ctx.run(func, *args)


def _map_windows(spec: DecomposeSpec, payloads: list[tuple]) -> list:
    from ..experiments.parallel import ScenarioExecutor

    executor = ScenarioExecutor(backend=spec.backend, jobs=spec.jobs)
    if executor.resolved_backend == "thread":
        payloads = [
            (contextvars.copy_context(), _solve_window_task) + payload
            for payload in payloads
        ]
        return executor.map(_run_in_context, payloads)
    return executor.map(_solve_window_task, payloads)


def _window_timing(
    plan: WindowPlan, n_batch: int, timings: "MIPTimings"
) -> "WindowTiming":
    from .mip import WindowTiming

    return WindowTiming(
        index=plan.index,
        start=plan.start,
        steps=plan.steps,
        n_apps=n_batch,
        assembly_s=timings.assembly_s,
        solve_s=timings.solve_s,
        n_rows=timings.n_rows,
        n_cols=timings.n_cols,
        nnz=timings.nnz,
        objective=timings.objective,
        gap=timings.gap,
        warm_start_used=timings.warm_start_used,
    )


def _commit_series(
    built: WindowProblem, sub_placement: Placement, name: str
) -> np.ndarray:
    """The committed slice of one window's planned displacement."""
    series = sub_placement.planned_displacement.get(name)
    if series is None:
        series = np.zeros(built.plan.steps)
    return np.asarray(series, dtype=float)[: built.plan.commit_steps]


def _committed_grid_cost(
    problem: SchedulingProblem,
    built: WindowProblem,
    sub_placement: Placement,
) -> float:
    """$-equivalent cost of one window's committed grid purchases."""
    if (
        problem.grid_pricing is None
        or not sub_placement.planned_grid_import
    ):
        return 0.0
    weight = problem.grid_pricing.objective_per_mwh()[
        built.plan.start : built.plan.commit_end
    ]
    cost = 0.0
    for series in sub_placement.planned_grid_import.values():
        committed = np.asarray(series, dtype=float)[
            : built.plan.commit_steps
        ]
        if committed.size:
            cost += float(committed @ weight[: len(committed)])
    return cost


def _solve_windowed(
    scheduler: "MIPScheduler",
    spec: DecomposeSpec,
    problem: SchedulingProblem,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
    switch_weight: float,
    initial_displacement: Mapping[str, float] | None,
) -> tuple[Placement, "MIPTimings"]:
    from .mip import MIPScheduler, MIPTimings

    n = problem.grid.n
    plans = plan_windows(n, spec.window_steps, spec.overlap_steps)
    state = WindowState(problem, allocation_cap, stable_background)
    bpc_gb = problem.bytes_per_core / 1e9
    eps = scheduler.epsilon
    boundary = {
        site.name: (
            float(initial_displacement.get(site.name, 0.0))
            if initial_displacement is not None
            else 0.0
        )
        for site in problem.sites
    }
    outer_boundary = dict(boundary)
    relax_spec = (
        DecomposeSpec(
            relax_fix=True, max_gap=spec.max_gap, int_tol=spec.int_tol
        )
        if spec.relax_fix
        else None
    )
    windows: list[WindowTiming] = []
    # Sum of per-window committed objective contributions (traffic
    # charged on commit slices with carried boundaries + the epsilon
    # anchor) — the bound the merged placement's closed-form objective
    # is audited against.
    expected = 0.0
    planned_parts = {name: np.zeros(n) for name in problem.site_names}

    parallel = (
        spec.jobs > 1
        and len(plans) > 1
        and _windows_separable(
            problem, plans, stable_background, initial_displacement
        )
    )

    if parallel:
        built_all = [
            build_window_problem(problem, plan, state) for plan in plans
        ]
        live = [built for built in built_all if built is not None]
        payloads = [
            (
                _mip_kwargs(scheduler),
                relax_spec,
                built.problem,
                built.caps,
                built.backgrounds,
                _filter_previous(previous_assignment, built.batch),
                switch_weight,
                built.plan.index,
                built.plan.start,
                built.plan.steps,
            )
            for built in live
        ]
        results = _map_windows(spec, payloads)
        for built, (sub_placement, sub_timings) in zip(live, results):
            windows.append(
                _window_timing(built.plan, len(built.batch), sub_timings)
            )
            commit = slice(built.plan.start, built.plan.commit_end)
            for name in problem.site_names:
                series = _commit_series(built, sub_placement, name)
                if series.size:
                    delta = np.diff(series, prepend=0.0)
                    expected += (
                        np.abs(delta).sum() + eps * series.sum()
                    ) * bpc_gb
                    planned_parts[name][commit] = series
            expected += _committed_grid_cost(
                problem, built, sub_placement
            )
            state.commit(built, sub_placement)
    else:
        inner = MIPScheduler(**_mip_kwargs(scheduler), decompose=relax_spec)
        for plan in plans:
            built = build_window_problem(problem, plan, state)
            commit = slice(plan.start, plan.commit_end)
            if built is None:
                # No arrivals: the boundary still evolves (committed
                # background can raise the displacement floor), and the
                # monolithic objective charges those steps too.
                for site in problem.sites:
                    name = site.name
                    floor = np.clip(
                        state.stable_bg[name][commit]
                        - site.capacity_cores[commit],
                        0.0,
                        None,
                    )
                    useg = np.maximum.accumulate(
                        np.maximum(floor, boundary[name])
                    )
                    expected += (
                        (useg[-1] - boundary[name]) + eps * useg.sum()
                    ) * bpc_gb
                    planned_parts[name][commit] = useg
                    boundary[name] = float(useg[-1])
                continue
            with obs.timed_span(
                "mip.window",
                index=plan.index,
                start=plan.start,
                steps=plan.steps,
                n_apps=len(built.batch),
            ):
                try:
                    sub_placement = inner.schedule(
                        built.problem,
                        allocation_cap=built.caps,
                        stable_background=built.backgrounds,
                        previous_assignment=_filter_previous(
                            previous_assignment, built.batch
                        ),
                        switch_weight=switch_weight,
                        initial_displacement=dict(boundary),
                    )
                except SolverError as exc:
                    raise SolverError(
                        f"window solve failed: {exc.message}",
                        status=exc.status,
                        window=plan.index,
                        shape=exc.shape,
                    ) from exc
            windows.append(
                _window_timing(plan, len(built.batch), inner.last_timings)
            )
            for name in problem.site_names:
                series = _commit_series(built, sub_placement, name)
                if series.size:
                    delta = np.diff(series, prepend=boundary[name])
                    expected += (
                        np.abs(delta).sum() + eps * series.sum()
                    ) * bpc_gb
                    planned_parts[name][commit] = series
                    boundary[name] = float(series[-1])
            expected += _committed_grid_cost(
                problem, built, sub_placement
            )
            state.commit(built, sub_placement)

    merged = Placement(
        dict(state.assignment),
        planned_parts,
        preemptive=scheduler.peak_weight > 0,
        planned_grid_import=(
            {
                name: series.copy()
                for name, series in state.grid_import.items()
            }
            if problem.grid_pricing is not None
            else {}
        ),
    )
    merged.validate_complete(problem)

    objective = None
    # The gap audit needs the merged placement to be exactly what the
    # windows charged for: with ``integer_vms=False`` the windows solve
    # LPs whose fractional VM splits are rounded to integers at
    # extraction, so the achieved objective legitimately drifts from
    # the fractional per-window charges (monolithic LP solves round
    # identically) — the invariant only holds for integral solves.
    audit = (
        scheduler.peak_weight == 0
        and previous_assignment is None
        and scheduler.integer_vms
    )
    publish = (
        scheduler.peak_weight == 0 and previous_assignment is None
    )
    if publish:
        objective = placement_objective(
            problem,
            merged,
            stable_background=stable_background,
            initial_displacement=initial_displacement,
            epsilon=eps,
        )
        # The merged plan's closed-form optimum is also the better
        # displacement series to publish (per-window solves carry
        # solver tolerance; the closed form is exact for the merged y).
        stable, _ = placement_load_series(problem, merged)
        for site in problem.sites:
            load = stable[site.name]
            if stable_background is not None:
                load = load + np.asarray(
                    stable_background[site.name], dtype=float
                )
            if problem.grid_pricing is not None:
                gp = problem.grid_pricing
                load = load - (
                    merged.planned_grid_import[site.name]
                    * gp.cores_per_mw[site.name]
                    / gp.step_hours
                )
            floor = np.clip(load - site.capacity_cores, 0.0, None)
            merged.planned_displacement[site.name] = (
                np.maximum.accumulate(
                    np.maximum(floor, outer_boundary[site.name])
                )
            )
        tolerance = spec.max_gap * max(expected, GAP_FLOOR_GB) + 1e-9
        if audit and objective > expected + tolerance:
            raise SolverError(
                f"windowed objective {objective:.6f} GB exceeds the"
                f" window-committed bound {expected:.6f} GB beyond"
                f" gap {spec.max_gap}"
            )

    timings = MIPTimings(
        assembly_s=sum(w.assembly_s for w in windows),
        solve_s=sum(w.solve_s for w in windows),
        n_rows=sum(w.n_rows for w in windows),
        n_cols=sum(w.n_cols for w in windows),
        nnz=sum(w.nnz for w in windows),
        warm_start_used=any(w.warm_start_used for w in windows),
        objective=objective,
        mode="window",
        windows=tuple(windows),
    )
    return merged, timings


def _solve_relax_fix(
    scheduler: "MIPScheduler",
    spec: DecomposeSpec,
    problem: SchedulingProblem,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
    switch_weight: float,
    initial_displacement: Mapping[str, float] | None,
) -> tuple[Placement, "MIPTimings"]:
    from .mip import MIPTimings

    with obs.timed_span("mip.assemble") as assemble_span:
        model = scheduler._build_model(
            problem, allocation_cap, stable_background,
            previous_assignment, switch_weight, initial_displacement,
        )
        assemble_span.set(
            n_rows=model.shape[0],
            n_cols=model.shape[1],
            nnz=model.matrix.nnz,
        )
    layout = model.layout
    fell_back = False
    with obs.timed_span("mip.solve", strategy="relax-fix") as solve_span:
        if not model.integrality.any():
            # Already an LP (integer_vms=False): nothing to fix.
            x, warm_used, status = scheduler._solve_model(model)
            gap = 0.0
            solve_span.set(status=status, gap=gap)
        else:
            lp_x, warm_used, status = scheduler._solve_model(
                model, relax=True
            )
            objective_lp = float(model.c @ lp_x)
            y = lp_x[: layout.o_u]
            rounded = np.round(y)
            near = np.abs(y - rounded) <= spec.int_tol
            lower = model.lower.copy()
            upper = model.upper.copy()
            lower[: layout.o_u][near] = rounded[near]
            upper[: layout.o_u][near] = rounded[near]

            def certified_gap(x: np.ndarray) -> float:
                raw = float(model.c @ x) - objective_lp
                return raw / max(abs(objective_lp), GAP_FLOOR_GB)

            x = None
            try:
                x, warm_used, status = scheduler._solve_model(
                    model, lower=lower, upper=upper
                )
            except SolverError:
                fell_back = True
            if x is not None and certified_gap(x) > spec.max_gap:
                fell_back = True
            if fell_back:
                x, warm_used, status = scheduler._solve_model(model)
            gap = certified_gap(x)
            solve_span.set(
                status=status,
                gap=gap,
                n_fixed=int(near.sum()),
                n_free=int((~near).sum()),
                fell_back=fell_back,
            )
    timings = MIPTimings(
        assembly_s=assemble_span.wall_s,
        solve_s=solve_span.wall_s,
        n_rows=model.shape[0],
        n_cols=model.shape[1],
        nnz=model.matrix.nnz,
        warm_start_used=warm_used,
        objective=float(model.c @ x),
        mode="relax-fix",
        gap=gap,
        fell_back=fell_back,
    )
    return scheduler._extract(problem, layout, x), timings
