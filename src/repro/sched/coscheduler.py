"""The full 4-step co-scheduling pipeline of §3.1.

Ties the pieces together for one batch of applications:

1. **Subgraph identification** — k-cliques of the latency graph ranked
   by aggregate cov (:meth:`repro.multisite.graph.SiteGraph.candidates`).
2. **Subgraph selection** — candidates are scored by predicted stable
   power per core of demand and current load balance; the best few
   proceed.
3. **Site selection** — the MIP places the batch across the chosen
   subgraph's sites, minimizing predicted total (and optionally peak)
   migration traffic.
4. **VM placement** — within each site, VMs consolidate onto servers
   (:func:`repro.sched.placement.consolidate_vms_onto_servers`).

The co-scheduler re-runs as the environment changes (new forecasts,
app completions); each call plans one batch against the current state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import SchedulingError
from ..forecast import Forecaster
from ..multisite.graph import CliqueCandidate, SiteGraph
from ..workload import Application
from .greedy import GreedyScheduler
from .mip import MIPScheduler
from .problem import (
    Placement,
    SchedulingProblem,
    SiteCapacity,
    default_bytes_per_core,
)


@dataclass(frozen=True)
class CoScheduleOutcome:
    """Result of one co-scheduling run.

    Attributes:
        subgraph: The chosen site group.
        placement: VM counts per (app, site) from the MIP.
        problem: The problem instance the MIP solved (forecast
            capacities), kept for evaluation.
    """

    subgraph: CliqueCandidate
    placement: Placement
    problem: SchedulingProblem


class CoScheduler:
    """Plan application batches over a VB site graph.

    Args:
        graph: The latency/variability site graph.
        total_cores: Cluster core capacity per site name.
        forecaster: Power forecaster used to build planning capacity.
        k_range: Clique sizes to consider (paper: 2..5).
        candidates_per_k: How many top-cov cliques to keep per k.
        scheduler: Site-selection solver; defaults to the O1 MIP.
        utilization_cap: Per-site allocation cap in the MIP.
    """

    def __init__(
        self,
        graph: SiteGraph,
        total_cores: Mapping[str, int],
        forecaster: Forecaster,
        k_range: tuple[int, int] = (2, 5),
        candidates_per_k: int = 5,
        scheduler: MIPScheduler | GreedyScheduler | None = None,
        utilization_cap: float = 0.9,
        subgraph_selection: str = "score",
        mip_shortlist: int = 3,
    ):
        if k_range[0] < 2 or k_range[1] < k_range[0]:
            raise SchedulingError(f"bad k range: {k_range}")
        missing = [
            name for name in graph.catalog.names if name not in total_cores
        ]
        if missing:
            raise SchedulingError(f"sites without core counts: {missing}")
        if subgraph_selection not in ("score", "mip"):
            raise SchedulingError(
                "subgraph_selection must be 'score' or 'mip':"
                f" {subgraph_selection!r}"
            )
        if mip_shortlist < 1:
            raise SchedulingError(
                f"mip_shortlist must be >= 1: {mip_shortlist}"
            )
        self.graph = graph
        self.total_cores = dict(total_cores)
        self.forecaster = forecaster
        self.k_range = k_range
        self.candidates_per_k = candidates_per_k
        self.scheduler = scheduler or MIPScheduler()
        self.utilization_cap = utilization_cap
        self.subgraph_selection = subgraph_selection
        self.mip_shortlist = mip_shortlist
        # Load committed by previous batches, per site (cores x steps).
        self._committed: dict[str, np.ndarray] = {}

    # -- step 1 --------------------------------------------------------

    def identify_subgraphs(self) -> list[CliqueCandidate]:
        """Step 1: ranked k-clique candidates for every k in range."""
        candidates: list[CliqueCandidate] = []
        for k in range(self.k_range[0], self.k_range[1] + 1):
            candidates.extend(
                self.graph.candidates(k, self.candidates_per_k)
            )
        if not candidates:
            raise SchedulingError(
                "site graph has no cliques in the requested k range;"
                " loosen the latency threshold"
            )
        return candidates

    # -- step 2 --------------------------------------------------------

    def rank_subgraphs(
        self,
        candidates: Sequence[CliqueCandidate],
        apps: Sequence[Application],
        issue_index: int,
        horizon: int,
    ) -> list[CliqueCandidate]:
        """Step 2 (scoring): order candidates, best first.

        The score prefers groups whose *predicted stable power* (the
        forecast aggregate's windowed minimum) covers the batch's
        stable-core demand, breaking ties toward lightly-loaded groups
        — the paper's "maintain good power levels" and "balance load"
        criteria.
        """
        demand = sum(app.stable_cores for app in apps)
        scored: list[tuple[float, int, CliqueCandidate]] = []
        for order, candidate in enumerate(candidates):
            predicted_floor = 0.0
            committed = 0.0
            for name in candidate.names:
                trace = self.graph.traces[name]
                forecast = self.forecaster.forecast(
                    trace, issue_index, horizon
                )
                cores = self.total_cores[name]
                predicted_floor += float(np.min(forecast.values)) * cores
                if name in self._committed:
                    committed += float(
                        np.mean(self._committed[name])
                    )
            coverage = (predicted_floor - committed) / max(demand, 1)
            score = min(coverage, 2.0) - 0.05 * candidate.cov
            scored.append((-score, order, candidate))
        scored.sort()
        return [candidate for _, _, candidate in scored]

    def select_subgraph(
        self,
        candidates: Sequence[CliqueCandidate],
        apps: Sequence[Application],
        issue_index: int,
        horizon: int,
    ) -> CliqueCandidate:
        """Step 2: pick the best candidate for this batch (by score)."""
        ranked = self.rank_subgraphs(
            candidates, apps, issue_index, horizon
        )
        return ranked[0]

    # -- steps 3 + entry point ------------------------------------------

    def schedule_batch(
        self,
        apps: Sequence[Application],
        issue_index: int = 0,
        horizon: int | None = None,
    ) -> CoScheduleOutcome:
        """Run steps 1-3 for a batch of applications.

        Args:
            apps: Applications (their steps are relative to the
                planning horizon's start).
            issue_index: Trace index at which forecasts are issued.
            horizon: Planning horizon in steps; defaults to the longest
                app end.

        Returns:
            The chosen subgraph, the MIP placement, and the problem.
        """
        if not apps:
            raise SchedulingError("empty application batch")
        if horizon is None:
            horizon = max(app.end_step for app in apps)
        candidates = self.identify_subgraphs()
        ranked = self.rank_subgraphs(candidates, apps, issue_index, horizon)
        if self.subgraph_selection == "score":
            subgraph = ranked[0]
            problem, caps, backgrounds = self._problem_for_subgraph(
                subgraph, apps, issue_index, horizon
            )
            placement = self._solve(problem, caps, backgrounds)
        else:
            # The paper's step-2 semantics: "for each candidate
            # subgraph find the optimal site placement schedule" and
            # keep the best.  Solve the site-selection MIP for a
            # shortlist of score-ranked candidates and take the one
            # with the lowest predicted migration overhead.
            subgraph, placement, problem = self._select_by_mip(
                ranked[: self.mip_shortlist], apps, issue_index, horizon
            )
        self._commit(placement, problem, horizon)
        return CoScheduleOutcome(subgraph, placement, problem)

    def _problem_for_subgraph(
        self,
        subgraph: CliqueCandidate,
        apps: Sequence[Application],
        issue_index: int,
        horizon: int,
    ) -> tuple[SchedulingProblem, dict, dict]:
        """Build the site-selection problem for one candidate group."""
        sites = []
        caps: dict[str, np.ndarray] = {}
        backgrounds: dict[str, np.ndarray] = {}
        for name in subgraph.names:
            trace = self.graph.traces[name]
            forecast = self.forecaster.forecast(trace, issue_index, horizon)
            cores = self.total_cores[name]
            capacity = np.floor(forecast.values * cores)
            sites.append(SiteCapacity(name, cores, capacity))
            committed = self._committed.get(name)
            if committed is None:
                committed = np.zeros(horizon)
            backgrounds[name] = committed[:horizon]
            caps[name] = np.clip(
                self.utilization_cap * cores - committed[:horizon],
                0.0,
                None,
            )
        grid = self.graph.traces[subgraph.names[0]].grid.subgrid(
            issue_index, horizon
        )
        problem = SchedulingProblem(
            grid,
            tuple(sites),
            tuple(apps),
            default_bytes_per_core(apps),
            self.utilization_cap,
        )
        return problem, caps, backgrounds

    def _solve(
        self,
        problem: SchedulingProblem,
        caps: Mapping[str, np.ndarray],
        backgrounds: Mapping[str, np.ndarray],
    ) -> Placement:
        """Run the configured site-selection solver."""
        if isinstance(self.scheduler, MIPScheduler):
            return self.scheduler.schedule(
                problem,
                allocation_cap=caps,
                stable_background=backgrounds,
            )
        return self.scheduler.schedule(problem)

    def _select_by_mip(
        self,
        shortlist: Sequence[CliqueCandidate],
        apps: Sequence[Application],
        issue_index: int,
        horizon: int,
    ) -> tuple[CliqueCandidate, Placement, SchedulingProblem]:
        """Solve the MIP per shortlisted candidate; keep the cheapest."""
        from .overhead import evaluate_placement_overhead

        best: tuple[float, CliqueCandidate, Placement, SchedulingProblem]
        best = None  # type: ignore[assignment]
        last_error: Exception | None = None
        for candidate in shortlist:
            problem, caps, backgrounds = self._problem_for_subgraph(
                candidate, apps, issue_index, horizon
            )
            try:
                placement = self._solve(problem, caps, backgrounds)
            except SchedulingError as exc:
                last_error = exc
                continue
            per_site = evaluate_placement_overhead(problem, placement)
            cost = float(sum(s.sum() for s in per_site.values()))
            if best is None or cost < best[0]:
                best = (cost, candidate, placement, problem)
        if best is None:
            raise SchedulingError(
                "no shortlisted subgraph admitted a feasible placement"
            ) from last_error
        return best[1], best[2], best[3]

    def _commit(
        self,
        placement: Placement,
        problem: SchedulingProblem,
        horizon: int,
    ) -> None:
        """Record the batch's load so later batches see it."""
        for app in problem.apps:
            per_site = placement.assignment.get(app.app_id, {})
            for name, count in per_site.items():
                if name not in self._committed:
                    self._committed[name] = np.zeros(horizon)
                elif len(self._committed[name]) < horizon:
                    grown = np.zeros(horizon)
                    grown[: len(self._committed[name])] = self._committed[
                        name
                    ]
                    self._committed[name] = grown
                window = slice(app.arrival_step, app.end_step)
                self._committed[name][window] += (
                    count * app.vm_type.cores
                )
