"""The power & network aware co-scheduler (§3.1) and its baselines.

The paper breaks scheduling into four steps: (1) subgraph identification
(k-cliques of the latency graph, ranked by aggregate cov — see
:mod:`repro.multisite.graph`), (2) subgraph selection, (3) site
selection, and (4) VM placement.  Steps 2-3 are a mixed-integer program
with two objectives: O1 minimizes total predicted migration bytes, O2
minimizes the peak.

The MIP's core model (:mod:`repro.sched.overhead`): displaced stable
cores at a site are ``max(0, stable_load - capacity)``; migration
traffic is the *change* in displacement times bytes-per-core (rising
displacement migrates VMs out, falling displacement brings them back).
Degradable VMs pause in place and absorb the first ``degradable_load``
cores of any deficit for free — which is why the MIP keeping a good
stable/degradable mix per site reduces traffic.

Schedulers:

- :class:`~repro.sched.greedy.GreedyScheduler` — the paper's baseline:
  each app goes whole to the site with the most available power at its
  arrival.
- :class:`~repro.sched.mip.MIPScheduler` — O1 over the full horizon
  (the paper's *MIP*), optional O2 term (*MIP-peak*).
- :class:`~repro.sched.mip.RollingMIPScheduler` — O1 re-solved daily
  with day-ahead forecasts (*MIP-24h*).
- :class:`~repro.sched.coscheduler.CoScheduler` — the full 4-step
  pipeline over a site graph.
"""

from .problem import (
    GridPricing,
    Placement,
    SchedulingProblem,
    SiteCapacity,
    problem_from_forecasts,
)
from .overhead import (
    displaced_stable_cores,
    migration_series_from_displacement,
    placement_load_series,
    evaluate_placement_overhead,
)
from .greedy import GreedyScheduler
from .mip import (
    MIPScheduler,
    MIPTimings,
    RollingMIPScheduler,
    WindowTiming,
)
from .decompose import (
    DecomposeSpec,
    placement_objective,
    plan_windows,
)
from .coscheduler import CoScheduler, CoScheduleOutcome
from .placement import consolidate_vms_onto_servers

__all__ = [
    "GridPricing",
    "Placement",
    "SchedulingProblem",
    "SiteCapacity",
    "problem_from_forecasts",
    "displaced_stable_cores",
    "migration_series_from_displacement",
    "placement_load_series",
    "evaluate_placement_overhead",
    "GreedyScheduler",
    "MIPScheduler",
    "MIPTimings",
    "WindowTiming",
    "RollingMIPScheduler",
    "DecomposeSpec",
    "placement_objective",
    "plan_windows",
    "CoScheduler",
    "CoScheduleOutcome",
    "consolidate_vms_onto_servers",
]
