"""Scheduling problem and placement containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import SchedulingError
from ..forecast import Forecaster
from ..supply import BatteryDispatch, SupplySpec, SupplyStack
from ..traces import PowerTrace
from ..units import TimeGrid
from ..workload import Application


@dataclass(frozen=True)
class SiteCapacity:
    """One site's compute capacity series as the scheduler sees it.

    Attributes:
        name: Site name.
        total_cores: Physical core capacity of the co-located cluster.
        capacity_cores: Usable powered cores per scheduler step — built
            from a *forecast* when planning, from the actual trace when
            executing.
    """

    name: str
    total_cores: int
    capacity_cores: np.ndarray

    def __post_init__(self) -> None:
        capacity = np.asarray(self.capacity_cores, dtype=float)
        if capacity.ndim != 1:
            raise SchedulingError(
                f"capacity series must be 1-D, got {capacity.shape}"
            )
        if self.total_cores <= 0:
            raise SchedulingError(
                f"total cores must be positive: {self.total_cores}"
            )
        if np.any(capacity < 0) or np.any(capacity > self.total_cores):
            raise SchedulingError(
                f"capacity for {self.name} outside [0, {self.total_cores}]"
            )
        object.__setattr__(self, "capacity_cores", capacity)


@dataclass(frozen=True)
class GridPricing:
    """Per-step grid price/carbon signals the planner can buy against.

    Attaching one to a :class:`SchedulingProblem` adds continuous grid
    import variables ``g[s, t]`` (in cores) to the MIP: each core
    bought relaxes that site's displacement bound at that step, costs
    ``(price[t] + carbon_weight * carbon[t])`` per MWh in the
    objective, and draws down the site's energy budget.  The MIP then
    trades migration traffic against money and emissions — buy a few
    expensive cores through a lull, or migrate the VMs away.

    Money ($) and traffic (GB) share one objective without an explicit
    exchange rate: a dollar competes with a gigabyte one-for-one, and
    callers scale the price series to tune the tradeoff.

    Attributes:
        price_per_mwh: ``(n_steps,)`` spot price in $/MWh.
        carbon_per_mwh: ``(n_steps,)`` carbon intensity in kgCO2/MWh
            (numerically identical to gCO2/kWh).
        step_hours: Step size — converts cores bought to MWh through
            ``cores_per_mw``.
        cores_per_mw: Site name -> cores one MW powers (the cluster's
            ``total_cores / capacity_mw`` density).
        budget_mwh: Site name -> grid energy purchasable over the
            horizon (the supply stack's ``grid_budget_mwh``).
        max_power_mw: Site name -> import power limit; ``None`` entries
            (or a missing site) mean unlimited.
        carbon_weight: $/kgCO2 folding emissions into the objective.
    """

    price_per_mwh: np.ndarray
    carbon_per_mwh: np.ndarray
    step_hours: float
    cores_per_mw: Mapping[str, float]
    budget_mwh: Mapping[str, float]
    max_power_mw: Mapping[str, float | None] = field(default_factory=dict)
    carbon_weight: float = 0.0

    def __post_init__(self) -> None:
        for label, values in (
            ("price", self.price_per_mwh),
            ("carbon", self.carbon_per_mwh),
        ):
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1:
                raise SchedulingError(
                    f"{label} series must be 1-D, got {arr.shape}"
                )
            if not np.all(np.isfinite(arr)):
                raise SchedulingError(f"{label} series must be finite")
        object.__setattr__(
            self, "price_per_mwh",
            np.asarray(self.price_per_mwh, dtype=float),
        )
        object.__setattr__(
            self, "carbon_per_mwh",
            np.asarray(self.carbon_per_mwh, dtype=float),
        )
        if len(self.price_per_mwh) != len(self.carbon_per_mwh):
            raise SchedulingError(
                f"price/carbon lengths differ:"
                f" {len(self.price_per_mwh)} != {len(self.carbon_per_mwh)}"
            )
        if self.step_hours <= 0:
            raise SchedulingError(
                f"step hours must be positive: {self.step_hours}"
            )
        if self.carbon_weight < 0:
            raise SchedulingError(
                f"carbon weight must be >= 0: {self.carbon_weight}"
            )
        for name, density in self.cores_per_mw.items():
            if density <= 0:
                raise SchedulingError(
                    f"cores/MW for {name} must be positive: {density}"
                )
        for name, budget in self.budget_mwh.items():
            if budget < 0:
                raise SchedulingError(
                    f"grid budget for {name} must be >= 0: {budget}"
                )

    @property
    def n_steps(self) -> int:
        return len(self.price_per_mwh)

    def objective_per_mwh(self) -> np.ndarray:
        """``(n_steps,)`` $-equivalent cost of one imported MWh."""
        return self.price_per_mwh + self.carbon_weight * self.carbon_per_mwh

    def site_power_cap_cores(self, name: str) -> float:
        """Upper bound on ``g[s, t]`` in cores (inf when unlimited)."""
        limit = self.max_power_mw.get(name)
        if limit is None:
            return float("inf")
        return float(limit) * float(self.cores_per_mw[name])

    def slice(self, start: int, stop: int) -> "GridPricing":
        """The window ``[start, stop)`` of the signals (same budgets).

        Budget reduction for committed spend is the caller's job
        (:class:`~repro.sched.decompose.WindowState` carries it), since
        the pricing object itself is stateless.
        """
        return GridPricing(
            price_per_mwh=self.price_per_mwh[start:stop],
            carbon_per_mwh=self.carbon_per_mwh[start:stop],
            step_hours=self.step_hours,
            cores_per_mw=dict(self.cores_per_mw),
            budget_mwh=dict(self.budget_mwh),
            max_power_mw=dict(self.max_power_mw),
            carbon_weight=self.carbon_weight,
        )

    def with_budgets(
        self, budget_mwh: Mapping[str, float]
    ) -> "GridPricing":
        """Copy with replaced per-site budgets (window seam carry)."""
        return GridPricing(
            price_per_mwh=self.price_per_mwh,
            carbon_per_mwh=self.carbon_per_mwh,
            step_hours=self.step_hours,
            cores_per_mw=dict(self.cores_per_mw),
            budget_mwh=dict(budget_mwh),
            max_power_mw=dict(self.max_power_mw),
            carbon_weight=self.carbon_weight,
        )

    @classmethod
    def from_supply_spec(
        cls,
        spec: SupplySpec,
        traces: Mapping[str, PowerTrace],
        total_cores: Mapping[str, int],
        carbon_weight: float = 0.0,
    ) -> "GridPricing | None":
        """Pricing matching what :meth:`SupplySpec.components` builds.

        Synthesizes the price/carbon series with
        :meth:`SupplySpec.grid_signals` on the first trace (one shared
        regional market), so the offline MIP prices exactly the MWh the
        online dispatch pays for.  Returns ``None`` for unpriced or
        grid-less specs — the problem then omits the grid variables.
        """
        if not spec.priced or spec.grid_budget_mwh <= 0:
            return None
        first = next(iter(traces.values()))
        price, carbon = spec.grid_signals(first)
        n = first.grid.n
        return cls(
            price_per_mwh=(
                np.zeros(n) if price is None else price.values
            ),
            carbon_per_mwh=(
                np.zeros(n) if carbon is None else carbon.values
            ),
            step_hours=first.grid.step_hours,
            cores_per_mw={
                name: total_cores[name] / trace.capacity_mw
                for name, trace in traces.items()
            },
            budget_mwh={
                name: spec.grid_budget_mwh for name in traces
            },
            max_power_mw={
                name: spec.grid_power_mw for name in traces
            },
            carbon_weight=carbon_weight,
        )


@dataclass(frozen=True)
class SchedulingProblem:
    """Everything a scheduler needs to place a batch of applications.

    Attributes:
        grid: The scheduler's time grid (capacity series length).
        sites: Candidate sites with (forecast) capacity series.
        apps: Applications to place.
        bytes_per_core: Migration traffic per displaced stable core.
            Defaults derived via :func:`default_bytes_per_core`.
        utilization_cap: Maximum allocated fraction of a site's total
            cores (leaves the paper's headroom for local absorption).
        grid_pricing: Optional :class:`GridPricing` adding priced grid
            import variables to the MIP; ``None`` (default) keeps the
            classic traffic-only model bit-for-bit.
    """

    grid: TimeGrid
    sites: tuple[SiteCapacity, ...]
    apps: tuple[Application, ...]
    bytes_per_core: float
    utilization_cap: float = 0.9
    grid_pricing: GridPricing | None = None

    def __post_init__(self) -> None:
        if not self.sites:
            raise SchedulingError("problem needs at least one site")
        if not self.apps:
            raise SchedulingError("problem needs at least one application")
        for site in self.sites:
            if len(site.capacity_cores) != self.grid.n:
                raise SchedulingError(
                    f"site {site.name} capacity length"
                    f" {len(site.capacity_cores)} != grid {self.grid.n}"
                )
        names = [s.name for s in self.sites]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate site names: {names}")
        if self.bytes_per_core <= 0:
            raise SchedulingError(
                f"bytes_per_core must be positive: {self.bytes_per_core}"
            )
        if not 0.0 < self.utilization_cap <= 1.0:
            raise SchedulingError(
                f"utilization cap must be in (0,1]: {self.utilization_cap}"
            )
        for app in self.apps:
            if app.end_step > self.grid.n:
                raise SchedulingError(
                    f"app {app.app_id} runs past the horizon"
                    f" ({app.end_step} > {self.grid.n})"
                )
        if self.grid_pricing is not None:
            if self.grid_pricing.n_steps != self.grid.n:
                raise SchedulingError(
                    f"grid pricing length {self.grid_pricing.n_steps}"
                    f" != grid {self.grid.n}"
                )
            for site in self.sites:
                for label, table in (
                    ("cores_per_mw", self.grid_pricing.cores_per_mw),
                    ("budget_mwh", self.grid_pricing.budget_mwh),
                ):
                    if site.name not in table:
                        raise SchedulingError(
                            f"grid pricing {label} missing site"
                            f" {site.name}"
                        )

    @property
    def site_names(self) -> list[str]:
        """Site names in problem order."""
        return [s.name for s in self.sites]

    def activity_matrix(self) -> np.ndarray:
        """Boolean (n_apps, n_steps): app active at step."""
        active = np.zeros((len(self.apps), self.grid.n), dtype=bool)
        for i, app in enumerate(self.apps):
            active[i, app.arrival_step : app.end_step] = True
        return active

    def total_demand_cores(self) -> int:
        """Sum of all apps' core demands (ignoring time)."""
        return sum(app.total_cores for app in self.apps)


def default_bytes_per_core(apps: Sequence[Application]) -> float:
    """Mean memory per core across the apps' VM types.

    Migration moves a VM's full memory; displacement is tracked in
    cores, so traffic per displaced core is the demand-weighted memory
    per core.
    """
    total_memory = sum(app.total_memory_bytes for app in apps)
    total_cores = sum(app.total_cores for app in apps)
    if total_cores == 0:
        raise SchedulingError("apps request zero cores in total")
    return total_memory / total_cores


@dataclass
class Placement:
    """A scheduler's output: VM counts per (app, site) plus plan data.

    Attributes:
        assignment: ``assignment[app_id][site_name]`` = VMs placed there.
        planned_displacement: Optional per-site displaced-stable-core
            series the scheduler *intends*; keyed by site name.
        preemptive: True when the planned displacement is *deliberate*
            smoothing (MIP-peak migrates VMs early to flatten spikes)
            and execution should follow it.  Plans without a peak
            objective also carry a displacement series, but it is just
            the forecast-implied minimum — following it would replay
            forecast noise as real migrations, so it stays advisory.
        planned_grid_import: Per-site planned grid purchases in MWh per
            step (only populated when the problem carried a
            :class:`GridPricing`); the offline benchmark the online
            purchase policies are compared against.
    """

    assignment: dict[int, dict[str, int]]
    planned_displacement: dict[str, np.ndarray] = field(
        default_factory=dict
    )
    preemptive: bool = False
    planned_grid_import: dict[str, np.ndarray] = field(
        default_factory=dict
    )

    def planned_cost(
        self, pricing: GridPricing
    ) -> tuple[float, float]:
        """``(cost_usd, carbon_kg)`` of the planned grid imports."""
        cost = 0.0
        carbon = 0.0
        for series in self.planned_grid_import.values():
            mwh = np.asarray(series, dtype=float)
            n = min(len(mwh), pricing.n_steps)
            cost += float(mwh[:n] @ pricing.price_per_mwh[:n])
            carbon += float(mwh[:n] @ pricing.carbon_per_mwh[:n])
        return cost, carbon

    def vms_at(self, app_id: int, site_name: str) -> int:
        """VMs of ``app_id`` placed at ``site_name``."""
        return self.assignment.get(app_id, {}).get(site_name, 0)

    def validate_complete(self, problem: SchedulingProblem) -> None:
        """Check every app's VMs are fully assigned to known sites.

        Raises:
            SchedulingError: when any app is under/over-assigned or
                placed on an unknown site.
        """
        known = set(problem.site_names)
        for app in problem.apps:
            per_site = self.assignment.get(app.app_id, {})
            unknown = set(per_site) - known
            if unknown:
                raise SchedulingError(
                    f"app {app.app_id} placed on unknown sites {unknown}"
                )
            if any(count < 0 for count in per_site.values()):
                raise SchedulingError(
                    f"app {app.app_id} has negative VM counts"
                )
            placed = sum(per_site.values())
            if placed != app.vm_count:
                raise SchedulingError(
                    f"app {app.app_id} has {placed} VMs placed,"
                    f" expected {app.vm_count}"
                )


def problem_from_forecasts(
    grid: TimeGrid,
    traces: Mapping[str, PowerTrace],
    total_cores: Mapping[str, int],
    apps: Sequence[Application],
    forecaster: Forecaster,
    issue_index: int = 0,
    bytes_per_core: float | None = None,
    utilization_cap: float = 0.9,
    supply: "Mapping[str, SupplyStack] | SupplyStack | None" = None,
    grid_pricing: GridPricing | None = None,
) -> SchedulingProblem:
    """Build a problem whose site capacities come from forecasts.

    Args:
        grid: Scheduler grid; must be a prefix-aligned window of the
            traces' grid starting at ``issue_index``.
        traces: Actual per-site traces (the forecaster blurs them).
        total_cores: Cluster core capacity per site.
        apps: Applications to place.
        forecaster: Model used to predict each site's generation.
        issue_index: Trace index at which forecasts are issued.
        bytes_per_core: Traffic per displaced core; derived from the
            apps when omitted.
        utilization_cap: Per-site allocation cap.
        supply: Optional :class:`~repro.supply.SupplyStack` (one for
            every site, or a per-site mapping) firmed *open-loop* into
            each forecast before it becomes a capacity series, so the
            MIP plans against battery-firmed capacity — the same stack
            the executor then dispatches against the actual traces.
            Empty stacks are pass-throughs.
        grid_pricing: Optional :class:`GridPricing` giving the MIP its
            own grid-import variables.  When set, any grid component in
            ``supply`` is *excluded* from forecast firming — the MIP
            owns the grid decision, and firming the forecast with the
            same budget would count the energy twice.
    """
    sites = []
    for name, trace in traces.items():
        forecast = forecaster.forecast(trace, issue_index, grid.n)
        cores = total_cores[name]
        values = forecast.values
        if isinstance(supply, SupplyStack):
            stack: SupplyStack | None = supply
        elif supply is not None:
            stack = supply.get(name)
        else:
            stack = None
        if stack is not None and grid_pricing is not None:
            stack = SupplyStack(
                tuple(
                    c for c in stack.components
                    if isinstance(c, BatteryDispatch)
                ),
                stack.target_fraction,
            )
        if stack is not None and not stack.stateless:
            # Firm the forecast under the actual trace's physical
            # scaling (MW capacity): planner and executor see the same
            # battery physics, differing only by forecast error.
            firmed = stack.apply(
                PowerTrace(
                    forecast.grid, values, trace.name, trace.kind,
                    trace.capacity_mw,
                )
            )
            values = firmed.values
        capacity = np.floor(values * cores)
        sites.append(SiteCapacity(name, cores, capacity))
    if bytes_per_core is None:
        bytes_per_core = default_bytes_per_core(apps)
    return SchedulingProblem(
        grid,
        tuple(sites),
        tuple(apps),
        bytes_per_core,
        utilization_cap,
        grid_pricing=grid_pricing,
    )
