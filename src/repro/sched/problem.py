"""Scheduling problem and placement containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import SchedulingError
from ..forecast import Forecaster
from ..supply import SupplyStack
from ..traces import PowerTrace
from ..units import TimeGrid
from ..workload import Application


@dataclass(frozen=True)
class SiteCapacity:
    """One site's compute capacity series as the scheduler sees it.

    Attributes:
        name: Site name.
        total_cores: Physical core capacity of the co-located cluster.
        capacity_cores: Usable powered cores per scheduler step — built
            from a *forecast* when planning, from the actual trace when
            executing.
    """

    name: str
    total_cores: int
    capacity_cores: np.ndarray

    def __post_init__(self) -> None:
        capacity = np.asarray(self.capacity_cores, dtype=float)
        if capacity.ndim != 1:
            raise SchedulingError(
                f"capacity series must be 1-D, got {capacity.shape}"
            )
        if self.total_cores <= 0:
            raise SchedulingError(
                f"total cores must be positive: {self.total_cores}"
            )
        if np.any(capacity < 0) or np.any(capacity > self.total_cores):
            raise SchedulingError(
                f"capacity for {self.name} outside [0, {self.total_cores}]"
            )
        object.__setattr__(self, "capacity_cores", capacity)


@dataclass(frozen=True)
class SchedulingProblem:
    """Everything a scheduler needs to place a batch of applications.

    Attributes:
        grid: The scheduler's time grid (capacity series length).
        sites: Candidate sites with (forecast) capacity series.
        apps: Applications to place.
        bytes_per_core: Migration traffic per displaced stable core.
            Defaults derived via :func:`default_bytes_per_core`.
        utilization_cap: Maximum allocated fraction of a site's total
            cores (leaves the paper's headroom for local absorption).
    """

    grid: TimeGrid
    sites: tuple[SiteCapacity, ...]
    apps: tuple[Application, ...]
    bytes_per_core: float
    utilization_cap: float = 0.9

    def __post_init__(self) -> None:
        if not self.sites:
            raise SchedulingError("problem needs at least one site")
        if not self.apps:
            raise SchedulingError("problem needs at least one application")
        for site in self.sites:
            if len(site.capacity_cores) != self.grid.n:
                raise SchedulingError(
                    f"site {site.name} capacity length"
                    f" {len(site.capacity_cores)} != grid {self.grid.n}"
                )
        names = [s.name for s in self.sites]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate site names: {names}")
        if self.bytes_per_core <= 0:
            raise SchedulingError(
                f"bytes_per_core must be positive: {self.bytes_per_core}"
            )
        if not 0.0 < self.utilization_cap <= 1.0:
            raise SchedulingError(
                f"utilization cap must be in (0,1]: {self.utilization_cap}"
            )
        for app in self.apps:
            if app.end_step > self.grid.n:
                raise SchedulingError(
                    f"app {app.app_id} runs past the horizon"
                    f" ({app.end_step} > {self.grid.n})"
                )

    @property
    def site_names(self) -> list[str]:
        """Site names in problem order."""
        return [s.name for s in self.sites]

    def activity_matrix(self) -> np.ndarray:
        """Boolean (n_apps, n_steps): app active at step."""
        active = np.zeros((len(self.apps), self.grid.n), dtype=bool)
        for i, app in enumerate(self.apps):
            active[i, app.arrival_step : app.end_step] = True
        return active

    def total_demand_cores(self) -> int:
        """Sum of all apps' core demands (ignoring time)."""
        return sum(app.total_cores for app in self.apps)


def default_bytes_per_core(apps: Sequence[Application]) -> float:
    """Mean memory per core across the apps' VM types.

    Migration moves a VM's full memory; displacement is tracked in
    cores, so traffic per displaced core is the demand-weighted memory
    per core.
    """
    total_memory = sum(app.total_memory_bytes for app in apps)
    total_cores = sum(app.total_cores for app in apps)
    if total_cores == 0:
        raise SchedulingError("apps request zero cores in total")
    return total_memory / total_cores


@dataclass
class Placement:
    """A scheduler's output: VM counts per (app, site) plus plan data.

    Attributes:
        assignment: ``assignment[app_id][site_name]`` = VMs placed there.
        planned_displacement: Optional per-site displaced-stable-core
            series the scheduler *intends*; keyed by site name.
        preemptive: True when the planned displacement is *deliberate*
            smoothing (MIP-peak migrates VMs early to flatten spikes)
            and execution should follow it.  Plans without a peak
            objective also carry a displacement series, but it is just
            the forecast-implied minimum — following it would replay
            forecast noise as real migrations, so it stays advisory.
    """

    assignment: dict[int, dict[str, int]]
    planned_displacement: dict[str, np.ndarray] = field(
        default_factory=dict
    )
    preemptive: bool = False

    def vms_at(self, app_id: int, site_name: str) -> int:
        """VMs of ``app_id`` placed at ``site_name``."""
        return self.assignment.get(app_id, {}).get(site_name, 0)

    def validate_complete(self, problem: SchedulingProblem) -> None:
        """Check every app's VMs are fully assigned to known sites.

        Raises:
            SchedulingError: when any app is under/over-assigned or
                placed on an unknown site.
        """
        known = set(problem.site_names)
        for app in problem.apps:
            per_site = self.assignment.get(app.app_id, {})
            unknown = set(per_site) - known
            if unknown:
                raise SchedulingError(
                    f"app {app.app_id} placed on unknown sites {unknown}"
                )
            if any(count < 0 for count in per_site.values()):
                raise SchedulingError(
                    f"app {app.app_id} has negative VM counts"
                )
            placed = sum(per_site.values())
            if placed != app.vm_count:
                raise SchedulingError(
                    f"app {app.app_id} has {placed} VMs placed,"
                    f" expected {app.vm_count}"
                )


def problem_from_forecasts(
    grid: TimeGrid,
    traces: Mapping[str, PowerTrace],
    total_cores: Mapping[str, int],
    apps: Sequence[Application],
    forecaster: Forecaster,
    issue_index: int = 0,
    bytes_per_core: float | None = None,
    utilization_cap: float = 0.9,
    supply: "Mapping[str, SupplyStack] | SupplyStack | None" = None,
) -> SchedulingProblem:
    """Build a problem whose site capacities come from forecasts.

    Args:
        grid: Scheduler grid; must be a prefix-aligned window of the
            traces' grid starting at ``issue_index``.
        traces: Actual per-site traces (the forecaster blurs them).
        total_cores: Cluster core capacity per site.
        apps: Applications to place.
        forecaster: Model used to predict each site's generation.
        issue_index: Trace index at which forecasts are issued.
        bytes_per_core: Traffic per displaced core; derived from the
            apps when omitted.
        utilization_cap: Per-site allocation cap.
        supply: Optional :class:`~repro.supply.SupplyStack` (one for
            every site, or a per-site mapping) firmed *open-loop* into
            each forecast before it becomes a capacity series, so the
            MIP plans against battery-firmed capacity — the same stack
            the executor then dispatches against the actual traces.
            Empty stacks are pass-throughs.
    """
    sites = []
    for name, trace in traces.items():
        forecast = forecaster.forecast(trace, issue_index, grid.n)
        cores = total_cores[name]
        values = forecast.values
        if isinstance(supply, SupplyStack):
            stack: SupplyStack | None = supply
        elif supply is not None:
            stack = supply.get(name)
        else:
            stack = None
        if stack is not None and not stack.stateless:
            # Firm the forecast under the actual trace's physical
            # scaling (MW capacity): planner and executor see the same
            # battery physics, differing only by forecast error.
            firmed = stack.apply(
                PowerTrace(
                    forecast.grid, values, trace.name, trace.kind,
                    trace.capacity_mw,
                )
            )
            values = firmed.values
        capacity = np.floor(values * cores)
        sites.append(SiteCapacity(name, cores, capacity))
    if bytes_per_core is None:
        bytes_per_core = default_bytes_per_core(apps)
    return SchedulingProblem(
        grid, tuple(sites), tuple(apps), bytes_per_core, utilization_cap
    )
