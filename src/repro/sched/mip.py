"""Mixed-integer site selection (§3.1 steps 2-3).

Decision variables place each application's VMs across the candidate
sites; the objective is the paper's O1 (total predicted migration
bytes) with an optional O2 term (peak migration bytes).  Migration
bytes come from the displaced-stable-cores model of
:mod:`repro.sched.overhead`, which is linear in the placement:

    minimize  sum_{s,t} (d+[s,t] + d-[s,t]) * bpc            (O1)
            + peak_weight * M                                 (O2)
            + epsilon * sum u[s,t]                            (anchor)

    s.t.  sum_s y[a,s] = vm_count_a                           (place all)
          u[s,t] >= stable_load(y, s, t) - capacity[s,t]      (displace)
          d+[s,t] - d-[s,t] = u[s,t] - u[s,t-1]               (traffic)
          total_load(y, s, t) <= allocation_cap[s,t]          (capacity)
          M >= (d+[s,t] + d-[s,t]) * bpc                      (peak, O2)

The epsilon anchor pins ``u`` to the displacement lower bound wherever
that is slack — except when the peak objective makes it *profitable* to
raise ``u`` early, which is exactly the paper's observation that
MIP-peak "migrates VMs preemptively, spreading out migrations over
time".  Solved with HiGHS via :func:`scipy.optimize.milp`.

Constraint assembly is vectorized: every constraint family (C1-C6)
contributes numpy row/col/val blocks built with broadcasting, and one
COO→CSR conversion produces the matrix.  The per-coefficient loop
implementation is kept as :func:`_assemble_reference` — both builders
produce structurally identical matrices (no duplicate entries, so the
canonical CSR forms coincide; enforced by the golden assembly tests),
which makes scaling to hundreds of sites an assembly-time change only,
with identical solver input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

try:  # Direct HiGHS bindings: only needed for warm-started re-solves.
    import highspy
except ImportError:  # pragma: no cover - environment-dependent
    highspy = None

from .. import obs
from ..errors import SolverError
from .problem import Placement, SchedulingProblem


@dataclass(frozen=True)
class _Layout:
    """Flat variable layout of one MIP instance."""

    n_apps: int
    n_sites: int
    n_steps: int
    peak: bool
    reassign: bool = False

    @property
    def o_u(self) -> int:
        return self.n_apps * self.n_sites

    @property
    def o_dp(self) -> int:
        return self.o_u + self.n_sites * self.n_steps

    @property
    def o_dn(self) -> int:
        return self.o_dp + self.n_sites * self.n_steps

    @property
    def o_m(self) -> int:
        return self.o_dn + self.n_sites * self.n_steps

    @property
    def o_mp(self) -> int:
        """Reassignment move-in variables (replanning only)."""
        return self.o_m + (1 if self.peak else 0)

    @property
    def n_vars(self) -> int:
        base = self.o_mp
        if self.reassign:
            base += 2 * self.n_apps * self.n_sites
        return base

    def y(self, a: int, s: int) -> int:
        return a * self.n_sites + s

    def u(self, s: int, t: int) -> int:
        return self.o_u + s * self.n_steps + t

    def dp(self, s: int, t: int) -> int:
        return self.o_dp + s * self.n_steps + t

    def dn(self, s: int, t: int) -> int:
        return self.o_dn + s * self.n_steps + t

    def mp(self, a: int, s: int) -> int:
        return self.o_mp + a * self.n_sites + s

    def mn(self, a: int, s: int) -> int:
        return self.o_mp + self.n_apps * self.n_sites + (
            a * self.n_sites + s
        )


@dataclass(frozen=True)
class MIPTimings:
    """Assembly/solve split of the last :meth:`MIPScheduler.schedule`.

    ``warm_start_used`` is True when the solve was seeded with the
    previous round's solution through the direct HiGHS bindings (the
    shape matched and HiGHS accepted the seed).
    """

    assembly_s: float
    solve_s: float
    n_rows: int
    n_cols: int
    nnz: int
    warm_start_used: bool = False


def _active_mask(problem: SchedulingProblem) -> np.ndarray:
    """(n_apps, n_steps) bool: app ``a`` runs during step ``t``."""
    n_steps = problem.grid.n
    arrivals = np.array(
        [app.arrival_step for app in problem.apps], dtype=np.int64
    )
    ends = np.array([app.end_step for app in problem.apps], dtype=np.int64)
    t = np.arange(n_steps)
    return (t >= arrivals[:, None]) & (t < ends[:, None])


def _capacity_matrix(problem: SchedulingProblem) -> np.ndarray:
    """(n_sites, n_steps) float: forecast capacity per site per step."""
    return np.stack(
        [
            np.asarray(site.capacity_cores, dtype=float)
            for site in problem.sites
        ]
    )


def _allocation_cap_matrix(
    problem: SchedulingProblem,
    allocation_cap: Mapping[str, np.ndarray] | None,
) -> np.ndarray:
    """(n_sites, n_steps) float: allocated-core cap per site per step."""
    n_steps = problem.grid.n
    caps = np.empty((len(problem.sites), n_steps))
    for s, site in enumerate(problem.sites):
        if allocation_cap is not None:
            caps[s] = np.asarray(allocation_cap[site.name], dtype=float)
        else:
            caps[s] = problem.utilization_cap * site.total_cores
    return caps


def _assemble(
    problem: SchedulingProblem,
    layout: _Layout,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Vectorized constraint assembly.

    Builds numpy row/col/val blocks per constraint family and converts
    once; row numbering matches :func:`_assemble_reference` exactly, and
    no (row, col) pair is emitted twice, so the canonical CSR forms of
    the two builders are identical.
    """
    apps = problem.apps
    sites = problem.sites
    A, S, T = layout.n_apps, layout.n_sites, layout.n_steps
    ST = S * T

    active = _active_mask(problem)
    stable_cpv = np.array(
        [app.vm_type.cores * app.stable_fraction for app in apps]
    )
    total_cpv = np.array([float(app.vm_type.cores) for app in apps])
    vm_counts = np.array([float(app.vm_count) for app in apps])
    s_idx = np.arange(S, dtype=np.int64)
    st_idx = np.arange(ST, dtype=np.int64)
    bpc_gb = problem.bytes_per_core / 1e9

    row_blocks: list[np.ndarray] = []
    col_blocks: list[np.ndarray] = []
    val_blocks: list[np.ndarray] = []
    lb_blocks: list[np.ndarray] = []
    ub_blocks: list[np.ndarray] = []

    def emit(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        row_blocks.append(np.asarray(rows, dtype=np.int64))
        col_blocks.append(np.asarray(cols, dtype=np.int64))
        val_blocks.append(np.asarray(vals, dtype=float))

    # (C1) every app fully placed: rows [0, A).
    emit(
        np.repeat(np.arange(A, dtype=np.int64), S),
        np.arange(A * S, dtype=np.int64),
        np.ones(A * S),
    )
    lb_blocks.append(vm_counts)
    ub_blocks.append(vm_counts)

    # (C2) displacement lower bound: rows [A, A + S*T), row A + s*T + t.
    r2 = A
    emit(r2 + st_idx, layout.o_u + st_idx, np.ones(ST))
    a2, t2 = np.nonzero(active & (stable_cpv > 0)[:, None])
    if a2.size:
        emit(
            (r2 + s_idx[:, None] * T + t2[None, :]).ravel(),
            (a2[None, :] * S + s_idx[:, None]).ravel(),
            np.tile(-stable_cpv[a2], S),
        )
    capacity = _capacity_matrix(problem)
    background = np.zeros((S, T))
    if stable_background is not None:
        for s, site in enumerate(sites):
            background[s] = np.asarray(
                stable_background[site.name], dtype=float
            )
    lb_blocks.append((-capacity + background).ravel())
    ub_blocks.append(np.full(ST, np.inf))

    # (C3) traffic decomposition: rows [A + S*T, A + 2*S*T).
    r3 = A + ST
    emit(r3 + st_idx, layout.o_dp + st_idx, np.ones(ST))
    emit(r3 + st_idx, layout.o_dn + st_idx, -np.ones(ST))
    emit(r3 + st_idx, layout.o_u + st_idx, -np.ones(ST))
    has_prev = (st_idx % T) != 0
    prev_idx = st_idx[has_prev]
    emit(
        r3 + prev_idx, layout.o_u + prev_idx - 1, np.ones(prev_idx.size)
    )
    lb_blocks.append(np.zeros(ST))
    ub_blocks.append(np.zeros(ST))

    # (C4) allocated cores within the cap: one row per site per step
    # with at least one active app (rank maps step -> row offset).
    r4 = A + 2 * ST
    t_active = np.flatnonzero(active.any(axis=0))
    n_act = t_active.size
    if n_act:
        rank = np.empty(T, dtype=np.int64)
        rank[t_active] = np.arange(n_act, dtype=np.int64)
        a4, t4 = np.nonzero(active)
        emit(
            (r4 + s_idx[:, None] * n_act + rank[t4][None, :]).ravel(),
            (a4[None, :] * S + s_idx[:, None]).ravel(),
            np.tile(total_cpv[a4], S),
        )
        caps = _allocation_cap_matrix(problem, allocation_cap)
        lb_blocks.append(np.full(S * n_act, -np.inf))
        ub_blocks.append(caps[:, t_active].ravel())
    r5 = r4 + S * n_act

    # (C5) peak bound: rows [r5, r5 + S*T) when the O2 term is on.
    if layout.peak:
        emit(r5 + st_idx, layout.o_dp + st_idx, np.full(ST, bpc_gb))
        emit(r5 + st_idx, layout.o_dn + st_idx, np.full(ST, bpc_gb))
        emit(
            r5 + st_idx,
            np.full(ST, layout.o_m, dtype=np.int64),
            -np.ones(ST),
        )
        lb_blocks.append(np.full(ST, -np.inf))
        ub_blocks.append(np.zeros(ST))
    r6 = r5 + (ST if layout.peak else 0)

    # (C6) reassignment decomposition: rows [r6, r6 + A*S).
    if layout.reassign:
        as_idx = np.arange(A * S, dtype=np.int64)
        emit(r6 + as_idx, as_idx, np.ones(A * S))
        emit(r6 + as_idx, layout.o_mp + as_idx, -np.ones(A * S))
        emit(r6 + as_idx, layout.o_mp + A * S + as_idx, np.ones(A * S))
        prev_arr = np.zeros((A, S))
        for a, app in enumerate(apps):
            prev = previous_assignment.get(app.app_id, {})
            if prev:
                for s, site in enumerate(sites):
                    prev_arr[a, s] = float(prev.get(site.name, 0))
        lb_blocks.append(prev_arr.ravel())
        ub_blocks.append(prev_arr.ravel())
    n_rows = r6 + (A * S if layout.reassign else 0)

    matrix = sparse.csr_matrix(
        (
            np.concatenate(val_blocks),
            (np.concatenate(row_blocks), np.concatenate(col_blocks)),
        ),
        shape=(n_rows, layout.n_vars),
    )
    return matrix, np.concatenate(lb_blocks), np.concatenate(ub_blocks)


def _assemble_reference(
    problem: SchedulingProblem,
    layout: _Layout,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Per-coefficient loop assembly (the original implementation).

    Kept as the oracle for the vectorized builder: the golden tests
    assert both produce identical CSR matrices and bounds.
    """
    apps = problem.apps
    sites = problem.sites
    n_steps = layout.n_steps
    bpc_gb = problem.bytes_per_core / 1e9

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # (C1) every app fully placed.
    for a, app in enumerate(apps):
        for s in range(len(sites)):
            add_entry(row, layout.y(a, s), 1.0)
        lb.append(float(app.vm_count))
        ub.append(float(app.vm_count))
        row += 1

    # Active app lists per step (shared by C2 and C4).
    active_at: list[list[int]] = [[] for _ in range(n_steps)]
    for a, app in enumerate(apps):
        for t in range(app.arrival_step, app.end_step):
            active_at[t].append(a)

    stable_cpv = [
        app.vm_type.cores * app.stable_fraction for app in apps
    ]
    total_cpv = [float(app.vm_type.cores) for app in apps]

    # (C2) displacement lower bound:
    #   u[s,t] - sum_a stable_cpv*y[a,s] >= -capacity + background.
    for s, site in enumerate(sites):
        background = None
        if stable_background is not None:
            background = np.asarray(stable_background[site.name])
        for t in range(n_steps):
            add_entry(row, layout.u(s, t), 1.0)
            for a in active_at[t]:
                if stable_cpv[a] > 0:
                    add_entry(row, layout.y(a, s), -stable_cpv[a])
            bound = -float(site.capacity_cores[t])
            if background is not None:
                bound += float(background[t])
            lb.append(bound)
            ub.append(np.inf)
            row += 1

    # (C3) traffic decomposition: dp - dn - u_t + u_{t-1} = 0.
    for s in range(len(sites)):
        for t in range(n_steps):
            add_entry(row, layout.dp(s, t), 1.0)
            add_entry(row, layout.dn(s, t), -1.0)
            add_entry(row, layout.u(s, t), -1.0)
            if t > 0:
                add_entry(row, layout.u(s, t - 1), 1.0)
            lb.append(0.0)
            ub.append(0.0)
            row += 1

    # (C4) allocated cores within the cap.
    for s, site in enumerate(sites):
        if allocation_cap is not None:
            caps = np.asarray(allocation_cap[site.name], dtype=float)
        else:
            caps = np.full(
                n_steps, problem.utilization_cap * site.total_cores
            )
        for t in range(n_steps):
            if not active_at[t]:
                continue
            for a in active_at[t]:
                add_entry(row, layout.y(a, s), total_cpv[a])
            lb.append(-np.inf)
            ub.append(float(caps[t]))
            row += 1

    # (C5) peak bound.
    if layout.peak:
        for s in range(len(sites)):
            for t in range(n_steps):
                add_entry(row, layout.dp(s, t), bpc_gb)
                add_entry(row, layout.dn(s, t), bpc_gb)
                add_entry(row, layout.o_m, -1.0)
                lb.append(-np.inf)
                ub.append(0.0)
                row += 1

    # (C6) reassignment decomposition for replanning:
    #   y[a,s] - m+[a,s] + m-[a,s] = prev[a,s].
    if layout.reassign:
        names = [site.name for site in sites]
        for a, app in enumerate(apps):
            prev = previous_assignment.get(app.app_id, {})
            for s, name in enumerate(names):
                add_entry(row, layout.y(a, s), 1.0)
                add_entry(row, layout.mp(a, s), -1.0)
                add_entry(row, layout.mn(a, s), 1.0)
                previous = float(prev.get(name, 0))
                lb.append(previous)
                ub.append(previous)
                row += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, layout.n_vars)
    )
    return matrix, np.array(lb), np.array(ub)


class MIPScheduler:
    """O1 (total) site selection, with optional O2 (peak) term.

    Args:
        peak_weight: Weight of the peak-overhead objective O2.  Zero
            gives the paper's *MIP*; a positive weight gives *MIP-peak*.
        integer_vms: Solve VM counts as integers (True, default) or
            relax to continuous and round (faster, near-identical
            results at the paper's scales).
        time_limit_s: HiGHS wall-clock limit; a feasible incumbent is
            accepted when the limit strikes.
        mip_rel_gap: Relative optimality gap at which HiGHS may stop.
        epsilon: Anchor weight pinning u to its lower bound.
        warm_start: Seed each solve with the previous solution when the
            problem shape (rows x cols) is unchanged — the replanning
            case, where solve time dominates assembly 13:1 at 200 sites
            and successive rounds differ only in capacity forecasts.
            Needs the ``highspy`` bindings (``scipy.optimize.milp``
            cannot accept a seed); silently falls back to a cold
            ``milp`` solve when they are missing, the shape changed, or
            HiGHS rejects the seed.  :attr:`MIPTimings.warm_start_used`
            reports what actually happened.

    After each :meth:`schedule` call, :attr:`last_timings` holds the
    assembly/solve wall-clock split (:class:`MIPTimings`).
    """

    def __init__(
        self,
        peak_weight: float = 0.0,
        integer_vms: bool = True,
        time_limit_s: float = 120.0,
        mip_rel_gap: float = 1e-3,
        epsilon: float = 1e-6,
        warm_start: bool = False,
    ):
        if peak_weight < 0:
            raise SolverError(f"peak weight must be >= 0: {peak_weight}")
        if time_limit_s <= 0:
            raise SolverError(f"time limit must be positive: {time_limit_s}")
        self.peak_weight = peak_weight
        self.integer_vms = integer_vms
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.epsilon = epsilon
        self.warm_start = warm_start
        self.last_timings: MIPTimings | None = None
        # Previous solution vector + the (rows, cols) shape it solved,
        # reused as a HiGHS seed only on an exact shape match.
        self._warm_solution: np.ndarray | None = None
        self._warm_shape: tuple[int, int] | None = None

    # ------------------------------------------------------------------

    def schedule(
        self,
        problem: SchedulingProblem,
        allocation_cap: Mapping[str, np.ndarray] | None = None,
        stable_background: Mapping[str, np.ndarray] | None = None,
        previous_assignment: Mapping[int, Mapping[str, int]]
        | None = None,
        switch_weight: float = 1.0,
    ) -> Placement:
        """Solve the site-selection MIP.

        Args:
            problem: Sites (with forecast capacity), apps, bytes/core.
            allocation_cap: Optional per-site *per-step* allocated-core
                caps (defaults to ``utilization_cap * total_cores``);
                used by the rolling scheduler to reserve already-placed
                load.
            stable_background: Optional per-site stable-core load
                already committed by earlier solves; shifts the
                displacement bound.
            previous_assignment: Optional prior placement (app id ->
                site -> VM count) for *replanning* — the paper's "as
                the environment changes ... we need to rerun the
                optimization".  Moving a VM away from its previous site
                costs its memory once, weighted by ``switch_weight``,
                so re-solves only shuffle placements when the predicted
                migration savings exceed the cost of moving.
            switch_weight: Relative weight of reassignment traffic in
                the objective (1.0 = a planned move costs the same as a
                forced migration of the same VM).

        Returns:
            A complete placement with the planned per-site displacement
            series attached (used for preemptive execution).
        """
        if switch_weight < 0:
            raise SolverError(
                f"switch weight must be >= 0: {switch_weight}"
            )
        apps = problem.apps
        sites = problem.sites
        layout = _Layout(
            len(apps),
            len(sites),
            problem.grid.n,
            self.peak_weight > 0,
            reassign=previous_assignment is not None,
        )
        n_steps = problem.grid.n
        bpc_gb = problem.bytes_per_core / 1e9

        with obs.timed_span(
            "mip.schedule",
            n_apps=len(apps),
            n_sites=len(sites),
            n_steps=n_steps,
        ):
            with obs.timed_span("mip.assemble") as assemble_span:
                matrix, lb, ub = _assemble(
                    problem, layout, allocation_cap, stable_background,
                    previous_assignment,
                )

                # Objective.
                c = np.zeros(layout.n_vars)
                c[layout.o_dp : layout.o_dn] = bpc_gb
                c[layout.o_dn : layout.o_dn + len(sites) * n_steps] = (
                    bpc_gb
                )
                c[layout.o_u : layout.o_dp] = self.epsilon * bpc_gb
                if layout.peak:
                    c[layout.o_m] = self.peak_weight
                if layout.reassign:
                    # Moving a VM into a site it wasn't at costs its
                    # memory once (m+ counts arrivals; counting one side
                    # avoids double-charging the same move).
                    move_gb = np.array(
                        [app.vm_type.memory_bytes / 1e9 for app in apps]
                    )
                    n_pairs = layout.n_apps * layout.n_sites
                    c[layout.o_mp : layout.o_mp + n_pairs] = (
                        switch_weight * np.repeat(move_gb, len(sites))
                    )

                # Bounds and integrality.
                lower = np.zeros(layout.n_vars)
                upper = np.full(layout.n_vars, np.inf)
                upper[: layout.o_u] = np.repeat(
                    np.array(
                        [float(app.vm_count) for app in apps]
                    ),
                    len(sites),
                )
                integrality = np.zeros(layout.n_vars)
                if self.integer_vms:
                    integrality[: layout.o_u] = 1
                assemble_span.set(
                    n_rows=matrix.shape[0],
                    n_cols=matrix.shape[1],
                    nnz=matrix.nnz,
                )

            with obs.timed_span("mip.solve") as solve_span:
                x: np.ndarray | None = None
                warm_used = False
                if self.warm_start:
                    seeded = self._solve_highspy(
                        c, matrix, lb, ub, integrality, lower, upper
                    )
                    if seeded is not None:
                        x, warm_used = seeded
                if x is None:
                    result = milp(
                        c,
                        constraints=LinearConstraint(matrix, lb, ub),
                        integrality=integrality,
                        bounds=Bounds(lower, upper),
                        options={
                            "time_limit": self.time_limit_s,
                            "mip_rel_gap": self.mip_rel_gap,
                        },
                    )
                    solve_span.set(status=int(result.status))
                    if result.x is None:
                        self.last_timings = MIPTimings(
                            assembly_s=assemble_span.wall_s,
                            solve_s=solve_span.wall_s,
                            n_rows=matrix.shape[0],
                            n_cols=matrix.shape[1],
                            nnz=matrix.nnz,
                        )
                        raise SolverError(
                            f"MIP failed (status {result.status}):"
                            f" {result.message}"
                        )
                    x = result.x
                else:
                    solve_span.set(status=0, warm_start=True)
            self.last_timings = MIPTimings(
                assembly_s=assemble_span.wall_s,
                solve_s=solve_span.wall_s,
                n_rows=matrix.shape[0],
                n_cols=matrix.shape[1],
                nnz=matrix.nnz,
                warm_start_used=warm_used,
            )
            if self.warm_start:
                self._warm_solution = np.asarray(x, dtype=float)
                self._warm_shape = matrix.shape

            return self._extract(problem, layout, x)

    def _solve_highspy(
        self,
        c: np.ndarray,
        matrix: sparse.csr_matrix,
        lb: np.ndarray,
        ub: np.ndarray,
        integrality: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> tuple[np.ndarray, bool] | None:
        """Solve through the direct HiGHS bindings, seeding the stored
        solution when the problem shape matches.

        Returns ``(x, warm_start_used)``, or ``None`` to make the
        caller fall back to a cold :func:`scipy.optimize.milp` solve —
        when ``highspy`` is not installed, the model fails to build, or
        HiGHS does not finish with a feasible solution.  Any exception
        inside the bindings is treated as "fall back", never raised:
        the warm path is an optimization, not a dependency.
        """
        if highspy is None:
            return None
        try:
            n_rows, n_cols = matrix.shape
            csc = matrix.tocsc()
            inf = highspy.kHighsInf
            lp = highspy.HighsLp()
            lp.num_col_ = n_cols
            lp.num_row_ = n_rows
            lp.col_cost_ = np.asarray(c, dtype=float)
            lp.col_lower_ = np.asarray(lower, dtype=float)
            lp.col_upper_ = np.where(np.isfinite(upper), upper, inf)
            lp.row_lower_ = np.where(np.isfinite(lb), lb, -inf)
            lp.row_upper_ = np.where(np.isfinite(ub), ub, inf)
            lp.a_matrix_.format_ = highspy.MatrixFormat.kColwise
            lp.a_matrix_.start_ = csc.indptr
            lp.a_matrix_.index_ = csc.indices
            lp.a_matrix_.value_ = csc.data
            if integrality.any():
                lp.integrality_ = [
                    highspy.HighsVarType.kInteger
                    if flag
                    else highspy.HighsVarType.kContinuous
                    for flag in integrality
                ]
            solver = highspy.Highs()
            solver.setOptionValue("output_flag", False)
            solver.setOptionValue("time_limit", float(self.time_limit_s))
            solver.setOptionValue("mip_rel_gap", float(self.mip_rel_gap))
            if solver.passModel(lp) != highspy.HighsStatus.kOk:
                return None
            warm_used = False
            if (
                self._warm_solution is not None
                and self._warm_shape == (n_rows, n_cols)
            ):
                seed = highspy.HighsSolution()
                seed.value_valid = True
                seed.col_value = list(self._warm_solution)
                warm_used = (
                    solver.setSolution(seed) == highspy.HighsStatus.kOk
                )
            solver.run()
            status = solver.getModelStatus()
            if status not in (
                highspy.HighsModelStatus.kOptimal,
                highspy.HighsModelStatus.kObjectiveBound,
                highspy.HighsModelStatus.kObjectiveTarget,
                highspy.HighsModelStatus.kTimeLimit,
            ):
                return None
            info = solver.getInfo()
            if info.primal_solution_status != (
                highspy.SolutionStatus.kSolutionStatusFeasible
            ):
                return None
            x = np.asarray(solver.getSolution().col_value, dtype=float)
            if x.shape != (n_cols,):
                return None
            return x, warm_used
        except Exception:  # pragma: no cover - binding-version drift
            return None

    def _extract(
        self, problem: SchedulingProblem, layout: _Layout, x: np.ndarray
    ) -> Placement:
        """Turn a solution vector into a validated Placement."""
        assignment: dict[int, dict[str, int]] = {}
        names = problem.site_names
        S = layout.n_sites
        T = layout.n_steps
        for a, app in enumerate(problem.apps):
            raw = x[a * S : (a + 1) * S]
            counts = _round_preserving_sum(raw, app.vm_count)
            assignment[app.app_id] = {
                name: int(count)
                for name, count in zip(names, counts)
                if count > 0
            }
        planned: dict[str, np.ndarray] = {}
        for s, name in enumerate(names):
            series = x[layout.o_u + s * T : layout.o_u + (s + 1) * T]
            planned[name] = np.clip(series, 0.0, None)
        placement = Placement(
            assignment, planned, preemptive=self.peak_weight > 0
        )
        placement.validate_complete(problem)
        return placement


def _round_preserving_sum(raw: np.ndarray, target: int) -> np.ndarray:
    """Round non-negative floats to integers summing exactly to target.

    Floors everything, then hands out the remaining units to the
    largest fractional parts (largest-remainder rounding).  Needed both
    for relaxed solves and to clean up solver tolerance noise.
    """
    raw = np.clip(np.asarray(raw, dtype=float), 0.0, None)
    floors = np.floor(raw + 1e-9).astype(int)
    remainder = int(target - floors.sum())
    if remainder < 0:
        # Solver noise pushed a floor too high; trim from smallest
        # fractional parts.
        order = np.argsort(raw - floors)
        for index in order:
            if remainder == 0:
                break
            take = min(floors[index], -remainder)
            floors[index] -= take
            remainder += take
    elif remainder > 0:
        order = np.argsort(-(raw - floors))
        for index in order[:remainder]:
            floors[index] += 1
        remainder = 0
    return floors


class RollingMIPScheduler:
    """The paper's *MIP-24h*: re-solve O1 daily with fresh forecasts.

    Each day, the apps arriving that day are placed by a MIP whose
    horizon is the next ``window_steps`` and whose capacity comes from
    a forecast issued that morning; earlier placements are frozen and
    enter as background load.

    Args:
        window_steps: Lookahead horizon per solve (one day in paper).
        capacity_provider: Optional callable
            ``(site_name, issue_step, horizon) -> cores array`` giving
            refreshed forecasts; defaults to slicing the problem's own
            capacity series.
        **mip_kwargs: Passed to the per-day :class:`MIPScheduler`.
    """

    def __init__(
        self,
        window_steps: int,
        capacity_provider: Callable[[str, int, int], np.ndarray]
        | None = None,
        **mip_kwargs,
    ):
        if window_steps <= 0:
            raise SolverError(
                f"window must be positive: {window_steps}"
            )
        self.window_steps = window_steps
        self.capacity_provider = capacity_provider
        self.mip_kwargs = mip_kwargs

    def schedule(self, problem: SchedulingProblem) -> Placement:
        """Run the rolling solves and merge the placements."""
        from dataclasses import replace

        from ..workload import Application
        from .problem import SchedulingProblem as SP, SiteCapacity

        n = problem.grid.n
        assignment: dict[int, dict[str, int]] = {}
        stable_bg = {name: np.zeros(n) for name in problem.site_names}
        total_bg = {name: np.zeros(n) for name in problem.site_names}

        # One scheduler serves every chunk so warm-start state (the
        # previous round's solution) survives across re-solves; with
        # warm_start off this is just instance reuse.
        solver = MIPScheduler(**self.mip_kwargs)
        chunk = self.window_steps
        for start in range(0, n, chunk):
            batch = [
                app
                for app in problem.apps
                if start <= app.arrival_step < min(start + chunk, n)
            ]
            if not batch:
                continue
            horizon = min(self.window_steps, n - start)
            # Make sure every batched app's window fits the horizon by
            # truncating durations to the lookahead (the solver only
            # reasons about what it can see).
            shifted: list[Application] = []
            for app in batch:
                duration = min(
                    app.duration_steps, start + horizon - app.arrival_step
                )
                shifted.append(
                    replace(
                        app,
                        arrival_step=app.arrival_step - start,
                        duration_steps=duration,
                    )
                )
            sub_sites = []
            caps: dict[str, np.ndarray] = {}
            backgrounds: dict[str, np.ndarray] = {}
            window = slice(start, start + horizon)
            for site in problem.sites:
                if self.capacity_provider is not None:
                    capacity = np.asarray(
                        self.capacity_provider(site.name, start, horizon),
                        dtype=float,
                    )
                else:
                    capacity = site.capacity_cores[window]
                capacity = np.clip(capacity, 0, site.total_cores)
                sub_sites.append(
                    SiteCapacity(site.name, site.total_cores, capacity)
                )
                caps[site.name] = np.clip(
                    problem.utilization_cap * site.total_cores
                    - total_bg[site.name][window],
                    0.0,
                    None,
                )
                backgrounds[site.name] = stable_bg[site.name][window]
            sub_problem = SP(
                problem.grid.subgrid(start, horizon),
                tuple(sub_sites),
                tuple(shifted),
                problem.bytes_per_core,
                problem.utilization_cap,
            )
            sub_placement = solver.schedule(
                sub_problem,
                allocation_cap=caps,
                stable_background=backgrounds,
            )
            # Merge results and extend the background with the *full*
            # (untruncated) app windows.
            for app, sub_app in zip(batch, shifted):
                per_site = sub_placement.assignment.get(sub_app.app_id, {})
                assignment[app.app_id] = dict(per_site)
                for name, count in per_site.items():
                    window_full = slice(app.arrival_step, app.end_step)
                    stable_bg[name][window_full] += (
                        count * app.vm_type.cores * app.stable_fraction
                    )
                    total_bg[name][window_full] += (
                        count * app.vm_type.cores
                    )
        placement = Placement(assignment)
        placement.validate_complete(problem)
        return placement
