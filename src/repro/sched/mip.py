"""Mixed-integer site selection (§3.1 steps 2-3).

Decision variables place each application's VMs across the candidate
sites; the objective is the paper's O1 (total predicted migration
bytes) with an optional O2 term (peak migration bytes).  Migration
bytes come from the displaced-stable-cores model of
:mod:`repro.sched.overhead`, which is linear in the placement:

    minimize  sum_{s,t} (d+[s,t] + d-[s,t]) * bpc            (O1)
            + peak_weight * M                                 (O2)
            + epsilon * sum u[s,t]                            (anchor)

    s.t.  sum_s y[a,s] = vm_count_a                           (place all)
          u[s,t] >= stable_load(y, s, t) - capacity[s,t]      (displace)
          d+[s,t] - d-[s,t] = u[s,t] - u[s,t-1]               (traffic)
          total_load(y, s, t) <= allocation_cap[s,t]          (capacity)
          M >= (d+[s,t] + d-[s,t]) * bpc                      (peak, O2)

The epsilon anchor keeps ``u`` finite without distorting O1.  Note
that the optimal ``u`` is *not* the pointwise displacement floor:
migrating VMs back costs a full ``bpc`` per core while holding them
displaced costs only ``epsilon`` per step, so with ``peak_weight == 0``
the optimal plan holds ``u`` at the *running maximum* of the floor
(displaced VMs never migrate back inside the horizon).  The peak
objective can additionally make it profitable to raise ``u`` early —
the paper's observation that MIP-peak "migrates VMs preemptively,
spreading out migrations over time".  Solved with HiGHS via
:func:`scipy.optimize.milp`.

Instances too large for one monolithic solve go through
:mod:`repro.sched.decompose` (``MIPScheduler(decompose=...)``):
temporal windows with the boundary ``u[s,t]`` carried across seams,
LP-relax-and-fix, and parallel window solves.  The seam state enters
the model here as ``initial_displacement`` — the C3 traffic row at
``t == 0`` becomes ``d+ - d- - u[s,0] = -u_prev[s]``, so a window is
charged only for displacement *changes* relative to its predecessor.

Constraint assembly is vectorized: every constraint family (C1-C6)
contributes numpy row/col/val blocks built with broadcasting, and one
COO→CSR conversion produces the matrix.  The per-coefficient loop
implementation is kept as :func:`_assemble_reference` — both builders
produce structurally identical matrices (no duplicate entries, so the
canonical CSR forms coincide; enforced by the golden assembly tests),
which makes scaling to hundreds of sites an assembly-time change only,
with identical solver input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

try:  # Direct HiGHS bindings: only needed for warm-started re-solves.
    import highspy
except ImportError:  # pragma: no cover - environment-dependent
    highspy = None

from .. import obs
from ..errors import SolverError
from .problem import Placement, SchedulingProblem


@dataclass(frozen=True)
class _Layout:
    """Flat variable layout of one MIP instance."""

    n_apps: int
    n_sites: int
    n_steps: int
    peak: bool
    reassign: bool = False
    grid: bool = False

    @property
    def o_u(self) -> int:
        return self.n_apps * self.n_sites

    @property
    def o_dp(self) -> int:
        return self.o_u + self.n_sites * self.n_steps

    @property
    def o_dn(self) -> int:
        return self.o_dp + self.n_sites * self.n_steps

    @property
    def o_m(self) -> int:
        return self.o_dn + self.n_sites * self.n_steps

    @property
    def o_mp(self) -> int:
        """Reassignment move-in variables (replanning only)."""
        return self.o_m + (1 if self.peak else 0)

    @property
    def o_g(self) -> int:
        """Grid-import variables (priced problems only)."""
        base = self.o_mp
        if self.reassign:
            base += 2 * self.n_apps * self.n_sites
        return base

    @property
    def n_vars(self) -> int:
        base = self.o_g
        if self.grid:
            base += self.n_sites * self.n_steps
        return base

    def y(self, a: int, s: int) -> int:
        return a * self.n_sites + s

    def u(self, s: int, t: int) -> int:
        return self.o_u + s * self.n_steps + t

    def dp(self, s: int, t: int) -> int:
        return self.o_dp + s * self.n_steps + t

    def dn(self, s: int, t: int) -> int:
        return self.o_dn + s * self.n_steps + t

    def mp(self, a: int, s: int) -> int:
        return self.o_mp + a * self.n_sites + s

    def mn(self, a: int, s: int) -> int:
        return self.o_mp + self.n_apps * self.n_sites + (
            a * self.n_sites + s
        )

    def g(self, s: int, t: int) -> int:
        return self.o_g + s * self.n_steps + t


@dataclass(frozen=True)
class WindowTiming:
    """Telemetry for one decomposition window (or sub-solve).

    ``gap`` is the certified relax-and-fix optimality gap of that
    window's solve (``None`` when the window solved monolithically).
    """

    index: int
    start: int
    steps: int
    n_apps: int
    assembly_s: float
    solve_s: float
    n_rows: int
    n_cols: int
    nnz: int
    objective: float | None = None
    gap: float | None = None
    warm_start_used: bool = False


@dataclass(frozen=True)
class MIPTimings:
    """Assembly/solve split of the last :meth:`MIPScheduler.schedule`.

    ``warm_start_used`` is True when the solve was seeded with the
    previous round's solution through the direct HiGHS bindings (the
    shape matched and HiGHS accepted the seed).

    For decomposed solves (``MIPScheduler(decompose=...)``):

    - ``mode`` is ``"window"`` or ``"relax-fix"`` (``"monolithic"``
      otherwise); ``windows`` holds one :class:`WindowTiming` per
      solved window, and the top-level ``assembly_s`` / ``solve_s`` /
      ``n_rows`` / ``n_cols`` / ``nnz`` are sums over the windows.
    - ``objective`` is the O1(+anchor) value of the returned placement
      (the solver objective for monolithic solves).
    - ``gap`` is the certified LP-bound gap of a relax-and-fix solve.
    - ``fell_back`` flags that the decomposed path gave up and the
      result came from a full monolithic solve.
    """

    assembly_s: float
    solve_s: float
    n_rows: int
    n_cols: int
    nnz: int
    warm_start_used: bool = False
    objective: float | None = None
    mode: str = "monolithic"
    gap: float | None = None
    fell_back: bool = False
    windows: tuple[WindowTiming, ...] = ()


def _active_mask(problem: SchedulingProblem) -> np.ndarray:
    """(n_apps, n_steps) bool: app ``a`` runs during step ``t``."""
    n_steps = problem.grid.n
    arrivals = np.array(
        [app.arrival_step for app in problem.apps], dtype=np.int64
    )
    ends = np.array([app.end_step for app in problem.apps], dtype=np.int64)
    t = np.arange(n_steps)
    return (t >= arrivals[:, None]) & (t < ends[:, None])


def _capacity_matrix(problem: SchedulingProblem) -> np.ndarray:
    """(n_sites, n_steps) float: forecast capacity per site per step."""
    return np.stack(
        [
            np.asarray(site.capacity_cores, dtype=float)
            for site in problem.sites
        ]
    )


def _allocation_cap_matrix(
    problem: SchedulingProblem,
    allocation_cap: Mapping[str, np.ndarray] | None,
) -> np.ndarray:
    """(n_sites, n_steps) float: allocated-core cap per site per step."""
    n_steps = problem.grid.n
    caps = np.empty((len(problem.sites), n_steps))
    for s, site in enumerate(problem.sites):
        if allocation_cap is not None:
            caps[s] = np.asarray(allocation_cap[site.name], dtype=float)
        else:
            caps[s] = problem.utilization_cap * site.total_cores
    return caps


def _boundary_displacement(
    problem: SchedulingProblem,
    initial_displacement: Mapping[str, float] | None,
) -> np.ndarray:
    """(n_sites,) float: displacement carried in from before step 0."""
    u0 = np.zeros(len(problem.sites))
    if initial_displacement is not None:
        for s, site in enumerate(problem.sites):
            value = float(initial_displacement.get(site.name, 0.0))
            if value < 0:
                raise SolverError(
                    f"initial displacement for {site.name} must be"
                    f" >= 0: {value}"
                )
            u0[s] = value
    return u0


def _assemble(
    problem: SchedulingProblem,
    layout: _Layout,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
    initial_displacement: Mapping[str, float] | None = None,
) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Vectorized constraint assembly.

    Builds numpy row/col/val blocks per constraint family and converts
    once; row numbering matches :func:`_assemble_reference` exactly, and
    no (row, col) pair is emitted twice, so the canonical CSR forms of
    the two builders are identical.

    ``initial_displacement`` is the decomposition seam state: the C3
    row at ``t == 0`` becomes ``d+ - d- - u[s,0] = -u_prev[s]``, so
    step 0 is charged only for the displacement *change* relative to
    the carried-in boundary value.
    """
    apps = problem.apps
    sites = problem.sites
    A, S, T = layout.n_apps, layout.n_sites, layout.n_steps
    ST = S * T

    active = _active_mask(problem)
    stable_cpv = np.array(
        [app.vm_type.cores * app.stable_fraction for app in apps]
    )
    total_cpv = np.array([float(app.vm_type.cores) for app in apps])
    vm_counts = np.array([float(app.vm_count) for app in apps])
    s_idx = np.arange(S, dtype=np.int64)
    st_idx = np.arange(ST, dtype=np.int64)
    bpc_gb = problem.bytes_per_core / 1e9

    row_blocks: list[np.ndarray] = []
    col_blocks: list[np.ndarray] = []
    val_blocks: list[np.ndarray] = []
    lb_blocks: list[np.ndarray] = []
    ub_blocks: list[np.ndarray] = []

    def emit(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        row_blocks.append(np.asarray(rows, dtype=np.int64))
        col_blocks.append(np.asarray(cols, dtype=np.int64))
        val_blocks.append(np.asarray(vals, dtype=float))

    # (C1) every app fully placed: rows [0, A).
    emit(
        np.repeat(np.arange(A, dtype=np.int64), S),
        np.arange(A * S, dtype=np.int64),
        np.ones(A * S),
    )
    lb_blocks.append(vm_counts)
    ub_blocks.append(vm_counts)

    # (C2) displacement lower bound: rows [A, A + S*T), row A + s*T + t.
    # With grid pricing, bought cores g[s,t] relax the bound one for
    # one: u + g - stable_load >= -capacity + background.
    r2 = A
    emit(r2 + st_idx, layout.o_u + st_idx, np.ones(ST))
    if layout.grid:
        emit(r2 + st_idx, layout.o_g + st_idx, np.ones(ST))
    a2, t2 = np.nonzero(active & (stable_cpv > 0)[:, None])
    if a2.size:
        emit(
            (r2 + s_idx[:, None] * T + t2[None, :]).ravel(),
            (a2[None, :] * S + s_idx[:, None]).ravel(),
            np.tile(-stable_cpv[a2], S),
        )
    capacity = _capacity_matrix(problem)
    background = np.zeros((S, T))
    if stable_background is not None:
        for s, site in enumerate(sites):
            background[s] = np.asarray(
                stable_background[site.name], dtype=float
            )
    lb_blocks.append((-capacity + background).ravel())
    ub_blocks.append(np.full(ST, np.inf))

    # (C3) traffic decomposition: rows [A + S*T, A + 2*S*T).
    r3 = A + ST
    emit(r3 + st_idx, layout.o_dp + st_idx, np.ones(ST))
    emit(r3 + st_idx, layout.o_dn + st_idx, -np.ones(ST))
    emit(r3 + st_idx, layout.o_u + st_idx, -np.ones(ST))
    has_prev = (st_idx % T) != 0
    prev_idx = st_idx[has_prev]
    emit(
        r3 + prev_idx, layout.o_u + prev_idx - 1, np.ones(prev_idx.size)
    )
    bound3 = np.zeros(ST)
    bound3[s_idx * T] = -_boundary_displacement(
        problem, initial_displacement
    )
    lb_blocks.append(bound3)
    ub_blocks.append(bound3.copy())

    # (C4) allocated cores within the cap: one row per site per step
    # with at least one active app (rank maps step -> row offset).
    r4 = A + 2 * ST
    t_active = np.flatnonzero(active.any(axis=0))
    n_act = t_active.size
    if n_act:
        rank = np.empty(T, dtype=np.int64)
        rank[t_active] = np.arange(n_act, dtype=np.int64)
        a4, t4 = np.nonzero(active)
        emit(
            (r4 + s_idx[:, None] * n_act + rank[t4][None, :]).ravel(),
            (a4[None, :] * S + s_idx[:, None]).ravel(),
            np.tile(total_cpv[a4], S),
        )
        caps = _allocation_cap_matrix(problem, allocation_cap)
        lb_blocks.append(np.full(S * n_act, -np.inf))
        ub_blocks.append(caps[:, t_active].ravel())
    r5 = r4 + S * n_act

    # (C5) peak bound: rows [r5, r5 + S*T) when the O2 term is on.
    if layout.peak:
        emit(r5 + st_idx, layout.o_dp + st_idx, np.full(ST, bpc_gb))
        emit(r5 + st_idx, layout.o_dn + st_idx, np.full(ST, bpc_gb))
        emit(
            r5 + st_idx,
            np.full(ST, layout.o_m, dtype=np.int64),
            -np.ones(ST),
        )
        lb_blocks.append(np.full(ST, -np.inf))
        ub_blocks.append(np.zeros(ST))
    r6 = r5 + (ST if layout.peak else 0)

    # (C6) reassignment decomposition: rows [r6, r6 + A*S).
    if layout.reassign:
        as_idx = np.arange(A * S, dtype=np.int64)
        emit(r6 + as_idx, as_idx, np.ones(A * S))
        emit(r6 + as_idx, layout.o_mp + as_idx, -np.ones(A * S))
        emit(r6 + as_idx, layout.o_mp + A * S + as_idx, np.ones(A * S))
        prev_arr = np.zeros((A, S))
        for a, app in enumerate(apps):
            prev = previous_assignment.get(app.app_id, {})
            if prev:
                for s, site in enumerate(sites):
                    prev_arr[a, s] = float(prev.get(site.name, 0))
        lb_blocks.append(prev_arr.ravel())
        ub_blocks.append(prev_arr.ravel())
    r7 = r6 + (A * S if layout.reassign else 0)

    # (C7) per-site grid energy budget: rows [r7, r7 + S), one per
    # site — sum_t g[s,t] * step_hours / cores_per_mw[s] <= budget.
    if layout.grid:
        gp = problem.grid_pricing
        mwh_per_core = np.array(
            [gp.step_hours / gp.cores_per_mw[site.name] for site in sites]
        )
        emit(
            np.repeat(r7 + s_idx, T),
            layout.o_g + st_idx,
            np.repeat(mwh_per_core, T),
        )
        lb_blocks.append(np.full(S, -np.inf))
        ub_blocks.append(
            np.array([gp.budget_mwh[site.name] for site in sites])
        )
    n_rows = r7 + (S if layout.grid else 0)

    matrix = sparse.csr_matrix(
        (
            np.concatenate(val_blocks),
            (np.concatenate(row_blocks), np.concatenate(col_blocks)),
        ),
        shape=(n_rows, layout.n_vars),
    )
    return matrix, np.concatenate(lb_blocks), np.concatenate(ub_blocks)


def _assemble_reference(
    problem: SchedulingProblem,
    layout: _Layout,
    allocation_cap: Mapping[str, np.ndarray] | None,
    stable_background: Mapping[str, np.ndarray] | None,
    previous_assignment: Mapping[int, Mapping[str, int]] | None,
    initial_displacement: Mapping[str, float] | None = None,
) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Per-coefficient loop assembly (the original implementation).

    Kept as the oracle for the vectorized builder: the golden tests
    assert both produce identical CSR matrices and bounds.
    """
    apps = problem.apps
    sites = problem.sites
    n_steps = layout.n_steps
    bpc_gb = problem.bytes_per_core / 1e9

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # (C1) every app fully placed.
    for a, app in enumerate(apps):
        for s in range(len(sites)):
            add_entry(row, layout.y(a, s), 1.0)
        lb.append(float(app.vm_count))
        ub.append(float(app.vm_count))
        row += 1

    # Active app lists per step (shared by C2 and C4).
    active_at: list[list[int]] = [[] for _ in range(n_steps)]
    for a, app in enumerate(apps):
        for t in range(app.arrival_step, app.end_step):
            active_at[t].append(a)

    stable_cpv = [
        app.vm_type.cores * app.stable_fraction for app in apps
    ]
    total_cpv = [float(app.vm_type.cores) for app in apps]

    # (C2) displacement lower bound:
    #   u[s,t] - sum_a stable_cpv*y[a,s] >= -capacity + background.
    for s, site in enumerate(sites):
        background = None
        if stable_background is not None:
            background = np.asarray(stable_background[site.name])
        for t in range(n_steps):
            add_entry(row, layout.u(s, t), 1.0)
            if layout.grid:
                add_entry(row, layout.g(s, t), 1.0)
            for a in active_at[t]:
                if stable_cpv[a] > 0:
                    add_entry(row, layout.y(a, s), -stable_cpv[a])
            bound = -float(site.capacity_cores[t])
            if background is not None:
                bound += float(background[t])
            lb.append(bound)
            ub.append(np.inf)
            row += 1

    # (C3) traffic decomposition: dp - dn - u_t + u_{t-1} = 0, with
    # the t == 0 row equal to -u_prev when a boundary is carried in.
    u0 = _boundary_displacement(problem, initial_displacement)
    for s in range(len(sites)):
        for t in range(n_steps):
            add_entry(row, layout.dp(s, t), 1.0)
            add_entry(row, layout.dn(s, t), -1.0)
            add_entry(row, layout.u(s, t), -1.0)
            if t > 0:
                add_entry(row, layout.u(s, t - 1), 1.0)
            bound = -float(u0[s]) if t == 0 else 0.0
            lb.append(bound)
            ub.append(bound)
            row += 1

    # (C4) allocated cores within the cap.
    for s, site in enumerate(sites):
        if allocation_cap is not None:
            caps = np.asarray(allocation_cap[site.name], dtype=float)
        else:
            caps = np.full(
                n_steps, problem.utilization_cap * site.total_cores
            )
        for t in range(n_steps):
            if not active_at[t]:
                continue
            for a in active_at[t]:
                add_entry(row, layout.y(a, s), total_cpv[a])
            lb.append(-np.inf)
            ub.append(float(caps[t]))
            row += 1

    # (C5) peak bound.
    if layout.peak:
        for s in range(len(sites)):
            for t in range(n_steps):
                add_entry(row, layout.dp(s, t), bpc_gb)
                add_entry(row, layout.dn(s, t), bpc_gb)
                add_entry(row, layout.o_m, -1.0)
                lb.append(-np.inf)
                ub.append(0.0)
                row += 1

    # (C6) reassignment decomposition for replanning:
    #   y[a,s] - m+[a,s] + m-[a,s] = prev[a,s].
    if layout.reassign:
        names = [site.name for site in sites]
        for a, app in enumerate(apps):
            prev = previous_assignment.get(app.app_id, {})
            for s, name in enumerate(names):
                add_entry(row, layout.y(a, s), 1.0)
                add_entry(row, layout.mp(a, s), -1.0)
                add_entry(row, layout.mn(a, s), 1.0)
                previous = float(prev.get(name, 0))
                lb.append(previous)
                ub.append(previous)
                row += 1

    # (C7) per-site grid energy budget.
    if layout.grid:
        gp = problem.grid_pricing
        for s, site in enumerate(sites):
            mwh_per_core = gp.step_hours / gp.cores_per_mw[site.name]
            for t in range(n_steps):
                add_entry(row, layout.g(s, t), mwh_per_core)
            lb.append(-np.inf)
            ub.append(float(gp.budget_mwh[site.name]))
            row += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, layout.n_vars)
    )
    return matrix, np.array(lb), np.array(ub)


@dataclass
class _Model:
    """One assembled MIP instance: matrix, bounds, objective, types."""

    layout: _Layout
    matrix: sparse.csr_matrix
    lb: np.ndarray
    ub: np.ndarray
    c: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape


class MIPScheduler:
    """O1 (total) site selection, with optional O2 (peak) term.

    Args:
        peak_weight: Weight of the peak-overhead objective O2.  Zero
            gives the paper's *MIP*; a positive weight gives *MIP-peak*.
        integer_vms: Solve VM counts as integers (True, default) or
            relax to continuous and round (faster, near-identical
            results at the paper's scales).
        time_limit_s: HiGHS wall-clock limit; a feasible incumbent is
            accepted when the limit strikes.
        mip_rel_gap: Relative optimality gap at which HiGHS may stop.
        epsilon: Anchor weight keeping u finite (see module docstring).
        warm_start: Seed each solve with the previous solution when the
            problem shape (rows x cols) is unchanged — the replanning
            case, where solve time dominates assembly 13:1 at 200 sites
            and successive rounds differ only in capacity forecasts.
            Needs the ``highspy`` bindings (``scipy.optimize.milp``
            cannot accept a seed); silently falls back to a cold
            ``milp`` solve when they are missing, the shape changed, or
            HiGHS rejects the seed.  :attr:`MIPTimings.warm_start_used`
            reports what actually happened.
        decompose: Optional decomposition strategy for large instances:
            a :class:`~repro.sched.decompose.DecomposeSpec` or its
            string form (e.g. ``"window:24,relax-fix,jobs:4"``, see
            :meth:`DecomposeSpec.parse`).  ``None`` (default) solves
            monolithically.

    After each :meth:`schedule` call, :attr:`last_timings` holds the
    assembly/solve wall-clock split (:class:`MIPTimings`).
    """

    def __init__(
        self,
        peak_weight: float = 0.0,
        integer_vms: bool = True,
        time_limit_s: float = 120.0,
        mip_rel_gap: float = 1e-3,
        epsilon: float = 1e-6,
        warm_start: bool = False,
        decompose: "DecomposeSpec | str | None" = None,
    ):
        if peak_weight < 0:
            raise SolverError(f"peak weight must be >= 0: {peak_weight}")
        if time_limit_s <= 0:
            raise SolverError(f"time limit must be positive: {time_limit_s}")
        self.peak_weight = peak_weight
        self.integer_vms = integer_vms
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.epsilon = epsilon
        self.warm_start = warm_start
        if isinstance(decompose, str):
            from .decompose import DecomposeSpec

            decompose = DecomposeSpec.parse(decompose)
        self.decompose = decompose
        self.last_timings: MIPTimings | None = None
        # Previous solution vector + the (rows, cols) shape it solved,
        # reused as a HiGHS seed only on an exact shape match.
        self._warm_solution: np.ndarray | None = None
        self._warm_shape: tuple[int, int] | None = None

    # ------------------------------------------------------------------

    def schedule(
        self,
        problem: SchedulingProblem,
        allocation_cap: Mapping[str, np.ndarray] | None = None,
        stable_background: Mapping[str, np.ndarray] | None = None,
        previous_assignment: Mapping[int, Mapping[str, int]]
        | None = None,
        switch_weight: float = 1.0,
        initial_displacement: Mapping[str, float] | None = None,
    ) -> Placement:
        """Solve the site-selection MIP.

        Args:
            problem: Sites (with forecast capacity), apps, bytes/core.
            allocation_cap: Optional per-site *per-step* allocated-core
                caps (defaults to ``utilization_cap * total_cores``);
                used by the rolling scheduler to reserve already-placed
                load.
            stable_background: Optional per-site stable-core load
                already committed by earlier solves; shifts the
                displacement bound.
            previous_assignment: Optional prior placement (app id ->
                site -> VM count) for *replanning* — the paper's "as
                the environment changes ... we need to rerun the
                optimization".  Moving a VM away from its previous site
                costs its memory once, weighted by ``switch_weight``,
                so re-solves only shuffle placements when the predicted
                migration savings exceed the cost of moving.
            switch_weight: Relative weight of reassignment traffic in
                the objective (1.0 = a planned move costs the same as a
                forced migration of the same VM).
            initial_displacement: Optional per-site displaced-core
                count carried in from before step 0 (the decomposition
                seam state); step 0 is then charged only for the
                *change* relative to it.

        Returns:
            A complete placement with the planned per-site displacement
            series attached (used for preemptive execution).
        """
        if switch_weight < 0:
            raise SolverError(
                f"switch weight must be >= 0: {switch_weight}"
            )
        if self.decompose is not None:
            from .decompose import solve_decomposed

            return solve_decomposed(
                self,
                problem,
                allocation_cap=allocation_cap,
                stable_background=stable_background,
                previous_assignment=previous_assignment,
                switch_weight=switch_weight,
                initial_displacement=initial_displacement,
            )
        with obs.timed_span(
            "mip.schedule",
            n_apps=len(problem.apps),
            n_sites=len(problem.sites),
            n_steps=problem.grid.n,
        ):
            return self._schedule_monolithic(
                problem,
                allocation_cap,
                stable_background,
                previous_assignment,
                switch_weight,
                initial_displacement,
            )

    def _schedule_monolithic(
        self,
        problem: SchedulingProblem,
        allocation_cap: Mapping[str, np.ndarray] | None = None,
        stable_background: Mapping[str, np.ndarray] | None = None,
        previous_assignment: Mapping[int, Mapping[str, int]]
        | None = None,
        switch_weight: float = 1.0,
        initial_displacement: Mapping[str, float] | None = None,
    ) -> Placement:
        """One assemble + solve + extract round (no decomposition)."""
        with obs.timed_span("mip.assemble") as assemble_span:
            model = self._build_model(
                problem,
                allocation_cap,
                stable_background,
                previous_assignment,
                switch_weight,
                initial_displacement,
            )
            assemble_span.set(
                n_rows=model.shape[0],
                n_cols=model.shape[1],
                nnz=model.matrix.nnz,
            )

        with obs.timed_span("mip.solve") as solve_span:
            try:
                x, warm_used, status = self._solve_model(model)
            except SolverError:
                self.last_timings = MIPTimings(
                    assembly_s=assemble_span.wall_s,
                    solve_s=solve_span.wall_s,
                    n_rows=model.shape[0],
                    n_cols=model.shape[1],
                    nnz=model.matrix.nnz,
                )
                raise
            solve_span.set(status=status, warm_start=warm_used)
        self.last_timings = MIPTimings(
            assembly_s=assemble_span.wall_s,
            solve_s=solve_span.wall_s,
            n_rows=model.shape[0],
            n_cols=model.shape[1],
            nnz=model.matrix.nnz,
            warm_start_used=warm_used,
            objective=float(model.c @ x),
        )
        return self._extract(problem, model.layout, x)

    def _build_model(
        self,
        problem: SchedulingProblem,
        allocation_cap: Mapping[str, np.ndarray] | None = None,
        stable_background: Mapping[str, np.ndarray] | None = None,
        previous_assignment: Mapping[int, Mapping[str, int]]
        | None = None,
        switch_weight: float = 1.0,
        initial_displacement: Mapping[str, float] | None = None,
    ) -> _Model:
        """Assemble constraints, objective, bounds, and integrality."""
        apps = problem.apps
        sites = problem.sites
        n_steps = problem.grid.n
        layout = _Layout(
            len(apps),
            len(sites),
            n_steps,
            self.peak_weight > 0,
            reassign=previous_assignment is not None,
            grid=problem.grid_pricing is not None,
        )
        bpc_gb = problem.bytes_per_core / 1e9

        matrix, lb, ub = _assemble(
            problem, layout, allocation_cap, stable_background,
            previous_assignment, initial_displacement,
        )

        # Objective.
        c = np.zeros(layout.n_vars)
        c[layout.o_dp : layout.o_dn] = bpc_gb
        c[layout.o_dn : layout.o_dn + len(sites) * n_steps] = bpc_gb
        c[layout.o_u : layout.o_dp] = self.epsilon * bpc_gb
        if layout.peak:
            c[layout.o_m] = self.peak_weight
        if layout.reassign:
            # Moving a VM into a site it wasn't at costs its memory
            # once (m+ counts arrivals; counting one side avoids
            # double-charging the same move).
            move_gb = np.array(
                [app.vm_type.memory_bytes / 1e9 for app in apps]
            )
            n_pairs = layout.n_apps * layout.n_sites
            c[layout.o_mp : layout.o_mp + n_pairs] = (
                switch_weight * np.repeat(move_gb, len(sites))
            )
        if layout.grid:
            # Each bought core-step costs its energy at the spot price
            # plus carbon_weight dollars per kg emitted.
            gp = problem.grid_pricing
            weight_mwh = gp.objective_per_mwh()
            mwh_per_core = np.array(
                [
                    gp.step_hours / gp.cores_per_mw[site.name]
                    for site in sites
                ]
            )
            c[layout.o_g : layout.n_vars] = (
                mwh_per_core[:, None] * weight_mwh[None, :]
            ).ravel()

        # Bounds and integrality.
        lower = np.zeros(layout.n_vars)
        upper = np.full(layout.n_vars, np.inf)
        upper[: layout.o_u] = np.repeat(
            np.array([float(app.vm_count) for app in apps]),
            len(sites),
        )
        if layout.grid:
            # g stays continuous; cap it at the import power limit.
            upper[layout.o_g : layout.n_vars] = np.repeat(
                np.array(
                    [
                        problem.grid_pricing.site_power_cap_cores(
                            site.name
                        )
                        for site in sites
                    ]
                ),
                n_steps,
            )
        integrality = np.zeros(layout.n_vars)
        if self.integer_vms:
            integrality[: layout.o_u] = 1
        return _Model(
            layout, matrix, lb, ub, c, lower, upper, integrality
        )

    def _solve_model(
        self,
        model: _Model,
        relax: bool = False,
        lower: np.ndarray | None = None,
        upper: np.ndarray | None = None,
        window: int | None = None,
    ) -> tuple[np.ndarray, bool, int]:
        """Solve one assembled model; return ``(x, warm_used, status)``.

        Args:
            model: The assembled instance.
            relax: Drop integrality (LP relaxation).
            lower / upper: Variable-bound overrides (relax-and-fix
                passes tightened y bounds here).
            window: Decomposition window index, attached to any
                :class:`SolverError` for diagnosability.

        Raises:
            SolverError: when no feasible solution was produced; carries
                the solver status, the window index, and the problem
                shape.
        """
        integrality = (
            np.zeros(model.layout.n_vars) if relax else model.integrality
        )
        lower = model.lower if lower is None else lower
        upper = model.upper if upper is None else upper
        x: np.ndarray | None = None
        warm_used = False
        if self.warm_start:
            seeded = self._solve_highspy(
                model.c, model.matrix, model.lb, model.ub,
                integrality, lower, upper,
            )
            if seeded is not None:
                x, warm_used = seeded
                status = 0
        if x is None:
            result = milp(
                model.c,
                constraints=LinearConstraint(
                    model.matrix, model.lb, model.ub
                ),
                integrality=integrality,
                bounds=Bounds(lower, upper),
                options={
                    "time_limit": self.time_limit_s,
                    "mip_rel_gap": self.mip_rel_gap,
                },
            )
            status = int(result.status)
            if result.x is None:
                raise SolverError(
                    f"MIP failed: {result.message}",
                    status=status,
                    window=window,
                    shape=model.shape,
                )
            x = result.x
        if self.warm_start:
            self._warm_solution = np.asarray(x, dtype=float)
            self._warm_shape = model.shape
        return np.asarray(x, dtype=float), warm_used, status

    def _solve_highspy(
        self,
        c: np.ndarray,
        matrix: sparse.csr_matrix,
        lb: np.ndarray,
        ub: np.ndarray,
        integrality: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> tuple[np.ndarray, bool] | None:
        """Solve through the direct HiGHS bindings, seeding the stored
        solution when the problem shape matches.

        Returns ``(x, warm_start_used)``, or ``None`` to make the
        caller fall back to a cold :func:`scipy.optimize.milp` solve —
        when ``highspy`` is not installed, the model fails to build, or
        HiGHS does not finish with a feasible solution.  Any exception
        inside the bindings is treated as "fall back", never raised:
        the warm path is an optimization, not a dependency.
        """
        if highspy is None:
            return None
        try:
            n_rows, n_cols = matrix.shape
            csc = matrix.tocsc()
            inf = highspy.kHighsInf
            lp = highspy.HighsLp()
            lp.num_col_ = n_cols
            lp.num_row_ = n_rows
            lp.col_cost_ = np.asarray(c, dtype=float)
            lp.col_lower_ = np.asarray(lower, dtype=float)
            lp.col_upper_ = np.where(np.isfinite(upper), upper, inf)
            lp.row_lower_ = np.where(np.isfinite(lb), lb, -inf)
            lp.row_upper_ = np.where(np.isfinite(ub), ub, inf)
            lp.a_matrix_.format_ = highspy.MatrixFormat.kColwise
            lp.a_matrix_.start_ = csc.indptr
            lp.a_matrix_.index_ = csc.indices
            lp.a_matrix_.value_ = csc.data
            if integrality.any():
                lp.integrality_ = [
                    highspy.HighsVarType.kInteger
                    if flag
                    else highspy.HighsVarType.kContinuous
                    for flag in integrality
                ]
            solver = highspy.Highs()
            solver.setOptionValue("output_flag", False)
            solver.setOptionValue("time_limit", float(self.time_limit_s))
            solver.setOptionValue("mip_rel_gap", float(self.mip_rel_gap))
            if solver.passModel(lp) != highspy.HighsStatus.kOk:
                return None
            warm_used = False
            if (
                self._warm_solution is not None
                and self._warm_shape == (n_rows, n_cols)
            ):
                seed = highspy.HighsSolution()
                seed.value_valid = True
                seed.col_value = list(self._warm_solution)
                warm_used = (
                    solver.setSolution(seed) == highspy.HighsStatus.kOk
                )
            solver.run()
            status = solver.getModelStatus()
            if status not in (
                highspy.HighsModelStatus.kOptimal,
                highspy.HighsModelStatus.kObjectiveBound,
                highspy.HighsModelStatus.kObjectiveTarget,
                highspy.HighsModelStatus.kTimeLimit,
            ):
                return None
            info = solver.getInfo()
            if info.primal_solution_status != (
                highspy.SolutionStatus.kSolutionStatusFeasible
            ):
                return None
            x = np.asarray(solver.getSolution().col_value, dtype=float)
            if x.shape != (n_cols,):
                return None
            return x, warm_used
        except Exception:  # pragma: no cover - binding-version drift
            return None

    def _extract(
        self, problem: SchedulingProblem, layout: _Layout, x: np.ndarray
    ) -> Placement:
        """Turn a solution vector into a validated Placement."""
        assignment: dict[int, dict[str, int]] = {}
        names = problem.site_names
        S = layout.n_sites
        T = layout.n_steps
        for a, app in enumerate(problem.apps):
            raw = x[a * S : (a + 1) * S]
            counts = _round_preserving_sum(raw, app.vm_count)
            assignment[app.app_id] = {
                name: int(count)
                for name, count in zip(names, counts)
                if count > 0
            }
        planned: dict[str, np.ndarray] = {}
        for s, name in enumerate(names):
            series = x[layout.o_u + s * T : layout.o_u + (s + 1) * T]
            planned[name] = np.clip(series, 0.0, None)
        imports: dict[str, np.ndarray] = {}
        if layout.grid:
            gp = problem.grid_pricing
            for s, name in enumerate(names):
                cores = np.clip(
                    x[layout.o_g + s * T : layout.o_g + (s + 1) * T],
                    0.0,
                    None,
                )
                imports[name] = (
                    cores * gp.step_hours / gp.cores_per_mw[name]
                )
        placement = Placement(
            assignment,
            planned,
            preemptive=self.peak_weight > 0,
            planned_grid_import=imports,
        )
        placement.validate_complete(problem)
        return placement


def _round_preserving_sum(raw: np.ndarray, target: int) -> np.ndarray:
    """Round non-negative floats to integers summing exactly to target.

    Floors everything, then hands out the remaining units to the
    largest fractional parts (largest-remainder rounding).  Needed both
    for relaxed solves and to clean up solver tolerance noise.
    """
    raw = np.clip(np.asarray(raw, dtype=float), 0.0, None)
    floors = np.floor(raw + 1e-9).astype(int)
    remainder = int(target - floors.sum())
    if remainder < 0:
        # Solver noise pushed a floor too high; trim from smallest
        # fractional parts.
        order = np.argsort(raw - floors)
        for index in order:
            if remainder == 0:
                break
            take = min(floors[index], -remainder)
            floors[index] -= take
            remainder += take
    elif remainder > 0:
        order = np.argsort(-(raw - floors))
        for index in order[:remainder]:
            floors[index] += 1
        remainder = 0
    return floors


class RollingMIPScheduler:
    """The paper's *MIP-24h*: re-solve O1 daily with fresh forecasts.

    Each day, the apps arriving that day are placed by a MIP whose
    horizon is the next ``window_steps`` and whose capacity comes from
    a forecast issued that morning; earlier placements are frozen and
    enter as background load.

    Args:
        window_steps: Lookahead horizon per solve (one day in paper).
        capacity_provider: Optional callable
            ``(site_name, issue_step, horizon) -> cores array`` giving
            refreshed forecasts; defaults to slicing the problem's own
            capacity series.
        **mip_kwargs: Passed to the per-day :class:`MIPScheduler`.
    """

    def __init__(
        self,
        window_steps: int,
        capacity_provider: Callable[[str, int, int], np.ndarray]
        | None = None,
        **mip_kwargs,
    ):
        if window_steps <= 0:
            raise SolverError(
                f"window must be positive: {window_steps}"
            )
        self.window_steps = window_steps
        self.capacity_provider = capacity_provider
        self.mip_kwargs = mip_kwargs
        #: Per-chunk :class:`MIPTimings` from the last :meth:`schedule`
        #: call, in chunk order (chunks with no arrivals are skipped).
        self.last_chunk_timings: tuple[MIPTimings, ...] = ()

    def schedule(self, problem: SchedulingProblem) -> Placement:
        """Run the rolling solves and merge the placements.

        Note the seam semantics (pinned by the seam tests): committed
        placements carry across chunks as stable/total *background*,
        but the displacement state ``u`` does **not** — every chunk
        starts from ``u = 0`` and re-charges any displacement inherited
        from its predecessor at its first step.  The decomposition
        layer (:mod:`repro.sched.decompose`) carries the boundary ``u``
        instead, which is what makes it objective-exact; this class
        keeps the paper's plain re-solve-daily semantics.
        """
        from .decompose import WindowState, build_window_problem, plan_windows

        state = WindowState(problem)
        # One scheduler serves every chunk so warm-start state (the
        # previous round's solution) survives across re-solves; with
        # warm_start off this is just instance reuse.
        solver = MIPScheduler(**self.mip_kwargs)
        chunk_timings: list[MIPTimings] = []
        for plan in plan_windows(problem.grid.n, self.window_steps):
            built = build_window_problem(
                problem, plan, state,
                capacity_provider=self.capacity_provider,
            )
            if built is None:
                continue
            sub_placement = solver.schedule(
                built.problem,
                allocation_cap=built.caps,
                stable_background=built.backgrounds,
            )
            if solver.last_timings is not None:
                chunk_timings.append(solver.last_timings)
            state.commit(built, sub_placement)
        self.last_chunk_timings = tuple(chunk_timings)
        placement = Placement(
            dict(state.assignment),
            planned_grid_import=(
                {
                    name: series.copy()
                    for name, series in state.grid_import.items()
                }
                if problem.grid_pricing is not None
                else {}
            ),
        )
        placement.validate_complete(problem)
        return placement
