"""repro — Virtual Battery: renewable-powered data centers.

A full reproduction of "Redesigning Data Centers for Renewable Energy"
(HotNets '21).  The library covers the paper's whole stack:

- :mod:`repro.traces` — synthetic solar/wind generation standing in for
  the ELIA/EMHIRES datasets, with spatially-correlated multi-site
  synthesis (§2.2).
- :mod:`repro.forecast` — horizon-calibrated power forecasting (Fig 5).
- :mod:`repro.workload` — Azure-like VM arrivals and application
  batches.
- :mod:`repro.cluster` — the single-site datacenter simulator behind
  §3's migration-overhead study (Fig 4).
- :mod:`repro.multisite` — multi-VB aggregation, stable-energy
  accounting, grid purchases, latency graph (§2.3, Fig 3).
- :mod:`repro.sched` — the power & network aware co-scheduler: greedy
  baseline, MIP / MIP-24h / MIP-peak (§3.1, Table 1, Fig 7).
- :mod:`repro.sim` — executing placements against actual generation.
- :mod:`repro.experiments` — declarative scenarios, the cached staged
  runner, and parallel scenario batches.
- :mod:`repro.obs` — span tracing and metrics behind every pipeline
  (``$REPRO_TRACE``, ``repro report``).
- :mod:`repro.analysis` — CDFs, percentile ratios, text tables.

Quickstart::

    from datetime import datetime
    from repro import grid_days, synthesize_solar

    grid = grid_days(datetime(2020, 5, 1), days=7)
    trace = synthesize_solar(grid, seed=42)
    print(trace.cov(), trace.stable_energy_mwh())
"""

from .errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    ForecastError,
    ReproError,
    SchedulingError,
    SolverError,
    TimeGridError,
    TraceError,
)
from .units import TimeGrid, grid_days
from .traces import (
    PowerTrace,
    Site,
    SiteCatalog,
    SolarConfig,
    WindConfig,
    default_european_catalog,
    synthesize_catalog_traces,
    synthesize_solar,
    synthesize_wind,
)
from .forecast import (
    ClimatologyForecaster,
    Forecast,
    NoisyOracleForecaster,
    PersistenceForecaster,
)
from .workload import (
    Application,
    AzureWorkloadConfig,
    VMClass,
    VMRequest,
    VMType,
    generate_applications,
    generate_vm_requests,
    workload_matched_to_power,
)
from .cluster import (
    ClusterSpec,
    Datacenter,
    DatacenterConfig,
    ServerSpec,
    SimulationResult,
)
from .multisite import (
    GridPurchase,
    SiteGraph,
    VBSite,
    build_vb_sites,
    combination_report,
    stabilize_with_purchase,
)
from .sched import (
    CoScheduler,
    GreedyScheduler,
    GridPricing,
    MIPScheduler,
    Placement,
    RollingMIPScheduler,
    SchedulingProblem,
    SiteCapacity,
    problem_from_forecasts,
)
from .sim import (
    SUMMARY_SCHEMA,
    ExecutionResult,
    PolicyComparison,
    execute_placement,
    simulate,
    summarize_transfers,
)
from . import obs
from .supply import (
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
    SupplySpec,
    SupplyStack,
)
from .experiments import (
    ArtifactCache,
    Runner,
    RunResult,
    Scenario,
    run_scenario,
    run_scenarios,
)

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "TimeGridError",
    "TraceError",
    "ForecastError",
    "CapacityError",
    "AllocationError",
    "SchedulingError",
    "SolverError",
    "ConfigurationError",
    "TimeGrid",
    "grid_days",
    "PowerTrace",
    "Site",
    "SiteCatalog",
    "SolarConfig",
    "WindConfig",
    "default_european_catalog",
    "synthesize_catalog_traces",
    "synthesize_solar",
    "synthesize_wind",
    "Forecast",
    "NoisyOracleForecaster",
    "PersistenceForecaster",
    "ClimatologyForecaster",
    "Application",
    "AzureWorkloadConfig",
    "VMClass",
    "VMRequest",
    "VMType",
    "generate_applications",
    "generate_vm_requests",
    "workload_matched_to_power",
    "ClusterSpec",
    "Datacenter",
    "DatacenterConfig",
    "ServerSpec",
    "SimulationResult",
    "GridPurchase",
    "SiteGraph",
    "VBSite",
    "build_vb_sites",
    "combination_report",
    "stabilize_with_purchase",
    "CoScheduler",
    "GreedyScheduler",
    "GridPricing",
    "MIPScheduler",
    "Placement",
    "RollingMIPScheduler",
    "SchedulingProblem",
    "SiteCapacity",
    "problem_from_forecasts",
    "ExecutionResult",
    "PolicyComparison",
    "SUMMARY_SCHEMA",
    "execute_placement",
    "simulate",
    "summarize_transfers",
    "obs",
    "BatteryDispatch",
    "GridFirmPower",
    "PricedGridPower",
    "SupplySpec",
    "SupplyStack",
    "ArtifactCache",
    "Runner",
    "RunResult",
    "Scenario",
    "run_scenario",
    "run_scenarios",
    "__version__",
]
