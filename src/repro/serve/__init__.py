"""Digital-twin service layer: live, checkpointable simulations.

:class:`SimSession` is the engine (bounded advance, checkpoint /
restore / fork, injections); :class:`SessionRegistry` manages many
concurrent sessions; :func:`create_app` wraps a registry in a
dependency-free ASGI application (``repro serve`` runs it under any
ASGI server, e.g. uvicorn).
"""

from .session import SimSession
from .registry import SessionRegistry
from .app import create_app

__all__ = ["SimSession", "SessionRegistry", "create_app"]
