"""Session registry: many concurrent live sessions behind one map.

The HTTP layer is a thin shell over this — every endpoint resolves a
session id here and delegates to the :class:`~repro.serve.session.
SimSession`.  A lock guards the map itself (create / delete / list);
per-session operations rely on each session being driven by one caller
at a time, which the pure-ASGI app guarantees by running handlers to
completion per request.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from ..errors import SessionError
from ..experiments.runner import fleet_sites_for_scenario
from ..experiments.scenario import SCHEMA_VERSION, Scenario
from ..sim.fleet import FleetSite
from .session import SimSession

__all__ = ["SessionRegistry"]


def _fill_scenario_defaults(data: dict) -> dict:
    """Default the optional sections of an API scenario spec.

    ``Scenario.from_dict`` is strict because it round-trips
    ``to_dict`` output; hand-written ``POST /sessions`` specs get the
    dataclass defaults for anything they omit (name / sites / grid
    stay required).
    """
    filled = dict(data)
    filled.setdefault("schema", SCHEMA_VERSION)
    filled.setdefault("workload", {})
    filled.setdefault("forecaster", {})
    filled.setdefault("compute", {})
    filled.setdefault("seed", 0)
    return filled


class SessionRegistry:
    """Creates, stores, and resolves live :class:`SimSession` objects.

    Ids are dense (``s0001``, ``s0002``, ...) so audit logs and tests
    read deterministically; callers may also supply their own id.
    """

    def __init__(self):
        self._sessions: dict[str, SimSession] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- id plumbing ---------------------------------------------------

    def _new_id(self) -> str:
        self._counter += 1
        return f"s{self._counter:04d}"

    def _claim(self, session_id: str | None) -> str:
        with self._lock:
            if session_id is None:
                session_id = self._new_id()
                while session_id in self._sessions:
                    session_id = self._new_id()
            elif session_id in self._sessions:
                raise SessionError(
                    f"session id already in use: {session_id!r}"
                )
            # Reserve the slot under the lock; the caller fills it.
            self._sessions[session_id] = None  # type: ignore[assignment]
            return session_id

    def _install(self, session_id: str, session: SimSession) -> SimSession:
        session.session_id = session_id
        with self._lock:
            self._sessions[session_id] = session
        return session

    def _discard(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    # -- lifecycle -----------------------------------------------------

    def create(
        self,
        sites: FleetSite | Sequence[FleetSite],
        *,
        engine: str = "event",
        record_events: bool = True,
        session_id: str | None = None,
        seed: int = 0,
    ) -> SimSession:
        """Register a new session over prepared fleet sites."""
        session_id = self._claim(session_id)
        try:
            session = SimSession(
                sites,
                engine=engine,
                record_events=record_events,
                session_id=session_id,
                seed=seed,
            )
        except BaseException:
            self._discard(session_id)
            raise
        return self._install(session_id, session)

    def create_from_scenario(
        self,
        scenario: Scenario | dict,
        *,
        engine: str = "event",
        record_events: bool = True,
        session_id: str | None = None,
        seed: int = 0,
    ) -> SimSession:
        """Register a session over a scenario's materialized fleet.

        Accepts a :class:`~repro.experiments.Scenario` or its
        ``to_dict`` form (what ``POST /sessions`` receives as JSON);
        sites come from :func:`~repro.experiments.runner.
        fleet_sites_for_scenario` — the exact fleet the batch Runner
        would simulate.
        """
        if isinstance(scenario, dict):
            scenario = Scenario.from_dict(
                _fill_scenario_defaults(scenario)
            )
        return self.create(
            fleet_sites_for_scenario(scenario),
            engine=engine,
            record_events=record_events,
            session_id=session_id,
            seed=seed,
        )

    def restore(
        self, blob: bytes, session_id: str | None = None
    ) -> SimSession:
        """Register a session rebuilt from a checkpoint blob."""
        session_id = self._claim(session_id)
        try:
            session = SimSession.restore(blob, session_id=session_id)
        except BaseException:
            self._discard(session_id)
            raise
        return self._install(session_id, session)

    def fork(
        self, session_id: str, new_id: str | None = None
    ) -> SimSession:
        """Register an independent copy of a live session."""
        parent = self.get(session_id)
        new_id = self._claim(new_id)
        try:
            clone = parent.fork(session_id=new_id)
        except BaseException:
            self._discard(new_id)
            raise
        return self._install(new_id, clone)

    # -- resolution ----------------------------------------------------

    def get(self, session_id: str) -> SimSession:
        """Resolve an id; unknown ids raise :class:`SessionError`."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session: {session_id!r}")
        return session

    def delete(self, session_id: str) -> None:
        """Forget a session (its memory goes with it)."""
        with self._lock:
            if self._sessions.pop(session_id, None) is None:
                raise SessionError(f"unknown session: {session_id!r}")

    def ids(self) -> list[str]:
        with self._lock:
            return [k for k, v in self._sessions.items() if v is not None]

    def __len__(self) -> int:
        return len(self.ids())

    def __iter__(self) -> Iterable[SimSession]:
        with self._lock:
            live = [v for v in self._sessions.values() if v is not None]
        return iter(live)
