"""Checkpointable, resumable simulation sessions.

A :class:`SimSession` is the engine underneath the ``repro.serve``
digital-twin API: one or many sites prepared through
:meth:`~repro.cluster.Datacenter.prepare_run` and advanced *in bounded
segments* instead of one shot — ``advance(n_steps)`` moves every site's
event engine forward by a wall of grid steps, ``status()`` projects the
partially-filled columns, and ``checkpoint()`` / :meth:`SimSession.
restore` / ``fork()`` serialize the whole mid-flight state (engine
cursors, VM object graph, supply-dispatcher lanes, partially-filled
:class:`~repro.cluster.StepColumns`, the injection RNG) so an
interrupted run resumes golden-identical to an uninterrupted one.

Why segmenting preserves bit-identity:

* **Open loop.**  The bounded loop replays the event engine's exact
  wake discovery (arrivals, finish heap, expiry heap, budget-crossing
  scans) with windows clamped at the segment boundary.  Every live
  event inside the segment is processed before the boundary, so heap
  entries at or below it are provably stale; crossing scans depend only
  on state that cannot change across a skipped window, so a scan split
  at the boundary finds the same first hit.  Forward-fills commit the
  same carried state either way.
* **Closed loop.**  :meth:`~repro.cluster.Datacenter.
  advance_closed_event` clamps dispatch windows at the boundary and
  re-enters by dispatching the boundary step as a wake — harmless by
  the engine's core invariant (a wake at a provably no-op step changes
  nothing) and bit-identical because the scalar dispatch, the span
  kernel, and the vectorized pinned fill are already pinned equal.

Failure/supply injections (:meth:`SimSession.inject`) queue until the
next ``advance`` and are recorded in the append-only :attr:`audit` log,
following the RackMind dc-simulator pattern.
"""

from __future__ import annotations

import pickle
from typing import Sequence

import numpy as np

from .. import obs
from ..cluster import Datacenter, SimulationResult
from ..cluster.datacenter import _ClosedEventSite
from ..errors import SessionError
from ..sim.fleet import FleetSite
from ..supply.components import (
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
)

__all__ = ["SimSession", "SessionError"]

#: Version tag leading every checkpoint blob; bumped on layout changes.
CHECKPOINT_FORMAT = "repro-session/1"

#: Injection kinds :meth:`SimSession.inject` accepts.
INJECT_KINDS = ("battery_soc", "grid_budget", "blackout", "spot_price")


class _SiteEngine:
    """One site's bounded incremental event engine.

    Wraps a :class:`Datacenter` plus its prepared
    :class:`~repro.cluster.EngineState` behind ``advance_to(until)``.
    Both session engines drive the same wake protocol the batch
    engines use — the object model through
    :class:`~repro.cluster.datacenter._ClosedEventSite`, the SoA
    :class:`~repro.cluster.kernel.StepKernel` natively.
    """

    def __init__(self, name, datacenter, requests, engine):
        self.name = name
        self.dc = datacenter
        self.engine = engine
        self.state = datacenter.prepare_run(
            requests, kernel=engine == "soa"
        )
        if engine == "soa":
            self.site = self.state.kernel
        else:
            self.site = _ClosedEventSite(datacenter, self.state)
        #: Next step not yet executed (== every step below is final).
        self.cursor = 0
        self._precomp = (
            datacenter.closed_span_precompute(self.state.dispatcher)
            if self.state.closed
            else None
        )

    # -- cursor plumbing over the two engine backends ------------------

    def _last(self) -> int:
        if self.engine == "soa":
            return self.state.kernel.last
        return self.state.last

    def _set_last(self, step: int) -> None:
        if self.engine == "soa":
            self.state.kernel.last = step
        else:
            self.state.last = step

    def carried(self) -> tuple[int, int, int]:
        """(running, allocated, queue length) right now."""
        return self.site.carried_state()

    # -- bounded advance ----------------------------------------------

    def advance_to(self, until: int) -> None:
        """Execute steps ``[cursor, until)``; identical to one shot."""
        until = min(until, self.state.n)
        if until <= self.cursor:
            return
        if self.state.closed:
            self.state.processed += self.dc.advance_closed_event(
                self.site, self.state.cols, self.state.dispatcher,
                self.cursor, until, self._precomp,
            )
        else:
            self._advance_open(until)
        self.cursor = until

    def _advance_open(self, until: int) -> None:
        """The open-loop event loop, clamped at ``until``.

        Mirrors :meth:`Datacenter._run_event` /
        :meth:`StepKernel.run_event` wake for wake; on hitting the
        boundary the last-processed cursor moves to ``until - 1`` so a
        later segment resumes with the identical window scan suffix.
        """
        state = self.state
        site = self.site
        budgets = state.budgets
        cols = state.cols
        last = self._last()
        while True:
            nxt = site.next_event()
            window_start = last + 1
            stop = nxt if nxt < until else until
            if window_start < stop:
                running, upper = site.wake_bounds()
                window = budgets[window_start:stop]
                wake = window < running if running > 0 else None
                if upper is not None:
                    above = window >= upper
                    wake = above if wake is None else (wake | above)
                hit_step = None
                if wake is not None:
                    hit = int(np.argmax(wake))
                    if wake[hit]:
                        hit_step = window_start + hit
                fill_end = stop if hit_step is None else hit_step
                if window_start < fill_end:
                    run_c, alloc_c, qlen = site.carried_state()
                    cols.running_cores[window_start:fill_end] = run_c
                    cols.allocated_cores[window_start:fill_end] = alloc_c
                    cols.queue_length[window_start:fill_end] = qlen
                if hit_step is not None:
                    nxt = hit_step
            if nxt >= until:
                self._set_last(until - 1)
                return
            site.step_wake(nxt, int(budgets[nxt]))
            state.processed += 1
            last = nxt

    # -- injections ----------------------------------------------------

    def set_battery_soc(self, soc_mwh=None, soc_fraction=None) -> int:
        """Pin every battery's SoC; returns batteries touched."""
        if not self.state.closed:
            return 0
        dispatcher = self.state.dispatcher
        touched = 0
        for component, st in zip(
            dispatcher.components, dispatcher.states
        ):
            if not isinstance(component, BatteryDispatch):
                continue
            value = (
                soc_fraction * component.capacity_mwh
                if soc_mwh is None
                else soc_mwh
            )
            st.soc_mwh = min(max(float(value), 0.0), component.capacity_mwh)
            touched += 1
        return touched

    def set_grid_budget(self, remaining_mwh=None, delta_mwh=None) -> int:
        """Reset or top up grid budgets; returns grids touched."""
        if not self.state.closed:
            return 0
        dispatcher = self.state.dispatcher
        touched = 0
        for component, st in zip(
            dispatcher.components, dispatcher.states
        ):
            if not isinstance(component, GridFirmPower):
                continue
            value = (
                st.remaining_mwh + delta_mwh
                if remaining_mwh is None
                else remaining_mwh
            )
            st.remaining_mwh = max(float(value), 0.0)
            touched += 1
        return touched

    def spot_price_shock(
        self,
        start: int,
        stop: int,
        scale: float | None = None,
        delta_per_mwh: float | None = None,
    ) -> int:
        """Scale and/or shift spot prices over ``[start, stop)``.

        Closed loop only: every :class:`PricedGridPower` component's
        price series mutates in place, the dispatcher's caches
        invalidate, and the span precompute rebuilds, so threshold/dvb
        policies see the shock from the next dispatch on.  Returns
        priced components touched.
        """
        state = self.state
        if not state.closed:
            return 0
        stop = min(stop, state.n)
        start = min(max(start, self.cursor), stop)
        if start >= stop:
            return 0
        dispatcher = state.dispatcher
        touched = 0
        for component in dispatcher.components:
            if not isinstance(component, PricedGridPower):
                continue
            prices = component.price_per_mwh
            if prices is None:
                continue
            if scale is not None:
                prices[start:stop] *= float(scale)
            if delta_per_mwh is not None:
                prices[start:stop] += float(delta_per_mwh)
            touched += 1
        if touched:
            dispatcher.invalidate_base_cache()
            self._precomp = self.dc.closed_span_precompute(dispatcher)
        return touched

    def blackout(self, start: int, stop: int) -> int:
        """Zero the site's power over ``[start, stop)``; returns width.

        Closed loop: the trace values themselves go dark (the
        dispatcher's caches and the session's span precompute are
        rebuilt), so batteries drain into the outage.  Open loop: the
        precomputed delivered/budget series go dark directly.
        """
        state = self.state
        stop = min(stop, state.n)
        start = min(max(start, self.cursor), stop)
        if start >= stop:
            return 0
        if state.closed:
            self.dc.power_trace.values[start:stop] = 0.0
            dispatcher = state.dispatcher
            dispatcher.invalidate_base_cache()
            self._precomp = self.dc.closed_span_precompute(dispatcher)
        else:
            state.budgets[start:stop] = 0
            state.cols.norm_power[start:stop] = 0.0
            state.cols.core_budget[start:stop] = 0
            if state.evaluation is not None:
                state.evaluation.delivered[start:stop] = 0.0
        return stop - start


class SimSession:
    """A live, checkpointable simulation over one or many sites.

    Args:
        sites: One :class:`~repro.sim.fleet.FleetSite` or a sequence of
            them.  Sites advance in lockstep; shorter grids simply
            finish earlier.
        engine: ``"event"`` (object model, default) or ``"soa"`` (the
            columnar step kernel).  Either is golden-identical to every
            batch engine.
        record_events: Keep per-VM event logs (default on — sessions
            are interactive, the audit trail is the point).
        session_id: Label used in audit entries and ``obs`` spans.
        seed: Seed of the session's injection RNG (random blackout
            targets); its state rides along in checkpoints.
    """

    def __init__(
        self,
        sites: FleetSite | Sequence[FleetSite],
        *,
        engine: str = "event",
        record_events: bool = True,
        session_id: str = "session",
        seed: int = 0,
    ):
        if isinstance(sites, FleetSite):
            sites = [sites]
        sites = list(sites)
        if not sites:
            raise SessionError("a session needs at least one site")
        if engine not in ("event", "soa"):
            raise SessionError(
                f"unknown session engine: {engine!r}"
                " (expected 'event' or 'soa')"
            )
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise SessionError(f"duplicate site names: {names}")
        self.session_id = session_id
        self.engine = engine
        self._sites = []
        for site in sites:
            datacenter = Datacenter(
                site.config,
                site.trace,
                supply=site.supply,
                supply_mode=site.supply_mode,
                record_events=record_events,
            )
            self._sites.append(
                _SiteEngine(site.name, datacenter, site.requests, engine)
            )
        self.n = max(se.state.n for se in self._sites)
        self.step = 0
        self.rng = np.random.default_rng(seed)
        #: Append-only action log: every lifecycle/advance/injection
        #: event, in order, with the step it happened at.
        self.audit: list[dict] = []
        self._pending: list[dict] = []
        self._results: dict[str, SimulationResult] | None = None
        self._audit(
            "create",
            sites=names,
            engine=engine,
            n_steps=self.n,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once every site has executed its full grid."""
        return self.step >= self.n

    @property
    def site_names(self) -> list[str]:
        return [se.name for se in self._sites]

    def status(self) -> dict:
        """JSON-ready live snapshot + ``summary_dict`` projection.

        The per-site ``summary`` block follows the shared result
        schema (:data:`repro.sim.results.SUMMARY_SCHEMA`) computed over
        the columns as filled so far — a projection that converges to
        the batch result as the session reaches the end of its grid.
        """
        sites = {}
        for se in self._sites:
            running, allocated, qlen = se.carried()
            cols = se.state.cols
            entry = {
                "step": se.cursor,
                "n_steps": se.state.n,
                "running_cores": int(running),
                "allocated_cores": int(allocated),
                "queue_length": int(qlen),
                "completed": int(cols.n_completed.sum()),
                "evicted": int(cols.n_evicted.sum()),
                "expired": int(cols.n_expired.sum()),
                "summary": self._projection(se).summary_dict(),
            }
            if se.state.closed:
                dispatcher = se.state.dispatcher
                entry["battery_soc_mwh"] = dispatcher.battery_soc_mwh()
                cost = carbon = 0.0
                priced = False
                for component, st in zip(
                    dispatcher.components, dispatcher.states
                ):
                    if isinstance(component, PricedGridPower):
                        priced = True
                        cost += st.cost_usd
                        carbon += st.carbon_kg
                if priced:
                    entry["grid_cost_usd"] = cost
                    entry["grid_carbon_kg"] = carbon
            sites[se.name] = entry
        return {
            "session_id": self.session_id,
            "engine": self.engine,
            "step": self.step,
            "n_steps": self.n,
            "progress": self.step / self.n if self.n else 1.0,
            "done": self.done,
            "pending_injections": len(self._pending),
            "sites": sites,
        }

    def _projection(self, se: _SiteEngine) -> SimulationResult:
        """A result view over the current (possibly partial) columns."""
        return SimulationResult(
            se.state.grid, se.dc.config, se.state.cols, se.dc.events,
            site_name=se.name, supply=se.state.evaluation,
        )

    def audit_tail(self, last_n: int | None = None) -> list[dict]:
        """The append-only action log (optionally its last ``last_n``)."""
        if last_n is None:
            return list(self.audit)
        return self.audit[-max(int(last_n), 0):]

    def _audit(self, event: str, **fields) -> dict:
        entry = {"seq": len(self.audit), "step": self.step, "event": event}
        entry.update(fields)
        self.audit.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------

    def advance(self, n_steps: int) -> dict:
        """Advance every site by up to ``n_steps`` grid steps.

        Pending injections apply first, at the current step.  Returns
        :meth:`status` after the tick.
        """
        n_steps = int(n_steps)
        if n_steps < 0:
            raise SessionError(f"cannot advance by {n_steps} steps")
        target = min(self.step + n_steps, self.n)
        with obs.span(
            "session.advance",
            session=self.session_id,
            from_step=self.step,
            to_step=target,
        ):
            self._apply_pending()
            for se in self._sites:
                se.advance_to(target)
            advanced = target - self.step
            self.step = target
        self._audit("advance", requested=n_steps, advanced=advanced)
        if obs.enabled():
            obs.count(
                "session.steps", advanced, session=self.session_id
            )
        return self.status()

    def run_to_end(self) -> dict:
        """Advance to the end of the longest grid."""
        return self.advance(self.n - self.step)

    def results(self) -> dict[str, SimulationResult]:
        """Final per-site results; only valid once :attr:`done`."""
        if not self.done:
            raise SessionError(
                f"session at step {self.step}/{self.n} is not finished"
            )
        if self._results is None:
            self._results = {
                se.name: se.dc.finish_run(
                    se.state, f"session-{self.engine}"
                )
                for se in self._sites
            }
        return self._results

    # ------------------------------------------------------------------
    # Injections
    # ------------------------------------------------------------------

    def inject(self, action: dict) -> dict:
        """Queue a perturbation; it applies at the next ``advance``.

        Supported kinds (extra keys per kind):

        * ``battery_soc`` — ``soc_mwh`` *or* ``soc_fraction``: pin
          every battery of the targeted sites (closed loop only).
        * ``grid_budget`` — ``remaining_mwh`` *or* ``delta_mwh``:
          reset or top up firm-grid budgets (closed loop only).
        * ``blackout`` — ``duration_steps`` (default one day of
          steps): zero the targeted site's power from the current
          step.  Without ``site``, a random site is drawn from the
          session RNG.
        * ``spot_price`` — ``scale`` and/or ``delta_per_mwh``, plus
          ``duration_steps`` (default one day): multiply/shift every
          priced grid component's spot prices from the current step
          (closed loop only), e.g. a 3x price spike the dvb policy
          should ride through.

        ``site`` targets one site by name; omit it to target all sites
        (``blackout``: one random site).  Returns the queued audit
        entry.
        """
        if not isinstance(action, dict):
            raise SessionError("injection must be a JSON object")
        kind = action.get("kind")
        if kind not in INJECT_KINDS:
            raise SessionError(
                f"unknown injection kind {kind!r};"
                f" expected one of {INJECT_KINDS}"
            )
        site = action.get("site")
        if site is not None and site not in self.site_names:
            raise SessionError(f"unknown site {site!r}")
        if kind == "battery_soc" and not (
            "soc_mwh" in action or "soc_fraction" in action
        ):
            raise SessionError("battery_soc needs soc_mwh or soc_fraction")
        if kind == "grid_budget" and not (
            "remaining_mwh" in action or "delta_mwh" in action
        ):
            raise SessionError(
                "grid_budget needs remaining_mwh or delta_mwh"
            )
        if kind == "spot_price" and not (
            "scale" in action or "delta_per_mwh" in action
        ):
            raise SessionError(
                "spot_price needs scale or delta_per_mwh"
            )
        self._pending.append(dict(action))
        if obs.enabled():
            obs.count(
                "session.injections", 1,
                session=self.session_id, kind=kind,
            )
        return self._audit("inject", action=dict(action))

    def _apply_pending(self) -> None:
        pending, self._pending = self._pending, []
        for action in pending:
            kind = action["kind"]
            site = action.get("site")
            if kind == "blackout" and site is None:
                site = self._sites[
                    int(self.rng.integers(len(self._sites)))
                ].name
            targets = [
                se for se in self._sites
                if site is None or se.name == site
            ]
            touched = 0
            if kind == "battery_soc":
                for se in targets:
                    touched += se.set_battery_soc(
                        soc_mwh=action.get("soc_mwh"),
                        soc_fraction=action.get("soc_fraction"),
                    )
            elif kind == "grid_budget":
                for se in targets:
                    touched += se.set_grid_budget(
                        remaining_mwh=action.get("remaining_mwh"),
                        delta_mwh=action.get("delta_mwh"),
                    )
            elif kind == "spot_price":
                duration = int(action.get("duration_steps", 96))
                for se in targets:
                    touched += se.spot_price_shock(
                        self.step, self.step + duration,
                        scale=action.get("scale"),
                        delta_per_mwh=action.get("delta_per_mwh"),
                    )
            else:
                duration = int(action.get("duration_steps", 96))
                for se in targets:
                    touched += se.blackout(
                        self.step, self.step + duration
                    )
            self._audit(
                "apply",
                action=dict(action),
                sites=[se.name for se in targets],
                touched=touched,
            )

    # ------------------------------------------------------------------
    # Checkpoint / restore / fork
    # ------------------------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the entire mid-flight session to bytes.

        One pickle of the live object graph — engine states, VM
        objects (with their aliasing across queue/pool/finish buckets
        intact), supply-dispatcher lanes, partially-filled columns,
        event logs, RNG, audit log — behind a versioned envelope.  A
        session restored from the blob (same process or another one)
        continues bit-identically.
        """
        self._audit("checkpoint")
        return pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "session": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def restore(
        cls, blob: bytes, session_id: str | None = None
    ) -> "SimSession":
        """Rebuild a session from a :meth:`checkpoint` blob."""
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise SessionError(f"unreadable checkpoint: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
            or not isinstance(payload.get("session"), cls)
        ):
            raise SessionError(
                "not a session checkpoint"
                f" (expected format {CHECKPOINT_FORMAT!r})"
            )
        session = payload["session"]
        if session_id is not None:
            session.session_id = session_id
        session._audit("restore")
        return session

    def fork(self, session_id: str | None = None) -> "SimSession":
        """An independent copy of the session at the current step.

        The clone shares nothing with the original — diverge it with
        injections, race it ahead, throw it away.
        """
        clone = SimSession.restore(
            self.checkpoint(),
            session_id=session_id or f"{self.session_id}-fork",
        )
        clone._audit("fork", parent=self.session_id)
        return clone
