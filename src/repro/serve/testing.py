"""A minimal synchronous ASGI test client (no HTTP stack, no deps).

Drives an ASGI application coroutine directly — the same transport
trick as ``httpx.ASGITransport``, reduced to what the endpoint tests
need so the core install stays dependency-free.  When the ``serve``
extra is installed, the test suite also exercises the app through real
``httpx``; this client is the always-available baseline.
"""

from __future__ import annotations

import asyncio
import json as _json
from urllib.parse import quote, urlsplit

__all__ = ["ASGIClient", "Response"]


class Response:
    """What one request produced.

    Attributes:
        status: HTTP status code.
        headers: Lower-cased header name → value.
        body: Raw response bytes.
    """

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self):
        """Decode the body as JSON."""
        return _json.loads(self.body.decode())

    def __repr__(self) -> str:
        return f"Response(status={self.status}, {len(self.body)} bytes)"


class ASGIClient:
    """Synchronous requests against an ASGI app, in-process.

    Each request runs the app coroutine to completion on a private
    event loop — handlers that await only the receive/send channel
    (like :func:`repro.serve.app.create_app`'s) execute effectively
    synchronously, so tests stay plain functions.
    """

    def __init__(self, app):
        self.app = app

    # -- convenience verbs --------------------------------------------

    def get(self, path: str) -> Response:
        return self.request("GET", path)

    def post(self, path: str, json=None, data: bytes = b"") -> Response:
        return self.request("POST", path, json=json, data=data)

    def delete(self, path: str) -> Response:
        return self.request("DELETE", path)

    # -- transport -----------------------------------------------------

    def request(
        self, method: str, path: str, json=None, data: bytes = b""
    ) -> Response:
        """Run one request through the app and collect the response."""
        if json is not None:
            data = _json.dumps(json).encode()
        split = urlsplit(path)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": quote(split.path),
            "raw_path": split.path.encode(),
            "query_string": split.query.encode(),
            "root_path": "",
            "headers": [
                (b"host", b"testserver"),
                (b"content-length", str(len(data)).encode()),
            ],
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
        }
        return asyncio.run(self._call(scope, data))

    async def _call(self, scope, data: bytes) -> Response:
        sent = False
        messages: list[dict] = []

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": data, "more_body": False}

        async def send(message):
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        headers: dict[str, str] = {}
        body = b""
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
                headers = {
                    k.decode().lower(): v.decode()
                    for k, v in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                body += message.get("body", b"")
        return Response(status, headers, body)
