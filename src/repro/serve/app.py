"""Dependency-free ASGI application over a :class:`SessionRegistry`.

The digital-twin API is deliberately small and speaks plain JSON (plus
raw bytes for checkpoints), so it runs under any ASGI server — the
``serve`` extra installs uvicorn — while the endpoint tests drive the
app coroutine directly through :mod:`repro.serve.testing` with no HTTP
stack at all.

Routes (all JSON unless noted):

========  =================================  ==============================
Method    Path                               Action
========  =================================  ==============================
GET       /healthz                           liveness probe
GET       /sessions                          list session ids + steps
POST      /sessions                          create from a scenario spec
POST      /sessions/restore                  create from a checkpoint blob
GET       /sessions/{id}/status              live status + summary
POST      /sessions/{id}/tick?n=60           advance ``n`` steps
POST      /sessions/{id}/inject              queue a perturbation
GET       /sessions/{id}/audit?last_n=20     append-only action log
GET       /sessions/{id}/results             final summaries (done only)
POST      /sessions/{id}/fork                independent copy
GET       /sessions/{id}/checkpoint          raw blob (octet-stream)
DELETE    /sessions/{id}                     forget the session
========  =================================  ==============================

``POST /sessions`` body::

    {"scenario": {...Scenario.to_dict()...},   # optional sections may
                                               # be omitted (defaults)
     "engine": "event" | "soa",
     "session_id": "optional-id",
     "seed": 0,
     "record_events": true}

Errors map to ``{"error": ...}`` with 400 (:class:`SessionError` /
bad input), 404 (unknown session or route), or 405.
"""

from __future__ import annotations

import json
from urllib.parse import parse_qs

from .. import obs
from ..errors import ReproError, SessionError
from .registry import SessionRegistry

__all__ = ["create_app"]

_MAX_BODY = 256 * 1024 * 1024


async def _read_body(receive) -> bytes:
    chunks: list[bytes] = []
    total = 0
    while True:
        message = await receive()
        if message["type"] != "http.request":
            continue
        chunk = message.get("body", b"")
        total += len(chunk)
        if total > _MAX_BODY:
            raise SessionError("request body too large")
        if chunk:
            chunks.append(chunk)
        if not message.get("more_body"):
            return b"".join(chunks)


async def _send_response(
    send, status: int, body: bytes, content_type: str
) -> None:
    await send({
        "type": "http.response.start",
        "status": status,
        "headers": [
            (b"content-type", content_type.encode()),
            (b"content-length", str(len(body)).encode()),
        ],
    })
    await send({"type": "http.response.body", "body": body})


async def _send_json(send, status: int, payload: dict) -> None:
    body = json.dumps(payload).encode()
    await _send_response(send, status, body, "application/json")


def _json_body(raw: bytes) -> dict:
    if not raw:
        return {}
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise SessionError(f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SessionError("request body must be a JSON object")
    return payload


def _query(scope) -> dict[str, str]:
    raw = scope.get("query_string", b"").decode()
    return {k: v[-1] for k, v in parse_qs(raw).items()}


def create_app(registry: SessionRegistry | None = None):
    """Build the ASGI callable; the registry rides on ``app.registry``.

    Args:
        registry: Session store to expose; a fresh one when omitted
            (each app instance then owns its sessions).
    """
    if registry is None:
        registry = SessionRegistry()

    async def app(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported scope: {scope['type']}")
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        try:
            await _route(method, path, scope, receive, send)
        except SessionError as exc:
            status = 404 if "unknown session" in str(exc) else 400
            await _send_json(send, status, {"error": str(exc)})
        except ReproError as exc:
            await _send_json(send, 400, {"error": str(exc)})
        except (KeyError, TypeError, ValueError) as exc:
            await _send_json(send, 400, {"error": f"bad request: {exc}"})

    async def _route(method, path, scope, receive, send):
        if path == "/healthz" and method == "GET":
            await _send_json(
                send, 200, {"ok": True, "sessions": len(registry)}
            )
            return
        if path == "/sessions":
            if method == "GET":
                await _send_json(send, 200, {
                    "sessions": [
                        {
                            "session_id": s.session_id,
                            "engine": s.engine,
                            "step": s.step,
                            "n_steps": s.n,
                            "done": s.done,
                            "sites": s.site_names,
                        }
                        for s in registry
                    ]
                })
                return
            if method == "POST":
                await _create_session(receive, send)
                return
            await _send_json(send, 405, {"error": "method not allowed"})
            return
        if path == "/sessions/restore" and method == "POST":
            blob = await _read_body(receive)
            session_id = _query(scope).get("session_id")
            session = registry.restore(blob, session_id=session_id)
            await _send_json(send, 201, session.status())
            return
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            action = parts[2] if len(parts) == 3 else None
            await _session_route(
                method, session_id, action, scope, receive, send
            )
            return
        await _send_json(send, 404, {"error": f"no route: {path}"})

    async def _create_session(receive, send):
        payload = _json_body(await _read_body(receive))
        scenario = payload.get("scenario")
        if not isinstance(scenario, dict):
            raise SessionError(
                "POST /sessions needs a 'scenario' object"
                " (Scenario.to_dict form)"
            )
        session = registry.create_from_scenario(
            scenario,
            engine=payload.get("engine", "event"),
            record_events=bool(payload.get("record_events", True)),
            session_id=payload.get("session_id"),
            seed=int(payload.get("seed", 0)),
        )
        await _send_json(send, 201, session.status())

    async def _session_route(
        method, session_id, action, scope, receive, send
    ):
        if action is None and method == "DELETE":
            registry.delete(session_id)
            await _send_json(send, 200, {"deleted": session_id})
            return
        session = registry.get(session_id)
        with obs.span(
            "serve.request", session=session_id, action=action or "get"
        ):
            if action is None and method == "GET":
                await _send_json(send, 200, session.status())
            elif action == "status" and method == "GET":
                await _send_json(send, 200, session.status())
            elif action == "tick" and method == "POST":
                n = int(_query(scope).get("n", "1"))
                await _send_json(send, 200, session.advance(n))
            elif action == "inject" and method == "POST":
                entry = session.inject(_json_body(await _read_body(receive)))
                await _send_json(send, 202, {"queued": entry})
            elif action == "audit" and method == "GET":
                last_n = _query(scope).get("last_n")
                await _send_json(send, 200, {
                    "session_id": session_id,
                    "audit": session.audit_tail(
                        int(last_n) if last_n is not None else None
                    ),
                })
            elif action == "results" and method == "GET":
                await _send_json(send, 200, {
                    "session_id": session_id,
                    "results": {
                        name: result.summary_dict()
                        for name, result in session.results().items()
                    },
                })
            elif action == "fork" and method == "POST":
                payload = _json_body(await _read_body(receive))
                clone = registry.fork(
                    session_id, new_id=payload.get("session_id")
                )
                await _send_json(send, 201, clone.status())
            elif action == "checkpoint" and method == "GET":
                await _send_response(
                    send, 200, session.checkpoint(),
                    "application/octet-stream",
                )
            else:
                await _send_json(
                    send, 405 if action in (
                        None, "status", "tick", "inject", "audit",
                        "results", "fork", "checkpoint",
                    ) else 404,
                    {"error": f"no route: {action or 'session'} {method}"},
                )

    app.registry = registry
    return app
