"""The renewable site catalog and correlated multi-site trace synthesis.

Stands in for the EMHIRES dataset's >500 European sites.  The catalog
lists real European renewable-farm locations (coordinates of actual
solar/wind regions) including the three sites the paper's Figure 3
analyzes: Norwegian solar, UK wind, and Portuguese wind.  Multi-site
synthesis draws each site's daily weather regimes from a latent Gaussian
field whose correlation decays with geographic distance, so nearby sites
share weather while distant ones are nearly independent — exactly the
structure §2.3 exploits when searching for complementary groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..errors import ConfigurationError, TraceError
from ..units import TimeGrid
from .base import PowerTrace
from .solar import SolarConfig, synthesize_solar
from .weather import (
    correlated_daily_latents,
    distance_correlation_matrix,
    regime_sequence_from_latent,
)
from .wind import WindConfig, synthesize_wind

EARTH_RADIUS_KM = 6371.0


def haversine_km(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Great-circle distance between two (lat, lon) points, in km."""
    lat1, lon1, lat2, lon2 = map(
        math.radians, (lat1_deg, lon1_deg, lat2_deg, lon2_deg)
    )
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(
        dlon / 2
    ) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True)
class Site:
    """One renewable generation site in the catalog.

    Attributes:
        name: Short unique identifier, e.g. ``"NO-solar"``.
        kind: ``"solar"`` or ``"wind"``.
        latitude_deg: Site latitude.
        longitude_deg: Site longitude.
        capacity_mw: Peak capacity (paper's assumption: 400 MW for all
            sites, the median peak capacity of large farms).
    """

    name: str
    kind: str
    latitude_deg: float
    longitude_deg: float
    capacity_mw: float = 400.0

    def __post_init__(self) -> None:
        if self.kind not in ("solar", "wind"):
            raise ConfigurationError(f"unknown site kind: {self.kind!r}")
        if not -90 <= self.latitude_deg <= 90:
            raise ConfigurationError(f"bad latitude: {self.latitude_deg}")
        if not -180 <= self.longitude_deg <= 180:
            raise ConfigurationError(f"bad longitude: {self.longitude_deg}")
        if self.capacity_mw <= 0:
            raise ConfigurationError(f"bad capacity: {self.capacity_mw}")

    def distance_km(self, other: "Site") -> float:
        """Great-circle distance to ``other`` in km."""
        return haversine_km(
            self.latitude_deg,
            self.longitude_deg,
            other.latitude_deg,
            other.longitude_deg,
        )


class SiteCatalog:
    """An ordered, name-indexed collection of :class:`Site` objects."""

    def __init__(self, sites: Iterable[Site]):
        self._sites: list[Site] = list(sites)
        names = [s.name for s in self._sites]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate site names in catalog")
        self._by_name: dict[str, Site] = {s.name: s for s in self._sites}

    def __len__(self) -> int:
        return len(self._sites)

    def __iter__(self) -> Iterator[Site]:
        return iter(self._sites)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Site:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no site named {name!r}; known: {sorted(self._by_name)}"
            ) from None

    @property
    def names(self) -> list[str]:
        """Site names in catalog order."""
        return [s.name for s in self._sites]

    def subset(self, names: Iterable[str]) -> "SiteCatalog":
        """A new catalog containing only the named sites, in given order."""
        return SiteCatalog(self[name] for name in names)

    def of_kind(self, kind: str) -> "SiteCatalog":
        """All sites of one energy kind."""
        return SiteCatalog(s for s in self._sites if s.kind == kind)

    def distance_matrix_km(self) -> np.ndarray:
        """Pairwise great-circle distances, shape (n, n)."""
        n = len(self._sites)
        distances = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                d = self._sites[i].distance_km(self._sites[j])
                distances[i, j] = distances[j, i] = d
        return distances

    def with_capacity(self, capacity_mw: float) -> "SiteCatalog":
        """Copy of the catalog with every site set to one capacity."""
        return SiteCatalog(
            replace(s, capacity_mw=capacity_mw) for s in self._sites
        )


def default_european_catalog() -> SiteCatalog:
    """Sites at real European renewable-farm regions.

    Includes the paper's Figure-3 trio (``NO-solar``, ``UK-wind``,
    ``PT-wind``) plus a spread of additional solar and wind locations so
    the co-scheduler's clique search (§3.1) has a realistic graph to
    work with.  All capacities default to the paper's 400 MW assumption.
    """
    return SiteCatalog(
        [
            # The Figure-3 trio.
            Site("NO-solar", "solar", 58.97, 5.73),     # Stavanger region
            Site("UK-wind", "wind", 53.50, 0.80),       # Humber / Hornsea
            Site("PT-wind", "wind", 40.72, -7.90),      # Viseu highlands
            # Additional wind sites.
            Site("DK-wind", "wind", 55.55, 8.10),       # Horns Rev
            Site("DE-wind", "wind", 54.00, 6.60),       # German Bight
            Site("NL-wind", "wind", 52.60, 4.40),       # Egmond aan Zee
            Site("IE-wind", "wind", 53.20, -9.00),      # Galway coast
            Site("ES-wind", "wind", 42.90, -8.10),      # Galicia
            Site("FR-wind", "wind", 49.60, -1.60),      # Normandy coast
            Site("SE-wind", "wind", 57.30, 12.10),      # Halland coast
            Site("BE-wind", "wind", 51.40, 2.90),       # Belgian offshore
            Site("IT-wind", "wind", 41.10, 15.50),      # Apulia ridge
            # Additional solar sites.
            Site("ES-solar", "solar", 37.40, -5.60),    # Andalusia
            Site("PT-solar", "solar", 38.10, -7.80),    # Alentejo
            Site("IT-solar", "solar", 40.60, 16.60),    # Basilicata
            Site("FR-solar", "solar", 43.60, 4.50),     # Provence
            Site("DE-solar", "solar", 51.30, 12.40),    # Saxony
            Site("GR-solar", "solar", 38.30, 23.80),    # Boeotia
            Site("BE-solar", "solar", 50.85, 4.35),     # Belgium (ELIA)
            Site("UK-solar", "solar", 51.10, -2.70),    # Somerset
            Site("PL-wind", "wind", 54.20, 16.20),      # Pomerania
            Site("AT-solar", "solar", 47.90, 16.50),    # Burgenland
            Site("RO-wind", "wind", 44.70, 28.60),      # Dobruja
            Site("FI-wind", "wind", 63.10, 21.60),      # Ostrobothnia
        ]
    )


def synthesize_catalog_traces(
    catalog: SiteCatalog,
    grid: TimeGrid,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    length_scale_km: float = 600.0,
    day_persistence: float = 0.55,
    solar_config: SolarConfig | None = None,
    wind_config: WindConfig | None = None,
) -> dict[str, PowerTrace]:
    """Generate spatially-correlated traces for every catalog site.

    Daily weather regimes are derived from one latent Gaussian field per
    day, correlated across sites with :func:`distance_correlation_matrix`
    and AR(1)-persistent across days.  Solar sites additionally use their
    own latitude in the clear-sky model, so a Norwegian solar site really
    does produce far less in winter than an Andalusian one.

    Args:
        catalog: Sites to synthesize.
        grid: Common sampling grid (must cover whole days).
        rng: Random generator; if omitted, built from ``seed``.
        seed: Convenience seed when ``rng`` is not supplied.
        length_scale_km: e-folding distance of weather correlation.
        day_persistence: AR(1) coefficient of day-to-day weather.
        solar_config: Base solar parameters (latitude overridden per site).
        wind_config: Base wind parameters shared by all wind sites.

    Returns:
        Mapping from site name to its :class:`PowerTrace`.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    steps_per_day = grid.steps_per_day()
    if grid.n % steps_per_day:
        raise TraceError("grid must cover a whole number of days")
    days = grid.n // steps_per_day
    correlation = distance_correlation_matrix(
        catalog.distance_matrix_km(), length_scale_km
    )
    latents = correlated_daily_latents(correlation, days, rng, day_persistence)

    base_solar = solar_config or SolarConfig()
    base_wind = wind_config or WindConfig()
    traces: dict[str, PowerTrace] = {}
    for index, site in enumerate(catalog):
        site_latent = latents[:, index]
        if site.kind == "solar":
            config = replace(
                base_solar,
                latitude_deg=site.latitude_deg,
                capacity_mw=site.capacity_mw,
            )
            regime_indices = regime_sequence_from_latent(
                config.regimes, site_latent
            )
            traces[site.name] = synthesize_solar(
                grid, config, rng, name=site.name,
                regime_indices=regime_indices,
            )
        else:
            config = replace(base_wind, capacity_mw=site.capacity_mw)
            regime_indices = regime_sequence_from_latent(
                config.regimes, site_latent
            )
            traces[site.name] = synthesize_wind(
                grid, config, rng, name=site.name,
                regime_indices=regime_indices,
            )
    return traces
