"""Weather regime processes driving the synthetic traces.

The paper's Figure 2a highlights three qualitative solar-day types —
sunny, variable (spiky clouds), and overcast — and wind days that swing
between calm and stormy.  We model day-scale weather as a first-order
Markov chain over named regimes, and intra-day fluctuation as an AR(1)
process whose parameters depend on the active regime.

Spatial structure matters for §2.3 (complementary nearby sites): regimes
at different sites are drawn from a shared latent Gaussian field whose
correlation decays with distance, so close sites see similar weather and
distant ones are nearly independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.signal import lfilter
from scipy.special import ndtr

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WeatherRegime:
    """One day-scale weather state.

    Attributes:
        name: Label, e.g. ``"sunny"`` or ``"stormy"``.
        level: Mean modulation applied to the clear-sky / base process
            (1.0 = unattenuated, 0.05 = heavy overcast).
        volatility: Standard deviation of intra-day AR(1) fluctuation.
        persistence: AR(1) coefficient of the intra-day fluctuation in
            (0, 1); high values give slow drifts, low values give spiky
            sample-to-sample variation.
    """

    name: str
    level: float
    volatility: float
    persistence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.5:
            raise ConfigurationError(f"regime level out of range: {self.level}")
        if self.volatility < 0:
            raise ConfigurationError(f"negative volatility: {self.volatility}")
        if not 0.0 < self.persistence < 1.0:
            raise ConfigurationError(
                f"persistence must be in (0,1): {self.persistence}"
            )


@dataclass(frozen=True)
class RegimeModel:
    """A Markov chain over :class:`WeatherRegime` states.

    Attributes:
        regimes: The states, in a fixed order.
        transition: Row-stochastic matrix; ``transition[i][j]`` is the
            probability of moving from regime ``i`` today to ``j``
            tomorrow.
        initial: Initial distribution over regimes.
    """

    regimes: tuple[WeatherRegime, ...]
    transition: np.ndarray
    initial: np.ndarray

    def __post_init__(self) -> None:
        k = len(self.regimes)
        transition = np.asarray(self.transition, dtype=float)
        initial = np.asarray(self.initial, dtype=float)
        if transition.shape != (k, k):
            raise ConfigurationError(
                f"transition matrix shape {transition.shape} != ({k}, {k})"
            )
        if initial.shape != (k,):
            raise ConfigurationError(f"initial shape {initial.shape} != ({k},)")
        if np.any(transition < 0) or np.any(initial < 0):
            raise ConfigurationError("probabilities must be non-negative")
        if not np.allclose(transition.sum(axis=1), 1.0, atol=1e-9):
            raise ConfigurationError("transition rows must each sum to 1")
        if not np.isclose(initial.sum(), 1.0, atol=1e-9):
            raise ConfigurationError("initial distribution must sum to 1")
        object.__setattr__(self, "transition", transition)
        object.__setattr__(self, "initial", initial)

    @property
    def names(self) -> tuple[str, ...]:
        """Regime names in state order."""
        return tuple(r.name for r in self.regimes)

    def by_name(self, name: str) -> WeatherRegime:
        """Look up a regime by its name."""
        for regime in self.regimes:
            if regime.name == name:
                return regime
        raise KeyError(f"no regime named {name!r}")


def default_solar_regimes() -> RegimeModel:
    """The three solar day types of Figure 2a with plausible persistence.

    Sunny days dominate and persist; overcast days can depress peak
    production to a few percent of capacity (the paper observes 3.5%
    vs. 77% on consecutive days); variable days produce spiky output.
    """
    sunny = WeatherRegime("sunny", level=1.0, volatility=0.03, persistence=0.85)
    variable = WeatherRegime("variable", level=0.6, volatility=0.28, persistence=0.45)
    overcast = WeatherRegime("overcast", level=0.07, volatility=0.04, persistence=0.80)
    transition = np.array(
        [
            [0.62, 0.25, 0.13],
            [0.40, 0.35, 0.25],
            [0.30, 0.30, 0.40],
        ]
    )
    initial = np.array([0.5, 0.3, 0.2])
    return RegimeModel((sunny, variable, overcast), transition, initial)


def default_wind_regimes() -> RegimeModel:
    """Wind day types: calm, breezy, stormy.

    ``level`` here modulates the *mean wind speed* target of the OU
    process (see :mod:`repro.traces.wind`), not the power directly.
    """
    calm = WeatherRegime("calm", level=0.48, volatility=0.10, persistence=0.90)
    breezy = WeatherRegime("breezy", level=0.70, volatility=0.18, persistence=0.80)
    stormy = WeatherRegime("stormy", level=1.10, volatility=0.30, persistence=0.70)
    transition = np.array(
        [
            [0.55, 0.35, 0.10],
            [0.30, 0.45, 0.25],
            [0.15, 0.45, 0.40],
        ]
    )
    initial = np.array([0.4, 0.4, 0.2])
    return RegimeModel((calm, breezy, stormy), transition, initial)


def sample_regime_sequence(
    model: RegimeModel, days: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``days`` regime indices from the Markov chain.

    All uniforms are drawn up front (``rng.random(days)`` consumes the
    generator stream exactly like ``days`` scalar draws) and each step
    inverts the relevant row CDF with ``searchsorted`` — the same
    normalize-then-``searchsorted(side="right")`` arithmetic
    ``Generator.choice(k, p=...)`` performs internally, so the states
    and the RNG stream are bit-identical to the per-day ``choice``
    loop this replaces, at a fraction of its per-call overhead.

    Returns:
        Integer array of regime indices into ``model.regimes``.
    """
    if days < 0:
        raise ConfigurationError(f"days must be >= 0, got {days}")
    states = np.empty(days, dtype=int)
    if days == 0:
        return states
    initial_cdf = np.cumsum(model.initial)
    initial_cdf /= initial_cdf[-1]
    transition_cdf = np.cumsum(model.transition, axis=1)
    transition_cdf /= transition_cdf[:, -1:]
    uniforms = rng.random(days)
    states[0] = initial_cdf.searchsorted(uniforms[0], side="right")
    for day in range(1, days):
        states[day] = transition_cdf[states[day - 1]].searchsorted(
            uniforms[day], side="right"
        )
    return states


def regime_sequence_from_latent(
    model: RegimeModel, latent: np.ndarray
) -> np.ndarray:
    """Map latent standard-normal draws to regime indices.

    Used for spatially-correlated multi-site synthesis: each site gets a
    latent normal per day (correlated across sites), and the normal's CDF
    quantile selects the regime according to the chain's stationary
    distribution.  Persistence across days comes from blending with the
    previous day's latent before calling this (see
    :func:`correlated_daily_latents`).
    """
    stationary = stationary_distribution(model)
    # Map quantiles to regimes through the stationary CDF.
    edges = np.cumsum(stationary)
    quantiles = ndtr(np.asarray(latent, dtype=float))
    return np.searchsorted(edges, quantiles, side="right").clip(
        0, len(model.regimes) - 1
    )


def stationary_distribution(model: RegimeModel) -> np.ndarray:
    """Stationary distribution of the regime Markov chain."""
    k = len(model.regimes)
    # Solve pi P = pi, sum(pi) = 1 via the standard augmented system.
    a = np.vstack([model.transition.T - np.eye(k), np.ones(k)])
    b = np.concatenate([np.zeros(k), [1.0]])
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    pi = np.clip(pi, 0, None)
    return pi / pi.sum()


def distance_correlation_matrix(
    distances_km: np.ndarray, length_scale_km: float = 600.0
) -> np.ndarray:
    """Exponential-decay spatial correlation from a distance matrix.

    ``corr[i, j] = exp(-d_ij / length_scale)``: sites a few hundred km
    apart share most of their weather, sites across the continent are
    nearly independent — the property §2.3 exploits for complementarity.
    """
    distances = np.asarray(distances_km, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ConfigurationError(
            f"distance matrix must be square, got {distances.shape}"
        )
    if length_scale_km <= 0:
        raise ConfigurationError(
            f"length scale must be positive, got {length_scale_km}"
        )
    corr = np.exp(-distances / length_scale_km)
    np.fill_diagonal(corr, 1.0)
    return corr


def correlated_daily_latents(
    correlation: np.ndarray,
    days: int,
    rng: np.random.Generator,
    day_persistence: float = 0.55,
) -> np.ndarray:
    """Latent standard-normal field: shape ``(days, n_sites)``.

    Spatially correlated via the Cholesky factor of ``correlation`` and
    temporally AR(1)-persistent across days, so weather systems both span
    nearby sites and linger for multiple days.
    """
    if not 0.0 <= day_persistence < 1.0:
        raise ConfigurationError(
            f"day persistence must be in [0,1): {day_persistence}"
        )
    n_sites = correlation.shape[0]
    # Jitter the diagonal so nearly-singular matrices (duplicate sites)
    # still factor.
    chol = np.linalg.cholesky(correlation + 1e-9 * np.eye(n_sites))
    latents = np.empty((days, n_sites))
    innovation_scale = np.sqrt(1.0 - day_persistence**2)
    state = chol @ rng.standard_normal(n_sites)
    for day in range(days):
        if day:
            noise = chol @ rng.standard_normal(n_sites)
            state = day_persistence * state + innovation_scale * noise
        latents[day] = state
    return latents


def intraday_ar1(
    n_steps: int,
    volatility: float,
    persistence: float,
    rng: np.random.Generator,
    initial: float = 0.0,
) -> np.ndarray:
    """Zero-mean AR(1) fluctuation path with stationary std ``volatility``.

    Evaluated as the linear filter ``y_i = persistence·y_{i-1} + x_i``
    over ``x = innovation·draws`` in one :func:`scipy.signal.lfilter`
    call; the filter performs the identical floating-point operations in
    the identical order, so the output is bit-for-bit equal to the
    reference loop (:func:`_intraday_ar1_loop`, golden-tested).
    """
    if n_steps <= 0:
        return np.empty(0)
    innovation = volatility * np.sqrt(1.0 - persistence**2)
    draws = rng.standard_normal(n_steps)
    path, _ = lfilter(
        [1.0],
        [1.0, -persistence],
        innovation * draws,
        zi=np.array([persistence * initial]),
    )
    return path


def _intraday_ar1_loop(
    n_steps: int,
    volatility: float,
    persistence: float,
    rng: np.random.Generator,
    initial: float = 0.0,
) -> np.ndarray:
    """Reference per-step implementation of :func:`intraday_ar1`.

    Kept for the golden equality tests.
    """
    if n_steps <= 0:
        return np.empty(0)
    innovation = volatility * np.sqrt(1.0 - persistence**2)
    path = np.empty(n_steps)
    state = initial
    draws = rng.standard_normal(n_steps)
    for i in range(n_steps):
        state = persistence * state + innovation * draws[i]
        path[i] = state
    return path


def regime_modulation(
    regimes: Sequence[WeatherRegime],
    day_indices: np.ndarray,
    steps_per_day: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-step multiplicative weather modulation in [0, ~1.2].

    For each day, the active regime supplies a base level and an AR(1)
    fluctuation; the result is ``clip(level + fluctuation, 0, 1.25)``
    evaluated at every step of the day.  AR(1) state carries across day
    boundaries so regime changes do not produce artificial jumps.

    Consecutive days in the same regime share AR(1) parameters, so they
    are evaluated as one :func:`intraday_ar1` run per regime streak
    rather than one per day.  ``rng.standard_normal(k·n)`` consumes the
    generator stream exactly like ``k`` consecutive
    ``standard_normal(n)`` calls, so the output is bit-identical to the
    per-day evaluation.
    """
    levels = np.array([r.level for r in regimes])
    total = len(day_indices) * steps_per_day
    modulation = np.empty(total)
    if total == 0:
        return modulation
    state = 0.0
    n_days = len(day_indices)
    day = 0
    while day < n_days:
        regime_index = int(day_indices[day])
        streak_end = day + 1
        while (
            streak_end < n_days
            and int(day_indices[streak_end]) == regime_index
        ):
            streak_end += 1
        regime = regimes[regime_index]
        n_steps = (streak_end - day) * steps_per_day
        fluct = intraday_ar1(
            n_steps, regime.volatility, regime.persistence, rng, state
        )
        state = fluct[-1]
        start = day * steps_per_day
        modulation[start : start + n_steps] = levels[regime_index] + fluct
        day = streak_end
    return np.clip(modulation, 0.0, 1.25)
