"""CSV persistence for traces.

Traces serialize to a simple two-column CSV (ISO timestamp, normalized
power) with a ``#``-prefixed metadata header carrying the name, kind,
capacity, and step.  This is deliberately close to how ELIA publishes
its generation data, and keeps the files diffable and editable.
"""

from __future__ import annotations

import csv
from datetime import datetime, timedelta
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import TraceError
from ..units import TimeGrid
from .base import PowerTrace

_HEADER_PREFIX = "#"
_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%S"


def trace_to_csv(trace: PowerTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as CSV with a metadata header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"{_HEADER_PREFIX} name={trace.name}\n")
        handle.write(f"{_HEADER_PREFIX} kind={trace.kind}\n")
        handle.write(f"{_HEADER_PREFIX} capacity_mw={trace.capacity_mw!r}\n")
        handle.write(
            f"{_HEADER_PREFIX} step_seconds={trace.grid.step_seconds!r}\n"
        )
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "normalized_power"])
        for when, value in zip(trace.grid.times(), trace.values):
            writer.writerow([when.strftime(_TIMESTAMP_FORMAT), f"{value:.6f}"])


def _parse_metadata(lines: list[str]) -> dict[str, str]:
    metadata: dict[str, str] = {}
    for line in lines:
        body = line[len(_HEADER_PREFIX):].strip()
        if "=" not in body:
            raise TraceError(f"malformed metadata line: {line!r}")
        key, _, value = body.partition("=")
        metadata[key.strip()] = value.strip()
    return metadata


def trace_from_csv(path: str | Path) -> PowerTrace:
    """Read a trace previously written by :func:`trace_to_csv`.

    Raises:
        TraceError: on malformed metadata, timestamps, or values.
    """
    path = Path(path)
    metadata_lines: list[str] = []
    rows: list[tuple[str, str]] = []
    with path.open() as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0].startswith(_HEADER_PREFIX):
                metadata_lines.append(",".join(row))
                continue
            if row[0] == "timestamp":
                continue
            if len(row) != 2:
                raise TraceError(f"expected 2 columns, got {row!r}")
            rows.append((row[0], row[1]))
    metadata = _parse_metadata(metadata_lines)
    if not rows:
        raise TraceError(f"no samples in {path}")
    try:
        start = datetime.strptime(rows[0][0], _TIMESTAMP_FORMAT)
        step = timedelta(seconds=float(metadata["step_seconds"]))
        values = np.array([float(value) for _, value in rows])
        capacity = float(metadata["capacity_mw"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed trace file {path}: {exc}") from exc
    grid = TimeGrid(start, step, len(values))
    return PowerTrace(
        grid,
        values,
        metadata.get("name", path.stem),
        metadata.get("kind", "generic"),
        capacity,
    )


def catalog_traces_to_csv(
    traces: Mapping[str, PowerTrace], directory: str | Path
) -> list[Path]:
    """Write one CSV per site trace into ``directory``.

    Returns the written paths in catalog order.  The directory is
    created if missing.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, trace in traces.items():
        path = directory / f"{name}.csv"
        trace_to_csv(trace, path)
        written.append(path)
    return written
