"""Grid-side signals: carbon intensity and wholesale spot-price traces.

The paper's economic case (§2.1) is built on *time-varying* grid
realities — depressed and negative wholesale prices when renewable
output is high, carbon intensity that swings with the generation mix.
This module gives those signals the same first-class treatment as
power traces: a validated container on a :class:`~repro.units.TimeGrid`
(:class:`GridSignal`), typed subclasses for the two signals the supply
and planning layers consume (:class:`CarbonIntensityTrace`,
:class:`SpotPriceTrace`), and deterministic synthesizers:

- :meth:`CarbonIntensityTrace.daily_cycle` — a UK-realistic daily
  carbon cycle between 140 and 280 gCO2/kWh (evening-peaking, when
  gas fills the post-solar gap).
- :meth:`SpotPriceTrace.double_peak` — the classic double-peak
  wholesale day: morning and evening demand ramps over a flat base.
- :meth:`SpotPriceTrace.merit_order` — price anti-correlated with
  renewable output (``base - sensitivity * output + noise``), the
  merit-order effect behind negative-price episodes.  This is the
  *single* price generator in the library;
  :meth:`repro.multisite.market.MarketModel.price_series` delegates
  here.

Units: prices are currency per MWh (negatives allowed — that is the
point); carbon intensity is gCO2/kWh, which is numerically identical
to kgCO2/MWh, so ``energy_mwh * intensity`` is kilograms of CO2 with
no conversion factor.

Signals are content-hashable (:meth:`GridSignal.content_hash`) so the
experiments cache can key on them exactly like power traces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from ..errors import TraceError
from ..units import TimeGrid
from .base import PowerTrace

__all__ = [
    "GridSignal",
    "CarbonIntensityTrace",
    "SpotPriceTrace",
]


@dataclass(frozen=True)
class GridSignal:
    """A scalar per-step signal on a :class:`TimeGrid`.

    Unlike :class:`~repro.traces.base.PowerTrace`, values may be
    negative (wholesale prices go through zero) — only finiteness and
    shape are enforced.

    Attributes:
        grid: The sampling grid.
        values: One finite value per grid slot.
        name: Human-readable label, e.g. ``"UK carbon"``.
        unit: Unit string, e.g. ``"$/MWh"`` or ``"gCO2/kWh"``.
    """

    grid: TimeGrid
    values: np.ndarray
    name: str = "signal"
    unit: str = ""

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1:
            raise TraceError(
                f"signal values must be 1-D, got shape {values.shape}"
            )
        if len(values) != self.grid.n:
            raise TraceError(
                f"signal has {len(values)} samples but grid expects"
                f" {self.grid.n}"
            )
        if np.any(~np.isfinite(values)):
            raise TraceError("signal contains non-finite values")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.grid.n

    def slice(self, start_index: int, length: int) -> "GridSignal":
        """Contiguous sub-signal of ``length`` samples from ``start_index``."""
        sub = self.grid.subgrid(start_index, length)
        return replace(
            self,
            grid=sub,
            values=self.values[start_index : start_index + length],
        )

    def content_hash(self) -> str:
        """SHA-256 over grid shape and exact value bytes (cache keying)."""
        digest = hashlib.sha256()
        digest.update(type(self).__name__.encode())
        digest.update(self.grid.start.isoformat().encode())
        digest.update(repr(self.grid.step_seconds).encode())
        digest.update(repr(self.grid.n).encode())
        digest.update(self.unit.encode())
        digest.update(np.ascontiguousarray(self.values).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Shared synthesis helper
    # ------------------------------------------------------------------

    @staticmethod
    def _hours_of_day(grid: TimeGrid) -> np.ndarray:
        """Hour-of-day (fractional, [0, 24)) for each sample's left edge."""
        start = grid.start
        first = (
            start.hour
            + start.minute / 60.0
            + start.second / 3600.0
        )
        hours = first + np.arange(grid.n) * grid.step_hours
        return np.mod(hours, 24.0)


@dataclass(frozen=True)
class CarbonIntensityTrace(GridSignal):
    """Grid carbon intensity per step, in gCO2/kWh (== kgCO2/MWh).

    Values must be non-negative: a grid cannot un-emit.
    """

    name: str = "carbon"
    unit: str = "gCO2/kWh"

    def __post_init__(self) -> None:
        super().__post_init__()
        if np.any(self.values < 0.0):
            raise TraceError("carbon intensity cannot be negative")

    @classmethod
    def constant(
        cls, grid: TimeGrid, value: float, name: str = "carbon"
    ) -> "CarbonIntensityTrace":
        """A flat intensity — the degenerate (carbon-blind) case."""
        return cls(grid, np.full(grid.n, float(value)), name)

    @classmethod
    def daily_cycle(
        cls,
        grid: TimeGrid,
        low: float = 140.0,
        high: float = 280.0,
        peak_hour: float = 18.0,
        name: str = "carbon daily",
    ) -> "CarbonIntensityTrace":
        """A sinusoidal daily carbon cycle between ``low`` and ``high``.

        The defaults reproduce the UK-realistic 140–280 gCO2/kWh swing
        with the dirty peak in the early evening, when gas plants ramp
        to cover the post-solar demand peak.  Deterministic — same grid
        and parameters, same bytes.
        """
        if not 0.0 <= low <= high:
            raise TraceError(
                f"need 0 <= low <= high, got low={low} high={high}"
            )
        hours = cls._hours_of_day(grid)
        mid = 0.5 * (high + low)
        amp = 0.5 * (high - low)
        values = mid + amp * np.cos(
            2.0 * np.pi * (hours - peak_hour) / 24.0
        )
        return cls(grid, values, name)


@dataclass(frozen=True)
class SpotPriceTrace(GridSignal):
    """Wholesale spot price per step, currency/MWh (negatives allowed)."""

    name: str = "price"
    unit: str = "$/MWh"

    @classmethod
    def constant(
        cls, grid: TimeGrid, value: float, name: str = "price"
    ) -> "SpotPriceTrace":
        """A flat price — the degenerate (flat-tariff) case."""
        return cls(grid, np.full(grid.n, float(value)), name)

    @classmethod
    def double_peak(
        cls,
        grid: TimeGrid,
        base: float = 35.0,
        morning_peak: float = 25.0,
        evening_peak: float = 40.0,
        morning_hour: float = 8.0,
        evening_hour: float = 19.0,
        width_hours: float = 2.0,
        name: str = "price double-peak",
    ) -> "SpotPriceTrace":
        """The classic double-peak wholesale day.

        Two Gaussian demand ramps (morning commute, evening residential)
        over a flat base, wrapped on the 24-hour circle so a peak near
        midnight bleeds correctly into the next day.  Deterministic.
        """
        if width_hours <= 0.0:
            raise TraceError(
                f"peak width must be positive, got {width_hours}"
            )
        hours = cls._hours_of_day(grid)

        def bump(center: float, height: float) -> np.ndarray:
            # Wrapped circular distance in hours, so peaks near the
            # day boundary stay symmetric.
            dist = np.abs(hours - center)
            dist = np.minimum(dist, 24.0 - dist)
            return height * np.exp(-0.5 * (dist / width_hours) ** 2)

        values = (
            base
            + bump(morning_hour, morning_peak)
            + bump(evening_hour, evening_peak)
        )
        return cls(grid, values, name)

    @classmethod
    def merit_order(
        cls,
        trace: PowerTrace,
        base_price_per_mwh: float = 55.0,
        sensitivity_per_mwh: float = 70.0,
        noise_std_per_mwh: float = 8.0,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        name: str = "price merit-order",
    ) -> "SpotPriceTrace":
        """Price anti-correlated with renewable output (§2.1's mechanism).

        ``price = base - sensitivity * normalized_output + noise`` —
        high-output hours push the price through zero, reproducing the
        negative-price episodes the paper cites.  This is the single
        price generator in the library;
        :meth:`repro.multisite.market.MarketModel.price_series` is a
        thin delegating shim over it, drawing noise with the identical
        RNG call sequence.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        noise = rng.normal(0.0, noise_std_per_mwh, len(trace))
        values = (
            base_price_per_mwh
            - sensitivity_per_mwh * trace.values
            + noise
        )
        return cls(trace.grid, values, name)
