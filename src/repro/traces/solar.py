"""Synthetic solar production traces.

The generator composes two processes:

1. A deterministic **clear-sky profile** from standard solar geometry
   (declination + hour angle -> solar elevation at the site's latitude),
   which yields the diurnal zero-at-night shape and the winter/summer
   seasonality the paper observes (peak winter production ~75% below
   summer).
2. A stochastic **weather modulation** from the regime model in
   :mod:`repro.traces.weather`: sunny days pass the clear-sky profile
   through nearly unattenuated, overcast days crush it to a few percent,
   and variable days multiply it by a spiky AR(1) cloud process —
   reproducing the three day types of Figure 2a.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, TraceError
from ..units import TimeGrid
from .base import PowerTrace
from .weather import (
    RegimeModel,
    default_solar_regimes,
    regime_modulation,
    sample_regime_sequence,
)


@dataclass(frozen=True)
class SolarConfig:
    """Parameters of the solar synthesis model.

    Attributes:
        latitude_deg: Site latitude; drives day length and seasonality.
        capacity_mw: Peak plant capacity (paper assumes 400 MW).
        panel_efficiency_exponent: Shaping exponent applied to solar
            elevation; >1 narrows the midday peak slightly, matching
            fixed-tilt panel behaviour.
        regime_model: Day-scale weather Markov chain; defaults to the
            three-regime model of Figure 2a.
    """

    latitude_deg: float = 51.0
    capacity_mw: float = 400.0
    panel_efficiency_exponent: float = 1.15
    regime_model: RegimeModel | None = None

    def __post_init__(self) -> None:
        if not -85.0 <= self.latitude_deg <= 85.0:
            raise ConfigurationError(
                f"latitude out of range: {self.latitude_deg}"
            )
        if self.capacity_mw <= 0:
            raise ConfigurationError(
                f"capacity must be positive: {self.capacity_mw}"
            )
        if self.panel_efficiency_exponent <= 0:
            raise ConfigurationError("efficiency exponent must be positive")

    @property
    def regimes(self) -> RegimeModel:
        """The active regime model (default solar regimes if unset)."""
        return self.regime_model or default_solar_regimes()


def solar_declination_rad(day_of_year: np.ndarray) -> np.ndarray:
    """Solar declination (radians) by fractional day of year.

    Cooper's formula: delta = 23.45 deg * sin(2*pi*(284 + n)/365).
    """
    return np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + day_of_year) / 365.0)


def solar_elevation_sin(
    latitude_deg: float, day_of_year: np.ndarray, hour_of_day: np.ndarray
) -> np.ndarray:
    """Sine of solar elevation for each (day, hour) sample.

    Negative values (sun below horizon) are clipped to zero by callers.
    Solar noon is taken at 12:00 local time — adequate for synthetic
    traces where absolute clock alignment is irrelevant.
    """
    lat = np.deg2rad(latitude_deg)
    decl = solar_declination_rad(day_of_year)
    hour_angle = np.deg2rad(15.0) * (hour_of_day - 12.0)
    return np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.cos(
        hour_angle
    )


def clear_sky_profile(grid: TimeGrid, config: SolarConfig) -> np.ndarray:
    """Normalized clear-sky output in [0, 1] for every grid sample.

    Normalized against the *annual* clear-sky maximum at the site's
    latitude so that a mid-summer noon on a sunny day reaches ~1.0 and
    winter peaks sit well below — the seasonality of §2.2.
    """
    elevation = solar_elevation_sin(
        config.latitude_deg, grid.day_of_year(), grid.hour_of_day()
    )
    profile = np.clip(elevation, 0.0, None) ** config.panel_efficiency_exponent
    # Annual maximum of sin(elevation) occurs at the summer solstice noon.
    lat = np.deg2rad(config.latitude_deg)
    solstice_decl = np.deg2rad(23.45) if config.latitude_deg >= 0 else -np.deg2rad(23.45)
    annual_peak = np.sin(lat) * np.sin(solstice_decl) + np.cos(lat) * np.cos(
        solstice_decl
    )
    annual_peak = max(annual_peak, 1e-6) ** config.panel_efficiency_exponent
    return profile / annual_peak


def synthesize_solar(
    grid: TimeGrid,
    config: SolarConfig | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    name: str = "solar",
    regime_indices: np.ndarray | None = None,
) -> PowerTrace:
    """Generate a synthetic solar :class:`PowerTrace`.

    Args:
        grid: Sampling grid; its step must divide one day evenly.
        config: Model parameters; defaults to a Belgium-like site.
        rng: Random generator; if omitted, built from ``seed``.
        seed: Convenience seed when ``rng`` is not supplied.
        name: Label for the resulting trace.
        regime_indices: Optional externally-sampled per-day regime
            indices (used by the correlated multi-site synthesizer);
            if omitted, regimes are drawn from the config's Markov chain.

    Returns:
        A normalized solar trace on ``grid``.
    """
    config = config or SolarConfig()
    if rng is None:
        rng = np.random.default_rng(seed)
    steps_per_day = grid.steps_per_day()
    if grid.n % steps_per_day:
        raise TraceError(
            f"grid length {grid.n} is not a whole number of days"
            f" ({steps_per_day} steps/day)"
        )
    days = grid.n // steps_per_day
    model = config.regimes
    if regime_indices is None:
        regime_indices = sample_regime_sequence(model, days, rng)
    elif len(regime_indices) != days:
        raise TraceError(
            f"got {len(regime_indices)} regime indices for {days} days"
        )
    modulation = regime_modulation(model.regimes, regime_indices, steps_per_day, rng)
    values = np.clip(clear_sky_profile(grid, config) * modulation, 0.0, 1.0)
    return PowerTrace(grid, values, name, "solar", config.capacity_mw)
