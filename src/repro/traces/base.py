"""The :class:`PowerTrace` container used throughout the library.

A trace is a non-negative time series on a :class:`~repro.units.TimeGrid`.
Values are *normalized* to the site's peak capacity (0..1), matching the
EMHIRES convention the paper works with; multiply by ``capacity_mw`` to
get megawatts.  The paper assumes 400 MW peak per site (median of large
farms) when it needs absolute power.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta
from typing import Sequence

import numpy as np

from ..errors import TraceError
from ..units import TimeGrid


@dataclass(frozen=True)
class PowerTrace:
    """A normalized power time series for one site.

    Attributes:
        grid: The sampling grid.
        values: Normalized power in [0, 1], one sample per grid slot.
        name: Human-readable label, e.g. ``"NO solar"``.
        kind: Energy source kind, ``"solar"`` or ``"wind"`` (free-form for
            derived traces such as aggregates).
        capacity_mw: Peak capacity used to convert to absolute power.
    """

    grid: TimeGrid
    values: np.ndarray
    name: str = "trace"
    kind: str = "generic"
    capacity_mw: float = 400.0

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1:
            raise TraceError(f"trace values must be 1-D, got shape {values.shape}")
        if len(values) != self.grid.n:
            raise TraceError(
                f"trace has {len(values)} samples but grid expects {self.grid.n}"
            )
        if np.any(~np.isfinite(values)):
            raise TraceError("trace contains non-finite values")
        if np.any(values < 0):
            raise TraceError("trace contains negative power values")
        if self.capacity_mw <= 0:
            raise TraceError(f"capacity must be positive, got {self.capacity_mw}")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.grid.n

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def power_mw(self) -> np.ndarray:
        """Absolute power in MW at each sample."""
        return self.values * self.capacity_mw

    def energy_mwh(self) -> float:
        """Total energy over the trace in MWh (left-rectangle integration)."""
        return float(np.sum(self.power_mw()) * self.grid.step_hours)

    def scaled(self, capacity_mw: float) -> "PowerTrace":
        """Same normalized values with a different peak capacity."""
        return PowerTrace(self.grid, self.values, self.name, self.kind, capacity_mw)

    def renamed(self, name: str) -> "PowerTrace":
        """Copy of this trace with a new label."""
        return PowerTrace(self.grid, self.values, name, self.kind, self.capacity_mw)

    # ------------------------------------------------------------------
    # Slicing and resampling
    # ------------------------------------------------------------------

    def slice(self, start_index: int, length: int) -> "PowerTrace":
        """Contiguous sub-trace of ``length`` samples from ``start_index``."""
        sub = self.grid.subgrid(start_index, length)
        return PowerTrace(
            sub,
            self.values[start_index : start_index + length],
            self.name,
            self.kind,
            self.capacity_mw,
        )

    def slice_days(self, start_day: float, days: float) -> "PowerTrace":
        """Sub-trace covering ``days`` starting ``start_day`` days in."""
        per_day = self.grid.steps_per_day()
        start_index = int(round(start_day * per_day))
        length = int(round(days * per_day))
        return self.slice(start_index, length)

    def resample(self, step: timedelta) -> "PowerTrace":
        """Average-downsample or hold-upsample onto a new step size.

        Downsampling requires the new step to be an integer multiple of
        the old one (block averages); upsampling requires the reverse
        (sample-and-hold).  This mirrors how the paper moves between the
        hourly EMHIRES and 15-minute ELIA resolutions.
        """
        old = self.grid.step_seconds
        new = step.total_seconds()
        if abs(new - old) < 1e-9:
            return self
        if new > old:
            factor = new / old
            k = round(factor)
            if abs(factor - k) > 1e-9 or self.grid.n % k:
                raise TraceError(
                    f"cannot downsample {self.grid.step} to {step}:"
                    " not an integer block size"
                )
            values = self.values.reshape(-1, k).mean(axis=1)
        else:
            factor = old / new
            k = round(factor)
            if abs(factor - k) > 1e-9:
                raise TraceError(
                    f"cannot upsample {self.grid.step} to {step}:"
                    " not an integer split"
                )
            values = np.repeat(self.values, k)
        new_grid = TimeGrid(self.grid.start, step, len(values))
        return PowerTrace(new_grid, values, self.name, self.kind, self.capacity_mw)

    # ------------------------------------------------------------------
    # Statistics (the paper's §2.2 metrics)
    # ------------------------------------------------------------------

    def cov(self) -> float:
        """Coefficient of variation: std / mean (paper's §2.3 metric).

        Returns ``inf`` for an all-zero trace, since variability relative
        to zero mean production is unbounded.
        """
        mean = float(np.mean(self.values))
        if mean <= 0:
            return float("inf")
        return float(np.std(self.values) / mean)

    def zero_fraction(self, threshold: float = 1e-9) -> float:
        """Fraction of samples at (numerically) zero output."""
        return float(np.mean(self.values <= threshold))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of normalized power."""
        return float(np.percentile(self.values, q))

    def tail_ratio(self, upper: float = 99.0, lower: float = 75.0) -> float:
        """Ratio of two percentiles, the paper's tail-variability metric.

        Figure 2b reports p99/p75 of ~4x for solar and ~2x for wind.
        Returns ``inf`` when the lower percentile is zero.
        """
        low = self.percentile(lower)
        high = self.percentile(upper)
        if low <= 0:
            return float("inf")
        return high / low

    def stable_power_mw(self) -> float:
        """Minimum power over the trace window, in MW.

        The paper defines stable energy over a window as the window's
        minimum power times its duration (§2.3): that power level is
        guaranteed available throughout, so it can back stable VMs.
        """
        if self.grid.n == 0:
            return 0.0
        return float(np.min(self.power_mw()))

    def stable_energy_mwh(self) -> float:
        """Stable energy over the whole trace window (min power × span)."""
        return self.stable_power_mw() * self.grid.n * self.grid.step_hours

    def variable_energy_mwh(self) -> float:
        """Energy above the stable floor (usable only by degradable VMs)."""
        return self.energy_mwh() - self.stable_energy_mwh()


def aggregate_traces(
    traces: Sequence[PowerTrace], name: str = "aggregate"
) -> PowerTrace:
    """Sum several traces into one aggregate site (the multi-VB view).

    The result's ``capacity_mw`` is the sum of constituent capacities and
    its values are renormalized so they remain in [0, 1] relative to the
    combined peak capacity.

    Raises:
        TraceError: if ``traces`` is empty or grids are incompatible.
    """
    if not traces:
        raise TraceError("cannot aggregate an empty list of traces")
    grid = traces[0].grid
    for trace in traces[1:]:
        grid.require_compatible(trace.grid)
    total_capacity = sum(t.capacity_mw for t in traces)
    total_mw = np.sum([t.power_mw() for t in traces], axis=0)
    kinds = {t.kind for t in traces}
    kind = kinds.pop() if len(kinds) == 1 else "mixed"
    return PowerTrace(grid, total_mw / total_capacity, name, kind, total_capacity)
