"""Calibration targets: does a trace behave like the paper's data?

DESIGN.md's substitution argument rests on the synthetic traces
matching the *statistics the experiments consume*.  This module makes
that checkable: each target is a named statistic with the band the
paper (or its figures) implies, and :func:`calibration_report` scores
any trace against the bands — useful both for regression-testing the
built-in generators and for users who swap in real ELIA/EMHIRES data
and want to confirm the library's assumptions hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from .base import PowerTrace


@dataclass(frozen=True)
class CalibrationTarget:
    """One statistic and its acceptable band.

    Attributes:
        name: Statistic label, e.g. ``"zero_fraction"``.
        low: Inclusive lower bound.
        high: Inclusive upper bound.
        source: Where the band comes from in the paper.
    """

    name: str
    low: float
    high: float
    source: str

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ConfigurationError(
                f"target {self.name}: low {self.low} > high {self.high}"
            )

    def contains(self, value: float) -> bool:
        """True when ``value`` falls inside the band."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one target check."""

    target: CalibrationTarget
    value: float

    @property
    def passed(self) -> bool:
        """True when the measured value is in band."""
        return self.target.contains(self.value)


#: Statistic extractors shared by both target sets.
_STATISTICS: dict[str, Callable[[PowerTrace], float]] = {
    "zero_fraction": lambda t: t.zero_fraction(),
    "median": lambda t: t.percentile(50),
    "tail_ratio_p99_p75": lambda t: t.tail_ratio(99, 75),
    "cov": lambda t: t.cov(),
    "mean": lambda t: float(t.values.mean()),
}


def solar_targets() -> list[CalibrationTarget]:
    """Figure-2b solar bands (a year of data at one site)."""
    return [
        CalibrationTarget(
            "zero_fraction", 0.40, 0.65,
            "Fig 2b: over 50% zero values for solar (nights)",
        ),
        CalibrationTarget(
            "median", 0.0, 0.05,
            "Fig 2b: solar median at zero (CDF crosses 0.5 at ~0)",
        ),
        CalibrationTarget(
            "tail_ratio_p99_p75", 2.5, 7.0,
            "Fig 2b: p99/p75 ratio of ~4x for solar",
        ),
        CalibrationTarget(
            "mean", 0.05, 0.30,
            "typical European solar capacity factor (EMHIRES)",
        ),
    ]


def wind_targets() -> list[CalibrationTarget]:
    """Figure-2b wind bands (a year of data at one site)."""
    return [
        CalibrationTarget(
            "zero_fraction", 0.0, 0.10,
            "Fig 2a: wind rarely goes down to zero",
        ),
        CalibrationTarget(
            "median", 0.05, 0.30,
            "Fig 2b: wind median at most ~20% of peak capacity",
        ),
        CalibrationTarget(
            "tail_ratio_p99_p75", 1.5, 3.5,
            "Fig 2b: p99/p75 ratio of ~2x for wind",
        ),
        CalibrationTarget(
            "mean", 0.15, 0.45,
            "typical European wind capacity factor (EMHIRES)",
        ),
    ]


def calibration_report(
    trace: PowerTrace, targets: list[CalibrationTarget] | None = None
) -> list[CalibrationResult]:
    """Score a trace against calibration targets.

    Args:
        trace: The trace under test; a full year gives the bands their
            intended meaning.
        targets: Bands to check; inferred from ``trace.kind`` when
            omitted (solar/wind), otherwise an error.

    Returns:
        One :class:`CalibrationResult` per target.
    """
    if targets is None:
        if trace.kind == "solar":
            targets = solar_targets()
        elif trace.kind == "wind":
            targets = wind_targets()
        else:
            raise ConfigurationError(
                f"no default targets for trace kind {trace.kind!r};"
                " pass targets explicitly"
            )
    results = []
    for target in targets:
        if target.name not in _STATISTICS:
            raise ConfigurationError(
                f"unknown statistic {target.name!r}; known:"
                f" {sorted(_STATISTICS)}"
            )
        value = _STATISTICS[target.name](trace)
        results.append(CalibrationResult(target, value))
    return results


def is_calibrated(
    trace: PowerTrace, targets: list[CalibrationTarget] | None = None
) -> bool:
    """True when every target band holds for the trace."""
    return all(r.passed for r in calibration_report(trace, targets))
