"""Synthetic renewable power traces (solar, wind) and the EU site catalog.

This subpackage stands in for the ELIA and EMHIRES datasets the paper
analyzes (see DESIGN.md §2 for the substitution argument).  The public
surface is:

- :class:`~repro.traces.base.PowerTrace` — a normalized power time series
  on a :class:`~repro.units.TimeGrid`.
- :func:`~repro.traces.solar.synthesize_solar` and
  :func:`~repro.traces.wind.synthesize_wind` — single-site generators.
- :class:`~repro.traces.sites.SiteCatalog` and
  :func:`~repro.traces.sites.synthesize_catalog_traces` — many sites with
  distance-decaying weather correlation.
"""

from .base import PowerTrace
from .gridsignal import CarbonIntensityTrace, GridSignal, SpotPriceTrace
from .weather import WeatherRegime, RegimeModel, sample_regime_sequence
from .solar import SolarConfig, clear_sky_profile, synthesize_solar
from .wind import WindConfig, turbine_power_curve, synthesize_wind
from .sites import (
    Site,
    SiteCatalog,
    default_european_catalog,
    synthesize_catalog_traces,
)
from .io import trace_to_csv, trace_from_csv, catalog_traces_to_csv
from .calibration import (
    CalibrationResult,
    CalibrationTarget,
    calibration_report,
    is_calibrated,
    solar_targets,
    wind_targets,
)

__all__ = [
    "PowerTrace",
    "GridSignal",
    "CarbonIntensityTrace",
    "SpotPriceTrace",
    "WeatherRegime",
    "RegimeModel",
    "sample_regime_sequence",
    "SolarConfig",
    "clear_sky_profile",
    "synthesize_solar",
    "WindConfig",
    "turbine_power_curve",
    "synthesize_wind",
    "Site",
    "SiteCatalog",
    "default_european_catalog",
    "synthesize_catalog_traces",
    "trace_to_csv",
    "trace_from_csv",
    "catalog_traces_to_csv",
    "CalibrationResult",
    "CalibrationTarget",
    "calibration_report",
    "is_calibrated",
    "solar_targets",
    "wind_targets",
]
