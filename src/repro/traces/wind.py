"""Synthetic wind production traces.

Wind speed follows a mean-reverting Ornstein-Uhlenbeck process whose
long-run target is set by the day-scale weather regime (calm / breezy /
stormy).  Speed maps to power through a standard turbine power curve:
zero below cut-in, cubic between cut-in and rated, flat at rated, and a
hard cut-out at storm speeds.  This produces the qualitative wind
behaviour of Figure 2a — sharp peaks and valleys that rarely touch zero
— and the Figure 2b CDF (median well below 20% of peak, modest tail
ratio compared to solar).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from ..errors import ConfigurationError, TraceError
from ..units import TimeGrid
from .base import PowerTrace
from .weather import (
    RegimeModel,
    default_wind_regimes,
    sample_regime_sequence,
)


@dataclass(frozen=True)
class WindConfig:
    """Parameters of the wind synthesis model.

    Attributes:
        capacity_mw: Rated farm capacity (paper assumes 400 MW).
        mean_speed_ms: Long-run mean wind speed at hub height for a
            ``level=1.0`` regime, metres/second.
        reversion_hours: OU mean-reversion time constant. Shorter values
            give the spikier traces seen at exposed sites.
        speed_volatility_ms: Stationary standard deviation of the OU
            speed fluctuation.
        cut_in_ms: Speed below which turbines produce nothing.
        rated_ms: Speed at which output saturates at capacity.
        cut_out_ms: Storm-protection shutdown speed.
        regime_model: Day-scale regime chain; defaults to calm/breezy/
            stormy.
        n_subfarms: Number of turbine clusters aggregated into the
            site's output.  The paper's "sites" are EMHIRES regional
            series — portfolios of farms whose independent turbulence
            averages out, keeping regional output off the floor even
            when individual turbines idle.  Each sub-farm shares the
            regime-driven mean wind but has independent OU fluctuation;
            site power is the sub-farm average.  Set to 1 for a single
            exposed farm.
    """

    capacity_mw: float = 400.0
    mean_speed_ms: float = 9.5
    reversion_hours: float = 6.0
    speed_volatility_ms: float = 2.8
    cut_in_ms: float = 3.0
    rated_ms: float = 12.0
    cut_out_ms: float = 25.0
    regime_model: RegimeModel | None = None
    n_subfarms: int = 4

    def __post_init__(self) -> None:
        if self.capacity_mw <= 0:
            raise ConfigurationError(
                f"capacity must be positive: {self.capacity_mw}"
            )
        if not 0 < self.cut_in_ms < self.rated_ms < self.cut_out_ms:
            raise ConfigurationError(
                "power curve speeds must satisfy 0 < cut_in < rated < cut_out"
            )
        if self.reversion_hours <= 0 or self.speed_volatility_ms < 0:
            raise ConfigurationError("invalid OU parameters")
        if self.n_subfarms < 1:
            raise ConfigurationError(
                f"n_subfarms must be >= 1: {self.n_subfarms}"
            )
        if self.mean_speed_ms <= 0:
            raise ConfigurationError(
                f"mean speed must be positive: {self.mean_speed_ms}"
            )

    @property
    def regimes(self) -> RegimeModel:
        """The active regime model (default wind regimes if unset)."""
        return self.regime_model or default_wind_regimes()


def turbine_power_curve(speed_ms: np.ndarray, config: WindConfig) -> np.ndarray:
    """Normalized turbine output in [0, 1] for each wind speed.

    Piecewise: 0 below cut-in, cubic ramp to rated, 1 until cut-out,
    0 above cut-out (storm shutdown).
    """
    speed = np.asarray(speed_ms, dtype=float)
    ramp = (speed**3 - config.cut_in_ms**3) / (
        config.rated_ms**3 - config.cut_in_ms**3
    )
    power = np.clip(ramp, 0.0, 1.0)
    power = np.where(speed < config.cut_in_ms, 0.0, power)
    power = np.where(speed >= config.cut_out_ms, 0.0, power)
    return power


def ou_speed_path(
    targets_ms: np.ndarray,
    step_hours: float,
    config: WindConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Ornstein-Uhlenbeck wind-speed path tracking per-step targets.

    ``targets_ms`` is the regime-driven long-run mean for every step;
    the OU process relaxes toward it with time constant
    ``config.reversion_hours`` while diffusing with the configured
    stationary volatility.  Speeds are floored at zero.

    The exact recurrence ``s_i = t_i + (s_{i-1} - t_i)·decay + σ·w_i``
    is the linear filter ``s_i = decay·s_{i-1} + x_i`` with input
    ``x_i = (1 - decay)·t_i + σ·w_i``, evaluated here in one
    :func:`scipy.signal.lfilter` call.  RNG draws are consumed in the
    same order as the reference loop (:func:`_ou_speed_path_loop`), so
    outputs agree to float round-off (~1e-14 over a year-long path —
    reassociation only; see the golden tests).
    """
    targets = np.asarray(targets_ms, dtype=float)
    n = len(targets)
    if n == 0:
        return np.empty(0)
    theta = 1.0 / config.reversion_hours
    decay = np.exp(-theta * step_hours)
    innovation = config.speed_volatility_ms * np.sqrt(1.0 - decay**2)
    draws = rng.standard_normal(n)
    state = targets[0] + config.speed_volatility_ms * rng.standard_normal()
    x = targets - decay * targets + innovation * draws
    path, _ = lfilter([1.0], [1.0, -decay], x, zi=np.array([decay * state]))
    return np.maximum(path, 0.0)


def _ou_speed_path_loop(
    targets_ms: np.ndarray,
    step_hours: float,
    config: WindConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Reference per-step implementation of :func:`ou_speed_path`.

    Kept for the golden equality tests and as executable documentation
    of the recurrence the vectorized kernel evaluates.
    """
    n = len(targets_ms)
    if n == 0:
        return np.empty(0)
    theta = 1.0 / config.reversion_hours
    decay = np.exp(-theta * step_hours)
    innovation = config.speed_volatility_ms * np.sqrt(1.0 - decay**2)
    draws = rng.standard_normal(n)
    path = np.empty(n)
    state = targets_ms[0] + config.speed_volatility_ms * rng.standard_normal()
    for i in range(n):
        state = targets_ms[i] + (state - targets_ms[i]) * decay
        state += innovation * draws[i]
        path[i] = max(state, 0.0)
    return path


def synthesize_wind(
    grid: TimeGrid,
    config: WindConfig | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    name: str = "wind",
    regime_indices: np.ndarray | None = None,
) -> PowerTrace:
    """Generate a synthetic wind :class:`PowerTrace`.

    Args:
        grid: Sampling grid; its step must divide one day evenly.
        config: Model parameters; defaults to a North-Sea-like site.
        rng: Random generator; if omitted, built from ``seed``.
        seed: Convenience seed when ``rng`` is not supplied.
        name: Label for the resulting trace.
        regime_indices: Optional externally-sampled per-day regime
            indices (used by the correlated multi-site synthesizer).

    Returns:
        A normalized wind trace on ``grid``.
    """
    config = config or WindConfig()
    if rng is None:
        rng = np.random.default_rng(seed)
    steps_per_day = grid.steps_per_day()
    if grid.n % steps_per_day:
        raise TraceError(
            f"grid length {grid.n} is not a whole number of days"
            f" ({steps_per_day} steps/day)"
        )
    days = grid.n // steps_per_day
    model = config.regimes
    if regime_indices is None:
        regime_indices = sample_regime_sequence(model, days, rng)
    elif len(regime_indices) != days:
        raise TraceError(
            f"got {len(regime_indices)} regime indices for {days} days"
        )
    # Per-step long-run speed targets from the daily regimes; smooth the
    # day boundaries so regime shifts look like passing fronts rather
    # than square waves.
    levels = np.array([model.regimes[i].level for i in regime_indices])
    targets = np.repeat(levels * config.mean_speed_ms, steps_per_day)
    if len(targets) > 2:
        kernel_width = max(steps_per_day // 4, 1)
        kernel = np.ones(kernel_width) / kernel_width
        targets = np.convolve(targets, kernel, mode="same")
    values = np.zeros(grid.n)
    for _ in range(config.n_subfarms):
        speeds = ou_speed_path(targets, grid.step_hours, config, rng)
        values += turbine_power_curve(speeds, config)
    values /= config.n_subfarms
    return PowerTrace(grid, values, name, "wind", config.capacity_mw)
