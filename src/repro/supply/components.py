"""Stateful supply components: firm top-ups composed behind generation.

A component sits between the base renewable trace and the datacenter:
offered a power *balance* each step (surplus when generation exceeds
the dispatch target, deficit when it falls short), it may absorb part
of a surplus (a battery charging) or contribute toward a deficit (a
battery discharging, a firm grid purchase drawing down its budget).

Components are frozen parameter objects; all mutable dispatch state
lives in the small state records returned by :meth:`initial_state`, so
one component instance can drive any number of concurrent runs.  The
arithmetic of :class:`BatteryDispatch` deliberately mirrors
:func:`repro.multisite.physical_battery.smooth_with_battery` operation
for operation — the offline smoothing analysis and the in-loop
dispatch are the same physics, and the physical-battery module now
delegates here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError

#: Purchase policies a :class:`PricedGridPower` can apply at dispatch
#: time.  ``always`` buys whenever there is a deficit and budget (the
#: flat-budget behavior of :class:`GridFirmPower`); ``threshold``
#: buys only when the step's price and carbon intensity are at or
#: below the configured caps; ``dvb`` runs the dynamic-virtual-battery
#: online policy (arXiv 2404.19387): the acceptable price rises as the
#: virtual battery drains, so urgency grows with deferred deficits.
GRID_POLICIES = ("always", "threshold", "dvb")


@runtime_checkable
class SupplyComponent(Protocol):
    """One stage of a supply stack.

    ``step`` is offered the current power balance in MW (positive:
    surplus available to absorb; negative: deficit to fill) and returns
    the component's power delta in MW — negative when absorbing (at
    most the surplus), positive when contributing (at most the
    deficit).  Components are evaluated in stack order, each seeing the
    balance left over by the previous one.

    State records returned by :meth:`initial_state` should expose
    ``to_dict()`` / ``from_dict()`` snapshots (as the shipped
    :class:`BatteryState` / :class:`GridBudgetState` do) so session
    checkpoints and the batched dispatcher's state sync can rebuild
    them without poking attributes ad hoc.
    """

    def initial_state(self) -> object:
        """Fresh mutable dispatch state for one run."""
        ...

    def step(
        self,
        state: object,
        balance_mw: float,
        step_hours: float,
        t: int = 0,
    ) -> float:
        """Dispatch one step; returns the delta in MW (see class doc).

        ``t`` is the grid index being dispatched — time-varying
        components (:class:`PricedGridPower`) use it to look up the
        step's price and carbon intensity; time-invariant ones ignore
        it.  Callers that iterate steps in order pass it positionally.
        """
        ...

    def pinned(self, state: object, surplus: bool) -> bool:
        """True when every step with the given balance sign is a no-op.

        "Pinned" means :meth:`step` provably returns a zero delta *and*
        leaves ``state`` unchanged for any ``balance_mw`` of the given
        sign (``surplus=True``: ``balance_mw >= 0``; ``surplus=False``:
        ``balance_mw < 0``).  The closed-loop simulators use this to
        skip whole dispatch windows; a conservative ``False`` is always
        safe.
        """
        ...


class BatteryState:
    """Mutable state-of-charge record for one :class:`BatteryDispatch` run."""

    __slots__ = ("soc_mwh",)

    def __init__(self, soc_mwh: float):
        self.soc_mwh = soc_mwh

    def to_dict(self) -> dict:
        """JSON-ready snapshot (session checkpoints, batch sync)."""
        return {"soc_mwh": self.soc_mwh}

    @classmethod
    def from_dict(cls, data: dict) -> "BatteryState":
        """Rebuild a state snapshotted by :meth:`to_dict`."""
        return cls(float(data["soc_mwh"]))


@dataclass(frozen=True)
class BatteryDispatch:
    """A stationary battery dispatched greedily against the balance.

    Charges from surplus and discharges into deficits, within the
    power rating, the capacity, and the stored energy; delivered
    energy pays the round-trip efficiency on discharge (stored MWh
    deplete by ``discharged / efficiency``), exactly like
    :class:`repro.multisite.physical_battery.BatterySpec`.

    Attributes:
        capacity_mwh: Usable energy capacity.
        max_power_mw: Charge and discharge power limit.
        efficiency: Round-trip efficiency, applied on discharge.
        initial_charge_fraction: State of charge at the start of a run.
    """

    capacity_mwh: float
    max_power_mw: float
    efficiency: float = 0.85
    initial_charge_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_mwh < 0:
            raise ConfigurationError(
                f"capacity must be >= 0: {self.capacity_mwh}"
            )
        if self.max_power_mw <= 0:
            raise ConfigurationError(
                f"power rating must be positive: {self.max_power_mw}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0,1]: {self.efficiency}"
            )
        if not 0.0 <= self.initial_charge_fraction <= 1.0:
            raise ConfigurationError(
                "initial charge must be in [0,1]:"
                f" {self.initial_charge_fraction}"
            )

    def initial_state(self) -> BatteryState:
        """Fresh SoC at the configured initial fraction."""
        return BatteryState(self.initial_charge_fraction * self.capacity_mwh)

    def step(
        self,
        state: BatteryState,
        balance_mw: float,
        step_hours: float,
        t: int = 0,
    ) -> float:
        """Charge from a surplus / discharge into a deficit.

        The branch structure and operation order replicate
        ``smooth_with_battery`` so the open-loop evaluation of a
        one-battery stack is bit-identical to the legacy smoothing.
        """
        if balance_mw >= 0.0:
            surplus_mw = min(balance_mw, self.max_power_mw)
            headroom_mwh = self.capacity_mwh - state.soc_mwh
            charge_mwh = min(surplus_mw * step_hours, headroom_mwh)
            state.soc_mwh += charge_mwh
            return -charge_mwh / step_hours
        deficit_mw = min(-balance_mw, self.max_power_mw)
        deliverable_mwh = state.soc_mwh * self.efficiency
        discharge_mwh = min(deficit_mw * step_hours, deliverable_mwh)
        state.soc_mwh -= discharge_mwh / self.efficiency if self.efficiency else 0.0
        return discharge_mwh / step_hours

    def pinned(self, state: BatteryState, surplus: bool) -> bool:
        """Full batteries ignore surpluses; empty ones ignore deficits.

        At zero headroom the surplus branch charges ``min(x, 0) = 0``
        and returns ``-0.0``; at zero deliverable energy the deficit
        branch discharges ``min(x, 0) = 0`` and returns ``0.0`` — in
        both cases the SoC is untouched and the delta adds nothing to
        the balance, so the step is a bit-exact no-op.

        The bounds must hold *exactly*: round-off in
        ``soc -= discharge / efficiency`` can leave the SoC a few ulps
        negative (or ``soc += charge`` a few ulps above capacity), and
        there :meth:`step` is not a no-op — it nudges the SoC back to
        the bound with a tiny nonzero delta.  Those steps stay live.
        """
        if surplus:
            headroom = self.capacity_mwh - state.soc_mwh
            return headroom == 0.0
        return (
            state.soc_mwh * self.efficiency == 0.0
            and not state.soc_mwh < 0.0
        )


class GridBudgetState:
    """Remaining purchasable energy for one :class:`GridFirmPower` run."""

    __slots__ = ("remaining_mwh",)

    def __init__(self, remaining_mwh: float):
        self.remaining_mwh = remaining_mwh

    def to_dict(self) -> dict:
        """JSON-ready snapshot (session checkpoints, batch sync)."""
        return {"remaining_mwh": self.remaining_mwh}

    @classmethod
    def from_dict(cls, data: dict) -> "GridBudgetState":
        """Rebuild a state snapshotted by :meth:`to_dict`."""
        return cls(float(data["remaining_mwh"]))


@dataclass(frozen=True)
class GridFirmPower:
    """A firm grid purchase: a finite energy budget drawn on deficits.

    The in-loop, causal counterpart of the offline waterfilling in
    :mod:`repro.multisite.battery` — it spends the budget
    chronologically as deficits arrive (no future knowledge), so its
    leverage lower-bounds what the offline allocator achieves.

    Attributes:
        budget_mwh: Total energy purchasable over the run.
        max_power_mw: Import power limit; unlimited when ``None``.
    """

    budget_mwh: float
    max_power_mw: float | None = None

    def __post_init__(self) -> None:
        if self.budget_mwh < 0:
            raise ConfigurationError(
                f"budget must be >= 0: {self.budget_mwh}"
            )
        if self.max_power_mw is not None and self.max_power_mw <= 0:
            raise ConfigurationError(
                f"power limit must be positive: {self.max_power_mw}"
            )

    def initial_state(self) -> GridBudgetState:
        """Fresh budget counter."""
        return GridBudgetState(self.budget_mwh)

    def step(
        self,
        state: GridBudgetState,
        balance_mw: float,
        step_hours: float,
        t: int = 0,
    ) -> float:
        """Fill a deficit from the remaining budget; never absorbs."""
        if balance_mw >= 0.0 or state.remaining_mwh <= 0.0:
            return 0.0
        draw_mw = -balance_mw
        if self.max_power_mw is not None:
            draw_mw = min(draw_mw, self.max_power_mw)
        draw_mwh = min(draw_mw * step_hours, state.remaining_mwh)
        state.remaining_mwh -= draw_mwh
        return draw_mwh / step_hours

    def pinned(self, state: GridBudgetState, surplus: bool) -> bool:
        """Never absorbs surplus; an exhausted budget ignores deficits."""
        if surplus:
            return True
        return state.remaining_mwh <= 0.0


class PricedGridState(GridBudgetState):
    """Budget plus cumulative cost/carbon for one :class:`PricedGridPower` run.

    Extends :class:`GridBudgetState` (so budget-poking callers keep
    working) with the purchase ledger and the dvb policy's virtual
    battery level.
    """

    __slots__ = ("cost_usd", "carbon_kg", "virtual_mwh")

    def __init__(
        self,
        remaining_mwh: float,
        cost_usd: float = 0.0,
        carbon_kg: float = 0.0,
        virtual_mwh: float = 0.0,
    ):
        super().__init__(remaining_mwh)
        self.cost_usd = cost_usd
        self.carbon_kg = carbon_kg
        self.virtual_mwh = virtual_mwh

    def to_dict(self) -> dict:
        """JSON-ready snapshot (session checkpoints, batch sync)."""
        return {
            "remaining_mwh": self.remaining_mwh,
            "cost_usd": self.cost_usd,
            "carbon_kg": self.carbon_kg,
            "virtual_mwh": self.virtual_mwh,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PricedGridState":
        """Rebuild a state snapshotted by :meth:`to_dict`."""
        return cls(
            float(data["remaining_mwh"]),
            float(data.get("cost_usd", 0.0)),
            float(data.get("carbon_kg", 0.0)),
            float(data.get("virtual_mwh", 0.0)),
        )


@dataclass(frozen=True, eq=False)
class PricedGridPower(GridFirmPower):
    """A grid purchase priced and carbon-accounted per step.

    Generalizes :class:`GridFirmPower`: each step carries a wholesale
    price and a carbon intensity, every MWh drawn accrues cost and
    emissions in the state ledger, and a purchase *policy* may decline
    a buy when the step is expensive or dirty.  With ``policy="always"``
    and any price series, the energy arithmetic is operation-for-
    operation identical to :class:`GridFirmPower` — the flat-budget
    behavior is the bitwise degenerate case the golden tests pin.

    Attributes:
        price_per_mwh: Per-step price, aligned to the dispatch grid;
            ``None`` means free (price 0 everywhere).
        carbon_per_mwh: Per-step carbon intensity in kgCO2/MWh
            (numerically gCO2/kWh); ``None`` means carbon-free.
        policy: One of :data:`GRID_POLICIES`.
        price_threshold: Price cap for ``threshold``; ``dvb``'s
            maximum acceptable price (theta-high).  ``inf`` disables.
        carbon_threshold: Carbon cap for ``threshold``; ``inf``
            disables.
        dvb_theta_lo: ``dvb``'s acceptable price at a full virtual
            battery (theta-low).
        dvb_capacity_mwh: ``dvb``'s virtual battery capacity; deferred
            deficits drain it, purchases refill it, and the effective
            threshold interpolates theta-low → theta-high as it drains.
    """

    price_per_mwh: np.ndarray | None = None
    carbon_per_mwh: np.ndarray | None = None
    policy: str = "always"
    price_threshold: float = math.inf
    carbon_threshold: float = math.inf
    dvb_theta_lo: float = 0.0
    dvb_capacity_mwh: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.policy not in GRID_POLICIES:
            raise ConfigurationError(
                f"unknown grid policy {self.policy!r}; expected one of"
                f" {GRID_POLICIES}"
            )
        for field_name in ("price_per_mwh", "carbon_per_mwh"):
            series = getattr(self, field_name)
            if series is None:
                continue
            series = np.asarray(series, dtype=float)
            if series.ndim != 1:
                raise ConfigurationError(
                    f"{field_name} must be 1-D, got shape {series.shape}"
                )
            if np.any(~np.isfinite(series)):
                raise ConfigurationError(
                    f"{field_name} contains non-finite values"
                )
            object.__setattr__(self, field_name, series)
        if math.isnan(self.price_threshold) or math.isnan(
            self.carbon_threshold
        ):
            raise ConfigurationError("thresholds cannot be NaN")
        if self.policy == "dvb":
            if not math.isfinite(self.price_threshold):
                raise ConfigurationError(
                    "dvb needs a finite price_threshold (theta-high)"
                )
            if self.dvb_capacity_mwh <= 0.0:
                raise ConfigurationError(
                    "dvb needs a positive virtual battery capacity:"
                    f" {self.dvb_capacity_mwh}"
                )
            if self.dvb_theta_lo > self.price_threshold:
                raise ConfigurationError(
                    "dvb theta-low must not exceed the price threshold"
                )

    def initial_state(self) -> PricedGridState:
        """Fresh budget and ledger; the dvb virtual battery starts full."""
        return PricedGridState(
            self.budget_mwh,
            virtual_mwh=self.dvb_capacity_mwh if self.policy == "dvb" else 0.0,
        )

    def buys(self, state: PricedGridState, price: float, carbon: float) -> bool:
        """Whether the policy purchases at this step's price and carbon."""
        if self.policy == "always":
            return True
        if self.policy == "threshold":
            return (
                price <= self.price_threshold
                and carbon <= self.carbon_threshold
            )
        # dvb: the acceptable price interpolates theta-low (full virtual
        # battery, no urgency) to theta-high (empty, must buy).
        theta = self.dvb_theta_lo + (
            self.price_threshold - self.dvb_theta_lo
        ) * (1.0 - state.virtual_mwh / self.dvb_capacity_mwh)
        return price <= theta

    def step(
        self,
        state: PricedGridState,
        balance_mw: float,
        step_hours: float,
        t: int = 0,
    ) -> float:
        """Fill a deficit when the policy accepts the step's price.

        The deficit/budget guards, draw arithmetic, and budget update
        replicate :meth:`GridFirmPower.step` operation for operation;
        only the policy gate and the ledger updates are new, so the
        ``always`` policy is a bit-exact superset of the flat budget.
        """
        if balance_mw >= 0.0 or state.remaining_mwh <= 0.0:
            return 0.0
        price = (
            0.0 if self.price_per_mwh is None
            else float(self.price_per_mwh[t])
        )
        carbon = (
            0.0 if self.carbon_per_mwh is None
            else float(self.carbon_per_mwh[t])
        )
        if not self.buys(state, price, carbon):
            if self.policy == "dvb":
                # A declined deficit drains the virtual battery by the
                # energy it chose not to buy, raising future urgency.
                state.virtual_mwh = max(
                    state.virtual_mwh - (-balance_mw) * step_hours, 0.0
                )
            return 0.0
        draw_mw = -balance_mw
        if self.max_power_mw is not None:
            draw_mw = min(draw_mw, self.max_power_mw)
        draw_mwh = min(draw_mw * step_hours, state.remaining_mwh)
        state.remaining_mwh -= draw_mwh
        state.cost_usd += draw_mwh * price
        state.carbon_kg += draw_mwh * carbon
        if self.policy == "dvb":
            state.virtual_mwh = min(
                state.virtual_mwh + draw_mwh, self.dvb_capacity_mwh
            )
        return draw_mwh / step_hours

    # ``pinned`` is inherited: a surplus never engages the component,
    # and an exhausted budget makes ``step`` return before any ledger
    # or virtual-battery mutation — both provable no-ops even though
    # prices vary and dvb state otherwise moves on declined deficits.
