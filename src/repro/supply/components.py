"""Stateful supply components: firm top-ups composed behind generation.

A component sits between the base renewable trace and the datacenter:
offered a power *balance* each step (surplus when generation exceeds
the dispatch target, deficit when it falls short), it may absorb part
of a surplus (a battery charging) or contribute toward a deficit (a
battery discharging, a firm grid purchase drawing down its budget).

Components are frozen parameter objects; all mutable dispatch state
lives in the small state records returned by :meth:`initial_state`, so
one component instance can drive any number of concurrent runs.  The
arithmetic of :class:`BatteryDispatch` deliberately mirrors
:func:`repro.multisite.physical_battery.smooth_with_battery` operation
for operation — the offline smoothing analysis and the in-loop
dispatch are the same physics, and the physical-battery module now
delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..errors import ConfigurationError


@runtime_checkable
class SupplyComponent(Protocol):
    """One stage of a supply stack.

    ``step`` is offered the current power balance in MW (positive:
    surplus available to absorb; negative: deficit to fill) and returns
    the component's power delta in MW — negative when absorbing (at
    most the surplus), positive when contributing (at most the
    deficit).  Components are evaluated in stack order, each seeing the
    balance left over by the previous one.

    State records returned by :meth:`initial_state` should expose
    ``to_dict()`` / ``from_dict()`` snapshots (as the shipped
    :class:`BatteryState` / :class:`GridBudgetState` do) so session
    checkpoints and the batched dispatcher's state sync can rebuild
    them without poking attributes ad hoc.
    """

    def initial_state(self) -> object:
        """Fresh mutable dispatch state for one run."""
        ...

    def step(self, state: object, balance_mw: float, step_hours: float) -> float:
        """Dispatch one step; returns the delta in MW (see class doc)."""
        ...

    def pinned(self, state: object, surplus: bool) -> bool:
        """True when every step with the given balance sign is a no-op.

        "Pinned" means :meth:`step` provably returns a zero delta *and*
        leaves ``state`` unchanged for any ``balance_mw`` of the given
        sign (``surplus=True``: ``balance_mw >= 0``; ``surplus=False``:
        ``balance_mw < 0``).  The closed-loop simulators use this to
        skip whole dispatch windows; a conservative ``False`` is always
        safe.
        """
        ...


class BatteryState:
    """Mutable state-of-charge record for one :class:`BatteryDispatch` run."""

    __slots__ = ("soc_mwh",)

    def __init__(self, soc_mwh: float):
        self.soc_mwh = soc_mwh

    def to_dict(self) -> dict:
        """JSON-ready snapshot (session checkpoints, batch sync)."""
        return {"soc_mwh": self.soc_mwh}

    @classmethod
    def from_dict(cls, data: dict) -> "BatteryState":
        """Rebuild a state snapshotted by :meth:`to_dict`."""
        return cls(float(data["soc_mwh"]))


@dataclass(frozen=True)
class BatteryDispatch:
    """A stationary battery dispatched greedily against the balance.

    Charges from surplus and discharges into deficits, within the
    power rating, the capacity, and the stored energy; delivered
    energy pays the round-trip efficiency on discharge (stored MWh
    deplete by ``discharged / efficiency``), exactly like
    :class:`repro.multisite.physical_battery.BatterySpec`.

    Attributes:
        capacity_mwh: Usable energy capacity.
        max_power_mw: Charge and discharge power limit.
        efficiency: Round-trip efficiency, applied on discharge.
        initial_charge_fraction: State of charge at the start of a run.
    """

    capacity_mwh: float
    max_power_mw: float
    efficiency: float = 0.85
    initial_charge_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_mwh < 0:
            raise ConfigurationError(
                f"capacity must be >= 0: {self.capacity_mwh}"
            )
        if self.max_power_mw <= 0:
            raise ConfigurationError(
                f"power rating must be positive: {self.max_power_mw}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0,1]: {self.efficiency}"
            )
        if not 0.0 <= self.initial_charge_fraction <= 1.0:
            raise ConfigurationError(
                "initial charge must be in [0,1]:"
                f" {self.initial_charge_fraction}"
            )

    def initial_state(self) -> BatteryState:
        """Fresh SoC at the configured initial fraction."""
        return BatteryState(self.initial_charge_fraction * self.capacity_mwh)

    def step(
        self, state: BatteryState, balance_mw: float, step_hours: float
    ) -> float:
        """Charge from a surplus / discharge into a deficit.

        The branch structure and operation order replicate
        ``smooth_with_battery`` so the open-loop evaluation of a
        one-battery stack is bit-identical to the legacy smoothing.
        """
        if balance_mw >= 0.0:
            surplus_mw = min(balance_mw, self.max_power_mw)
            headroom_mwh = self.capacity_mwh - state.soc_mwh
            charge_mwh = min(surplus_mw * step_hours, headroom_mwh)
            state.soc_mwh += charge_mwh
            return -charge_mwh / step_hours
        deficit_mw = min(-balance_mw, self.max_power_mw)
        deliverable_mwh = state.soc_mwh * self.efficiency
        discharge_mwh = min(deficit_mw * step_hours, deliverable_mwh)
        state.soc_mwh -= discharge_mwh / self.efficiency if self.efficiency else 0.0
        return discharge_mwh / step_hours

    def pinned(self, state: BatteryState, surplus: bool) -> bool:
        """Full batteries ignore surpluses; empty ones ignore deficits.

        At zero headroom the surplus branch charges ``min(x, 0) = 0``
        and returns ``-0.0``; at zero deliverable energy the deficit
        branch discharges ``min(x, 0) = 0`` and returns ``0.0`` — in
        both cases the SoC is untouched and the delta adds nothing to
        the balance, so the step is a bit-exact no-op.

        The bounds must hold *exactly*: round-off in
        ``soc -= discharge / efficiency`` can leave the SoC a few ulps
        negative (or ``soc += charge`` a few ulps above capacity), and
        there :meth:`step` is not a no-op — it nudges the SoC back to
        the bound with a tiny nonzero delta.  Those steps stay live.
        """
        if surplus:
            headroom = self.capacity_mwh - state.soc_mwh
            return headroom == 0.0
        return (
            state.soc_mwh * self.efficiency == 0.0
            and not state.soc_mwh < 0.0
        )


class GridBudgetState:
    """Remaining purchasable energy for one :class:`GridFirmPower` run."""

    __slots__ = ("remaining_mwh",)

    def __init__(self, remaining_mwh: float):
        self.remaining_mwh = remaining_mwh

    def to_dict(self) -> dict:
        """JSON-ready snapshot (session checkpoints, batch sync)."""
        return {"remaining_mwh": self.remaining_mwh}

    @classmethod
    def from_dict(cls, data: dict) -> "GridBudgetState":
        """Rebuild a state snapshotted by :meth:`to_dict`."""
        return cls(float(data["remaining_mwh"]))


@dataclass(frozen=True)
class GridFirmPower:
    """A firm grid purchase: a finite energy budget drawn on deficits.

    The in-loop, causal counterpart of the offline waterfilling in
    :mod:`repro.multisite.battery` — it spends the budget
    chronologically as deficits arrive (no future knowledge), so its
    leverage lower-bounds what the offline allocator achieves.

    Attributes:
        budget_mwh: Total energy purchasable over the run.
        max_power_mw: Import power limit; unlimited when ``None``.
    """

    budget_mwh: float
    max_power_mw: float | None = None

    def __post_init__(self) -> None:
        if self.budget_mwh < 0:
            raise ConfigurationError(
                f"budget must be >= 0: {self.budget_mwh}"
            )
        if self.max_power_mw is not None and self.max_power_mw <= 0:
            raise ConfigurationError(
                f"power limit must be positive: {self.max_power_mw}"
            )

    def initial_state(self) -> GridBudgetState:
        """Fresh budget counter."""
        return GridBudgetState(self.budget_mwh)

    def step(
        self, state: GridBudgetState, balance_mw: float, step_hours: float
    ) -> float:
        """Fill a deficit from the remaining budget; never absorbs."""
        if balance_mw >= 0.0 or state.remaining_mwh <= 0.0:
            return 0.0
        draw_mw = -balance_mw
        if self.max_power_mw is not None:
            draw_mw = min(draw_mw, self.max_power_mw)
        draw_mwh = min(draw_mw * step_hours, state.remaining_mwh)
        state.remaining_mwh -= draw_mwh
        return draw_mwh / step_hours

    def pinned(self, state: GridBudgetState, surplus: bool) -> bool:
        """Never absorbs surplus; an exhausted budget ignores deficits."""
        if surplus:
            return True
        return state.remaining_mwh <= 0.0
