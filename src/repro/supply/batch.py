"""Batched closed-loop supply dispatch: many sites, one array program.

:class:`BatchedDispatch` advances the closed-loop battery / grid-budget
dynamics of *S* same-grid-length sites in one ``(S,)``-shaped update per
step, instead of S scalar :meth:`SupplyDispatcher.dispatch` calls.  The
fleet engine uses it to keep closed-loop sites inside its columnar
program: per step, one vectorized dispatch advances every site's supply
state, and only sites whose delivered power crosses a wake threshold
(or that have a scheduled arrival / finish / expiry) run their step
kernel.

Bit-identity with the scalar path is a hard contract (the golden tests
compare batched fleet runs against per-site closed-loop runs bitwise),
maintained by construction:

* Every elementwise operation mirrors the scalar dispatch operation for
  operation — same multiplies, same divides, same min/max order — so
  IEEE-754 rounding is identical lane by lane.
* Both branches of each component (charge/discharge, draw/skip) are
  computed for all lanes and selected with ``np.where``; the discarded
  branch's values never feed back into state, and no reachable input
  produces a NaN that could leak through the selection.
* Inactive grid lanes add ``+0.0`` to their balance, which is exact:
  a balance entering the grid stage is never ``-0.0`` (it starts as
  ``base - demand``, which is ``+0.0`` when they cancel, and battery
  deltas can only keep it signed-positive-zero), so ``x + 0.0 == x``
  bit for bit.
* Telemetry uses the same strict sign tests (``< 0.0`` / ``> 0.0``) as
  the scalar accumulators, and slots accumulate in component order.

Heterogeneous stacks batch too: slot ``k`` processes the ``k``-th
component of every site that has one, partitioned by component type
into battery and grid lanes with per-slot site-index arrays.  Sites
whose stacks contain anything other than the two shipped component
types cannot be batched (their ``step`` may differ) — the fleet routes
them through the per-site engine; :meth:`BatchedDispatch.supports`
answers the eligibility question.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .components import (
    GRID_POLICIES,
    BatteryDispatch,
    BatteryState,
    GridBudgetState,
    GridFirmPower,
    PricedGridPower,
    PricedGridState,
)
from .stack import SupplyDispatcher, SupplyEvaluation

__all__ = ["BatchedDispatch"]


class _BatteryLanes:
    """One slot's battery lanes: SoA state + parameters.

    ``cells`` holds ``(states_list, slot)`` write-back addresses — the
    owning dispatcher's mutable state list and the component's slot in
    it — so :meth:`BatchedDispatch.finalize` can install fresh state
    records instead of poking attributes on the originals.
    """

    __slots__ = ("idx", "soc", "cap", "maxp", "eff", "h", "cells")

    def __init__(self, members, step_hours, slot):
        self.idx = np.array([i for i, _, _, _ in members])
        self.soc = np.array([s.soc_mwh for _, _, s, _ in members])
        self.cap = np.array([c.capacity_mwh for _, c, _, _ in members])
        self.maxp = np.array([c.max_power_mw for _, c, _, _ in members])
        self.eff = np.array([c.efficiency for _, c, _, _ in members])
        self.h = step_hours[self.idx]
        self.cells = [(states, slot) for _, _, _, states in members]


class _GridLanes:
    """One slot's grid lanes: SoA state + parameters (see above)."""

    __slots__ = ("idx", "remaining", "maxp", "h", "cells")

    def __init__(self, members, step_hours, slot):
        self.idx = np.array([i for i, _, _, _ in members])
        self.remaining = np.array(
            [s.remaining_mwh for _, _, s, _ in members]
        )
        self.maxp = np.array([
            np.inf if c.max_power_mw is None else c.max_power_mw
            for _, c, _, _ in members
        ])
        self.h = step_hours[self.idx]
        self.cells = [(states, slot) for _, _, _, states in members]


class _PricedGridLanes:
    """One slot's priced-grid lanes: SoA state, ledger, and policy.

    Per-lane price/carbon series stack into ``(L, n)`` matrices (zeros
    for a ``None`` series — the scalar path's "free"/"carbon-free"
    value), and the three policies batch through masks: ``is_thresh``
    / ``is_dvb`` select which lanes apply which gate, with ``always``
    lanes passing unconditionally.  ``vcap_safe`` substitutes 1.0 on
    non-dvb lanes so the theta interpolation never divides by zero
    (its result is discarded by the mask).
    """

    __slots__ = (
        "idx", "remaining", "maxp", "h", "cells", "prices", "carbons",
        "is_thresh", "is_dvb", "pth", "cth", "tlo", "virtual", "vcap",
        "vcap_safe", "cost", "carbon",
    )

    def __init__(self, members, step_hours, slot, n):
        self.idx = np.array([i for i, _, _, _ in members])
        self.remaining = np.array(
            [s.remaining_mwh for _, _, s, _ in members]
        )
        self.maxp = np.array([
            np.inf if c.max_power_mw is None else c.max_power_mw
            for _, c, _, _ in members
        ])
        self.h = step_hours[self.idx]
        self.prices = np.vstack([
            np.zeros(n) if c.price_per_mwh is None
            else np.asarray(c.price_per_mwh[:n], dtype=float)
            for _, c, _, _ in members
        ])
        self.carbons = np.vstack([
            np.zeros(n) if c.carbon_per_mwh is None
            else np.asarray(c.carbon_per_mwh[:n], dtype=float)
            for _, c, _, _ in members
        ])
        policy = np.array([
            GRID_POLICIES.index(c.policy) for _, c, _, _ in members
        ])
        self.is_thresh = policy == 1
        self.is_dvb = policy == 2
        self.pth = np.array([c.price_threshold for _, c, _, _ in members])
        self.cth = np.array(
            [c.carbon_threshold for _, c, _, _ in members]
        )
        self.tlo = np.array([c.dvb_theta_lo for _, c, _, _ in members])
        self.virtual = np.array(
            [s.virtual_mwh for _, _, s, _ in members]
        )
        self.vcap = np.array(
            [c.dvb_capacity_mwh for _, c, _, _ in members]
        )
        self.vcap_safe = np.where(self.vcap > 0.0, self.vcap, 1.0)
        self.cost = np.array([s.cost_usd for _, _, s, _ in members])
        self.carbon = np.array([s.carbon_kg for _, _, s, _ in members])
        self.cells = [(states, slot) for _, _, _, states in members]


class BatchedDispatch:
    """Vectorized closed-loop dispatch over many bound dispatchers.

    Rebinds every dispatcher's :class:`SupplyEvaluation` telemetry
    arrays to rows of shared site-major ``(S, n)`` matrices, so per-step
    writes are one column store per series and each site's evaluation
    ends the run already filled — no copy-out.

    Args:
        dispatchers: One bound :class:`SupplyDispatcher` per site.  All
            must be batchable (:meth:`supports`) and share one grid
            length.
    """

    def __init__(self, dispatchers: Sequence[SupplyDispatcher]):
        if not dispatchers:
            raise ConfigurationError("batched dispatch needs sites")
        for d in dispatchers:
            if not self.supports(d):
                raise ConfigurationError(
                    "batched dispatch supports only BatteryDispatch / "
                    "GridFirmPower / PricedGridPower stacks"
                )
        self._dispatchers = tuple(dispatchers)
        self._capacity = np.array([d.capacity_mw for d in dispatchers])
        self._h = np.array([d.step_hours for d in dispatchers])
        self._base = np.vstack([d.base_mw_series() for d in dispatchers])
        base = self._base
        s, n = base.shape
        self.n_sites = s
        self.n = n
        # Shared site-major telemetry, one (S, n) matrix per series in
        # the documented SupplyEvaluation.SERIES_FIELDS order; each
        # dispatcher's evaluation attributes are rebound to its row.
        # Delivered rows keep each site's un-dispatched default (the
        # base values), as the scalar evaluation does.
        matrices = {
            name: np.zeros((s, n))
            for name in SupplyEvaluation.SERIES_FIELDS
        }
        matrices["delivered"] = np.vstack(
            [d.evaluation.delivered for d in dispatchers]
        )
        for i, d in enumerate(dispatchers):
            for name, matrix in matrices.items():
                setattr(d.evaluation, name, matrix[i])
        self._delivered = matrices["delivered"]
        self._soc = matrices["soc_mwh"]
        self._charge = matrices["charge_mwh"]
        self._discharge = matrices["discharge_mwh"]
        self._grid_import = matrices["grid_import_mwh"]
        self._curtailed = matrices["curtailed_mwh"]
        self._cost = matrices["cost_usd"]
        self._carbon = matrices["carbon_kg"]
        # Slot k holds the k-th component of every site that has one,
        # split into battery, flat-grid, and priced-grid lanes
        # (dispatch order = slot order; lanes within a slot belong to
        # distinct sites, so their relative order is immaterial).
        self._slots: list[tuple[
            _BatteryLanes | None, _GridLanes | None,
            _PricedGridLanes | None,
        ]]
        self._slots = []
        max_slots = max(len(d.components) for d in dispatchers)
        for k in range(max_slots):
            batteries = []
            grids = []
            priced = []
            for i, d in enumerate(dispatchers):
                if k >= len(d.components):
                    continue
                component = d.components[k]
                state = d.states[k]
                if type(component) is BatteryDispatch:
                    batteries.append((i, component, state, d.states))
                elif type(component) is PricedGridPower:
                    priced.append((i, component, state, d.states))
                else:
                    grids.append((i, component, state, d.states))
            self._slots.append((
                _BatteryLanes(batteries, self._h, k) if batteries else None,
                _GridLanes(grids, self._h, k) if grids else None,
                _PricedGridLanes(priced, self._h, k, n) if priced else None,
            ))

    @staticmethod
    def supports(dispatcher: SupplyDispatcher) -> bool:
        """True when every component has the exact shipped types.

        Subclasses are excluded — an overridden ``step`` would
        invalidate the inlined arithmetic, exactly as in
        :meth:`SupplyDispatcher.advance_span`.
        """
        return all(
            type(c) in (BatteryDispatch, GridFirmPower, PricedGridPower)
            for c in dispatcher.components
        )

    def step_many(self, t: int, demand_norm: np.ndarray) -> np.ndarray:
        """Dispatch step ``t`` for every site at once.

        Args:
            t: Grid index being processed (sites advance in lockstep).
            demand_norm: Normalized demand per site, shape ``(S,)``.

        Returns:
            Normalized delivered power per site (after the
            covered-demand ulp clamp, before any [0, 1] clip) — exactly
            what S scalar :meth:`SupplyDispatcher.dispatch` calls would
            return.
        """
        capacity = self._capacity
        base_mw = self._base[:, t]
        demand = np.maximum(demand_norm, 0.0)
        demand_mw = demand * capacity
        balance = base_mw - demand_mw
        covered = balance >= 0.0
        delivered_mw = base_mw.copy()
        s = self.n_sites
        soc_t = np.zeros(s)
        charge_t = np.zeros(s)
        discharge_t = np.zeros(s)
        import_t = np.zeros(s)
        cost_t = np.zeros(s)
        carbon_t = np.zeros(s)
        for battery, grid, priced in self._slots:
            if battery is not None:
                idx = battery.idx
                bal = balance[idx]
                h = battery.h
                soc = battery.soc
                surplus = bal >= 0.0
                # Charge branch (BatteryDispatch.step, surplus side).
                charge_mwh = np.minimum(
                    np.minimum(bal, battery.maxp) * h, battery.cap - soc
                )
                soc_chg = soc + charge_mwh
                delta_chg = -charge_mwh / h
                # Discharge branch (deficit side).
                discharge_mwh = np.minimum(
                    np.minimum(-bal, battery.maxp) * h, soc * battery.eff
                )
                soc_dis = soc - discharge_mwh / battery.eff
                delta_dis = discharge_mwh / h
                delta = np.where(surplus, delta_chg, delta_dis)
                new_soc = np.where(surplus, soc_chg, soc_dis)
                battery.soc = new_soc
                balance[idx] = bal + delta
                delivered_mw[idx] += delta
                dh = delta * h
                charge_t[idx] += np.where(delta < 0.0, -dh, 0.0)
                discharge_t[idx] += np.where(delta > 0.0, dh, 0.0)
                soc_t[idx] += new_soc
            if grid is not None:
                idx = grid.idx
                bal = balance[idx]
                h = grid.h
                remaining = grid.remaining
                active = (bal < 0.0) & (remaining > 0.0)
                draw_mwh = np.minimum(
                    np.minimum(-bal, grid.maxp) * h, remaining
                )
                delta = np.where(active, draw_mwh / h, 0.0)
                grid.remaining = np.where(
                    active, remaining - draw_mwh, remaining
                )
                # Inactive lanes add +0.0 — exact, since a reachable
                # balance is never -0.0 (see module docstring).
                balance[idx] = bal + delta
                delivered_mw[idx] += delta
                import_t[idx] += np.where(delta > 0.0, delta * h, 0.0)
            if priced is not None:
                idx = priced.idx
                bal = balance[idx]
                h = priced.h
                remaining = priced.remaining
                price = priced.prices[:, t]
                carbon = priced.carbons[:, t]
                # Policy gate (PricedGridPower.buys, branch-selected):
                # always lanes pass, threshold lanes compare both caps,
                # dvb lanes compare against the interpolated theta.
                theta = priced.tlo + (priced.pth - priced.tlo) * (
                    1.0 - priced.virtual / priced.vcap_safe
                )
                buy = np.where(
                    priced.is_dvb,
                    price <= theta,
                    np.where(
                        priced.is_thresh,
                        (price <= priced.pth) & (carbon <= priced.cth),
                        True,
                    ),
                )
                active = (bal < 0.0) & (remaining > 0.0)
                draw = active & buy
                draw_mwh = np.minimum(
                    np.minimum(-bal, priced.maxp) * h, remaining
                )
                delta = np.where(draw, draw_mwh / h, 0.0)
                priced.remaining = np.where(
                    draw, remaining - draw_mwh, remaining
                )
                cost_new = np.where(
                    draw, priced.cost + draw_mwh * price, priced.cost
                )
                carbon_new = np.where(
                    draw, priced.carbon + draw_mwh * carbon, priced.carbon
                )
                # dvb virtual battery: refilled by a buy, drained by a
                # declined deficit, untouched otherwise (and on non-dvb
                # lanes, whose virtual level stays 0).
                v = priced.virtual
                defer = active & ~buy & priced.is_dvb
                refill = draw & priced.is_dvb
                new_v = np.where(
                    refill,
                    np.minimum(v + draw_mwh, priced.vcap),
                    np.where(
                        defer, np.maximum(v - (-bal) * h, 0.0), v
                    ),
                )
                priced.virtual = new_v
                balance[idx] = bal + delta
                delivered_mw[idx] += delta
                import_t[idx] += np.where(delta > 0.0, delta * h, 0.0)
                # Snapshot-diff accounting, as the scalar paths do.
                cost_t[idx] += np.where(
                    delta > 0.0, cost_new - priced.cost, 0.0
                )
                carbon_t[idx] += np.where(
                    delta > 0.0, carbon_new - priced.carbon, 0.0
                )
                priced.cost = cost_new
                priced.carbon = carbon_new
        self._soc[:, t] = soc_t
        self._charge[:, t] = charge_t
        self._discharge[:, t] = discharge_t
        self._grid_import[:, t] = import_t
        self._cost[:, t] = cost_t
        self._carbon[:, t] = carbon_t
        h_all = self._h
        self._curtailed[:, t] = np.where(
            balance > 0.0, balance * h_all, 0.0
        )
        delivered = delivered_mw / capacity
        # The covered-demand ulp clamp, as scalar dispatch applies it.
        clamp = covered & (delivered < demand)
        if clamp.any():
            delivered = np.where(clamp, demand, delivered)
        self._delivered[:, t] = delivered
        return delivered

    def finalize(self) -> None:
        """Install the advanced lane state as fresh component states.

        The telemetry matrices are already each site's evaluation (rows
        were rebound at construction); only the mutable component
        states need syncing for anything that inspects them post-run.
        Each lane's advanced value is materialized through the state
        type's documented ``from_dict`` snapshot constructor and
        swapped into the owning dispatcher's state slot — no ad-hoc
        attribute poking on live state objects.
        """
        for battery, grid, priced in self._slots:
            if battery is not None:
                soc = battery.soc
                for j, (states, k) in enumerate(battery.cells):
                    states[k] = BatteryState.from_dict(
                        {"soc_mwh": float(soc[j])}
                    )
            if grid is not None:
                remaining = grid.remaining
                for j, (states, k) in enumerate(grid.cells):
                    states[k] = GridBudgetState.from_dict(
                        {"remaining_mwh": float(remaining[j])}
                    )
            if priced is not None:
                for j, (states, k) in enumerate(priced.cells):
                    states[k] = PricedGridState.from_dict({
                        "remaining_mwh": float(priced.remaining[j]),
                        "cost_usd": float(priced.cost[j]),
                        "carbon_kg": float(priced.carbon[j]),
                        "virtual_mwh": float(priced.virtual[j]),
                    })
