"""Serializable supply specifications for the experiments layer.

A :class:`SupplySpec` is the declarative, content-hashable description
of a supply stack — what lives in a
:class:`~repro.experiments.scenario.Scenario` and behind the CLI's
``--battery-mwh`` / ``--grid-budget-mwh`` flags.  ``build()`` turns it
into the live :class:`~repro.supply.stack.SupplyStack`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..traces import CarbonIntensityTrace, PowerTrace, SpotPriceTrace
from .components import (
    GRID_POLICIES,
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
    SupplyComponent,
)
from .stack import SupplyStack

#: Supported dispatch modes. ``closed`` lets the simulators query the
#: stack each wake with live demand; ``open`` precomputes the delivered
#: series against the firming target (what the scheduler always uses).
SUPPLY_MODES = ("closed", "open")

#: Price-trace synthesizers a spec can name.  ``none`` keeps the grid
#: component flat (plain :class:`GridFirmPower`); the rest map to
#: :class:`~repro.traces.SpotPriceTrace` constructors.
PRICE_TRACES = ("none", "constant", "double_peak", "merit_order")

#: Carbon-trace synthesizers: ``daily`` is the UK-realistic 140–280
#: gCO2/kWh cycle of :meth:`CarbonIntensityTrace.daily_cycle`.
CARBON_TRACES = ("none", "constant", "daily")

#: Seed for the merit-order price noise — fixed so a spec is fully
#: deterministic and its scenario hash covers the generated series.
MERIT_ORDER_SEED = 0

#: Hours of storage a default-rated battery can sustain at full power —
#: the "4-hour system" convention shared with
#: :func:`repro.multisite.physical_battery.battery_capacity_for_stable_parity`.
DEFAULT_BATTERY_HOURS = 4.0


@dataclass(frozen=True)
class SupplySpec:
    """Declarative description of a site's supply stack.

    Attributes:
        battery_mwh: Battery energy capacity; 0 disables the battery.
        battery_power_mw: Battery power rating; ``None`` defaults to a
            4-hour system (``battery_mwh / 4``).
        battery_efficiency: Round-trip efficiency, paid on discharge.
        battery_initial_fraction: Initial state of charge.
        grid_budget_mwh: Firm grid energy purchasable over the run;
            0 disables the grid component.
        grid_power_mw: Grid import power limit; ``None`` is unlimited.
        mode: ``"closed"`` (in-loop dispatch against live demand) or
            ``"open"`` (precomputed series against the firming target).
        target_fraction: Open-loop firming target as a fraction of
            mean generation.
        price_trace: Spot-price synthesizer (:data:`PRICE_TRACES`);
            anything but ``"none"`` upgrades the grid component to a
            :class:`PricedGridPower`.
        carbon_trace: Carbon-intensity synthesizer
            (:data:`CARBON_TRACES`); idem.
        price_per_mwh: Level for ``price_trace="constant"``.
        carbon_per_mwh: Level for ``carbon_trace="constant"``
            (gCO2/kWh == kgCO2/MWh).
        grid_policy: Purchase policy (:data:`GRID_POLICIES`).
        price_threshold: Price cap for ``threshold``; ``dvb``'s
            theta-high.  ``None`` disables the cap.
        carbon_threshold: Carbon cap for ``threshold``; ``None``
            disables.
        dvb_virtual_mwh: ``dvb``'s virtual battery capacity; ``None``
            defaults to a quarter of the grid budget.
    """

    battery_mwh: float = 0.0
    battery_power_mw: float | None = None
    battery_efficiency: float = 0.85
    battery_initial_fraction: float = 0.5
    grid_budget_mwh: float = 0.0
    grid_power_mw: float | None = None
    mode: str = "closed"
    target_fraction: float = 0.5
    price_trace: str = "none"
    carbon_trace: str = "none"
    price_per_mwh: float = 0.0
    carbon_per_mwh: float = 0.0
    grid_policy: str = "always"
    price_threshold: float | None = None
    carbon_threshold: float | None = None
    dvb_virtual_mwh: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in SUPPLY_MODES:
            raise ConfigurationError(
                f"unknown supply mode {self.mode!r}; expected one of"
                f" {SUPPLY_MODES}"
            )
        if self.battery_mwh < 0:
            raise ConfigurationError(
                f"battery capacity must be >= 0: {self.battery_mwh}"
            )
        if self.grid_budget_mwh < 0:
            raise ConfigurationError(
                f"grid budget must be >= 0: {self.grid_budget_mwh}"
            )
        if self.price_trace not in PRICE_TRACES:
            raise ConfigurationError(
                f"unknown price trace {self.price_trace!r}; expected one"
                f" of {PRICE_TRACES}"
            )
        if self.carbon_trace not in CARBON_TRACES:
            raise ConfigurationError(
                f"unknown carbon trace {self.carbon_trace!r}; expected"
                f" one of {CARBON_TRACES}"
            )
        if self.grid_policy not in GRID_POLICIES:
            raise ConfigurationError(
                f"unknown grid policy {self.grid_policy!r}; expected one"
                f" of {GRID_POLICIES}"
            )
        if self.grid_policy == "dvb" and self.price_threshold is None:
            raise ConfigurationError(
                "grid_policy='dvb' needs a price_threshold (theta-high)"
            )

    @property
    def enabled(self) -> bool:
        """True when the spec produces a non-empty stack."""
        return self.battery_mwh > 0 or self.grid_budget_mwh > 0

    @property
    def priced(self) -> bool:
        """True when the grid component carries prices, carbon, or a policy."""
        return (
            self.price_trace != "none"
            or self.carbon_trace != "none"
            or self.grid_policy != "always"
        )

    def grid_signals(
        self, trace: PowerTrace
    ) -> tuple[SpotPriceTrace | None, CarbonIntensityTrace | None]:
        """The price/carbon signals this spec synthesizes on ``trace``.

        The supply stack and the planner's grid objective both read
        these, so the offline MIP prices the exact MWh the online
        dispatch pays for.
        """
        grid = trace.grid
        price: SpotPriceTrace | None = None
        carbon: CarbonIntensityTrace | None = None
        if self.price_trace == "constant":
            price = SpotPriceTrace.constant(grid, self.price_per_mwh)
        elif self.price_trace == "double_peak":
            price = SpotPriceTrace.double_peak(grid)
        elif self.price_trace == "merit_order":
            price = SpotPriceTrace.merit_order(
                trace, seed=MERIT_ORDER_SEED
            )
        if self.carbon_trace == "constant":
            carbon = CarbonIntensityTrace.constant(
                grid, self.carbon_per_mwh
            )
        elif self.carbon_trace == "daily":
            carbon = CarbonIntensityTrace.daily_cycle(grid)
        return price, carbon

    def components(
        self, trace: PowerTrace | None = None
    ) -> tuple[SupplyComponent, ...]:
        """The component tuple this spec describes (may be empty).

        Args:
            trace: The base generation trace — required when the spec
                is :attr:`priced`, since the price/carbon series are
                synthesized on its grid.
        """
        parts: list[SupplyComponent] = []
        if self.battery_mwh > 0:
            power = self.battery_power_mw
            if power is None:
                power = self.battery_mwh / DEFAULT_BATTERY_HOURS
            parts.append(
                BatteryDispatch(
                    capacity_mwh=self.battery_mwh,
                    max_power_mw=power,
                    efficiency=self.battery_efficiency,
                    initial_charge_fraction=self.battery_initial_fraction,
                )
            )
        if self.grid_budget_mwh > 0:
            if not self.priced:
                parts.append(
                    GridFirmPower(
                        budget_mwh=self.grid_budget_mwh,
                        max_power_mw=self.grid_power_mw,
                    )
                )
            else:
                if trace is None:
                    raise ConfigurationError(
                        "a priced supply spec needs the base trace to"
                        " synthesize its price/carbon series; pass it"
                        " to components()/build()"
                    )
                price, carbon = self.grid_signals(trace)
                pth = (
                    np.inf if self.price_threshold is None
                    else self.price_threshold
                )
                cth = (
                    np.inf if self.carbon_threshold is None
                    else self.carbon_threshold
                )
                vcap = 0.0
                if self.grid_policy == "dvb":
                    vcap = (
                        self.grid_budget_mwh / 4.0
                        if self.dvb_virtual_mwh is None
                        else self.dvb_virtual_mwh
                    )
                parts.append(
                    PricedGridPower(
                        budget_mwh=self.grid_budget_mwh,
                        max_power_mw=self.grid_power_mw,
                        price_per_mwh=(
                            None if price is None else price.values
                        ),
                        carbon_per_mwh=(
                            None if carbon is None else carbon.values
                        ),
                        policy=self.grid_policy,
                        price_threshold=float(pth),
                        carbon_threshold=float(cth),
                        dvb_capacity_mwh=vcap,
                    )
                )
        return tuple(parts)

    def build(self, trace: PowerTrace | None = None) -> SupplyStack:
        """The live stack (empty pass-through when nothing is enabled)."""
        return SupplyStack(self.components(trace), self.target_fraction)

    # ------------------------------------------------------------------
    # Serialization (scenario content hashing)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; feeds Scenario content hashes verbatim."""
        return {
            "battery_mwh": self.battery_mwh,
            "battery_power_mw": self.battery_power_mw,
            "battery_efficiency": self.battery_efficiency,
            "battery_initial_fraction": self.battery_initial_fraction,
            "grid_budget_mwh": self.grid_budget_mwh,
            "grid_power_mw": self.grid_power_mw,
            "mode": self.mode,
            "target_fraction": self.target_fraction,
            "price_trace": self.price_trace,
            "carbon_trace": self.carbon_trace,
            "price_per_mwh": self.price_per_mwh,
            "carbon_per_mwh": self.carbon_per_mwh,
            "grid_policy": self.grid_policy,
            "price_threshold": self.price_threshold,
            "carbon_threshold": self.carbon_threshold,
            "dvb_virtual_mwh": self.dvb_virtual_mwh,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupplySpec":
        """Inverse of :meth:`to_dict`; unknown keys rejected."""
        known = {
            "battery_mwh", "battery_power_mw", "battery_efficiency",
            "battery_initial_fraction", "grid_budget_mwh", "grid_power_mw",
            "mode", "target_fraction", "price_trace", "carbon_trace",
            "price_per_mwh", "carbon_per_mwh", "grid_policy",
            "price_threshold", "carbon_threshold", "dvb_virtual_mwh",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown supply spec fields: {sorted(unknown)}"
            )
        return cls(**data)


#: The disabled spec: empty stack, pass-through everywhere.
NO_SUPPLY = SupplySpec()
