"""Serializable supply specifications for the experiments layer.

A :class:`SupplySpec` is the declarative, content-hashable description
of a supply stack — what lives in a
:class:`~repro.experiments.scenario.Scenario` and behind the CLI's
``--battery-mwh`` / ``--grid-budget-mwh`` flags.  ``build()`` turns it
into the live :class:`~repro.supply.stack.SupplyStack`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .components import BatteryDispatch, GridFirmPower, SupplyComponent
from .stack import SupplyStack

#: Supported dispatch modes. ``closed`` lets the simulators query the
#: stack each wake with live demand; ``open`` precomputes the delivered
#: series against the firming target (what the scheduler always uses).
SUPPLY_MODES = ("closed", "open")

#: Hours of storage a default-rated battery can sustain at full power —
#: the "4-hour system" convention shared with
#: :func:`repro.multisite.physical_battery.battery_capacity_for_stable_parity`.
DEFAULT_BATTERY_HOURS = 4.0


@dataclass(frozen=True)
class SupplySpec:
    """Declarative description of a site's supply stack.

    Attributes:
        battery_mwh: Battery energy capacity; 0 disables the battery.
        battery_power_mw: Battery power rating; ``None`` defaults to a
            4-hour system (``battery_mwh / 4``).
        battery_efficiency: Round-trip efficiency, paid on discharge.
        battery_initial_fraction: Initial state of charge.
        grid_budget_mwh: Firm grid energy purchasable over the run;
            0 disables the grid component.
        grid_power_mw: Grid import power limit; ``None`` is unlimited.
        mode: ``"closed"`` (in-loop dispatch against live demand) or
            ``"open"`` (precomputed series against the firming target).
        target_fraction: Open-loop firming target as a fraction of
            mean generation.
    """

    battery_mwh: float = 0.0
    battery_power_mw: float | None = None
    battery_efficiency: float = 0.85
    battery_initial_fraction: float = 0.5
    grid_budget_mwh: float = 0.0
    grid_power_mw: float | None = None
    mode: str = "closed"
    target_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in SUPPLY_MODES:
            raise ConfigurationError(
                f"unknown supply mode {self.mode!r}; expected one of"
                f" {SUPPLY_MODES}"
            )
        if self.battery_mwh < 0:
            raise ConfigurationError(
                f"battery capacity must be >= 0: {self.battery_mwh}"
            )
        if self.grid_budget_mwh < 0:
            raise ConfigurationError(
                f"grid budget must be >= 0: {self.grid_budget_mwh}"
            )

    @property
    def enabled(self) -> bool:
        """True when the spec produces a non-empty stack."""
        return self.battery_mwh > 0 or self.grid_budget_mwh > 0

    def components(self) -> tuple[SupplyComponent, ...]:
        """The component tuple this spec describes (may be empty)."""
        parts: list[SupplyComponent] = []
        if self.battery_mwh > 0:
            power = self.battery_power_mw
            if power is None:
                power = self.battery_mwh / DEFAULT_BATTERY_HOURS
            parts.append(
                BatteryDispatch(
                    capacity_mwh=self.battery_mwh,
                    max_power_mw=power,
                    efficiency=self.battery_efficiency,
                    initial_charge_fraction=self.battery_initial_fraction,
                )
            )
        if self.grid_budget_mwh > 0:
            parts.append(
                GridFirmPower(
                    budget_mwh=self.grid_budget_mwh,
                    max_power_mw=self.grid_power_mw,
                )
            )
        return tuple(parts)

    def build(self) -> SupplyStack:
        """The live stack (empty pass-through when nothing is enabled)."""
        return SupplyStack(self.components(), self.target_fraction)

    # ------------------------------------------------------------------
    # Serialization (scenario content hashing)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; feeds Scenario content hashes verbatim."""
        return {
            "battery_mwh": self.battery_mwh,
            "battery_power_mw": self.battery_power_mw,
            "battery_efficiency": self.battery_efficiency,
            "battery_initial_fraction": self.battery_initial_fraction,
            "grid_budget_mwh": self.grid_budget_mwh,
            "grid_power_mw": self.grid_power_mw,
            "mode": self.mode,
            "target_fraction": self.target_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupplySpec":
        """Inverse of :meth:`to_dict`; unknown keys rejected."""
        known = {
            "battery_mwh", "battery_power_mw", "battery_efficiency",
            "battery_initial_fraction", "grid_budget_mwh", "grid_power_mw",
            "mode", "target_fraction",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown supply spec fields: {sorted(unknown)}"
            )
        return cls(**data)


#: The disabled spec: empty stack, pass-through everywhere.
NO_SUPPLY = SupplySpec()
