"""The composable supply stack: generation → top-ups → delivered power.

A :class:`SupplyStack` turns a base renewable :class:`PowerTrace` into
the power a datacenter actually sees, by threading a per-step power
balance through an ordered list of
:class:`~repro.supply.components.SupplyComponent`\\ s (batteries, firm
grid purchases).  It evaluates in two modes:

**Open loop** (:meth:`SupplyStack.evaluate_open_loop`): no demand
signal.  Components dispatch against a fixed firming target
(``target_fraction`` × mean generation, the standard firming baseline
of :func:`repro.multisite.physical_battery.smooth_with_battery`), and
the result is a precomputed delivered series — what the scheduler's
forecast capacities and the simulators' precomputed budget series
consume.  With an empty stack the delivered series **is** the base
trace's value array, untouched, so the legacy core-budget path is
reproduced bit for bit.

**Closed loop** (:meth:`SupplyStack.dispatcher`): the simulator calls
:meth:`SupplyDispatcher.dispatch` at every step with its *current*
demand, so the battery charges from real surplus (generation beyond
what the site can use) and discharges into real dips (generation below
what is running).  Storage interacting with load in the loop is what
the open-loop analysis cannot express — the point of this layer.

Both modes fill a :class:`SupplyEvaluation`: per-step delivered power
plus SoC / charge / discharge / grid-import / curtailment columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import obs
from ..errors import ConfigurationError
from ..traces import PowerTrace
from .components import (
    GRID_POLICIES,
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
    SupplyComponent,
)

#: Integer policy codes for the span kernel's plan rows (0: always,
#: 1: threshold, 2: dvb — index order of :data:`GRID_POLICIES`).
_GRID_POLICY_CODES = {name: i for i, name in enumerate(GRID_POLICIES)}


class SupplyEvaluation:
    """Per-step accounting of one supply-stack evaluation.

    Attributes:
        delivered: Normalized delivered power per step (what the power
            model converts to a core budget).
        soc_mwh: Total battery state of charge after each step.
        charge_mwh: Battery charge per step.
        discharge_mwh: Battery discharge per step.
        grid_import_mwh: Firm grid energy drawn per step.
        curtailed_mwh: Surplus neither used nor stored per step
            (meaningful in closed loop, where demand is known; open
            loop passes surplus through to the cluster and records 0).
        cost_usd: Grid purchase cost per step (priced grids only; the
            flat :class:`GridFirmPower` records 0).
        carbon_kg: Grid purchase emissions per step (idem).
    """

    #: The per-step series attributes, in their *stable, documented*
    #: order: ``delivered`` first, then the component telemetry in
    #: accounting order (SoC, charge, discharge, grid import,
    #: curtailment, purchase cost, purchase carbon).  This tuple is the
    #: contract consumers iterate — the fleet engine's batched dispatch
    #: rebinds these attributes to shared site-major matrices, and
    #: session checkpoints serialize them — instead of poking
    #: attributes ad hoc.  Appending a new series is allowed;
    #: reordering or renaming is a breaking change.
    SERIES_FIELDS = (
        "delivered", "soc_mwh", "charge_mwh", "discharge_mwh",
        "grid_import_mwh", "curtailed_mwh", "cost_usd", "carbon_kg",
    )

    __slots__ = SERIES_FIELDS

    def __init__(self, delivered: np.ndarray):
        n = len(delivered)
        self.delivered = delivered
        self.soc_mwh = np.zeros(n)
        self.charge_mwh = np.zeros(n)
        self.discharge_mwh = np.zeros(n)
        self.grid_import_mwh = np.zeros(n)
        self.curtailed_mwh = np.zeros(n)
        self.cost_usd = np.zeros(n)
        self.carbon_kg = np.zeros(n)

    # ------------------------------------------------------------------

    @property
    def charge_total_mwh(self) -> float:
        """Total energy sent into batteries."""
        return float(self.charge_mwh.sum())

    @property
    def discharge_total_mwh(self) -> float:
        """Total energy delivered from batteries."""
        return float(self.discharge_mwh.sum())

    @property
    def grid_import_total_mwh(self) -> float:
        """Total firm grid energy drawn."""
        return float(self.grid_import_mwh.sum())

    @property
    def curtailed_total_mwh(self) -> float:
        """Total surplus neither used nor stored."""
        return float(self.curtailed_mwh.sum())

    @property
    def cost_total_usd(self) -> float:
        """Total grid purchase cost."""
        return float(self.cost_usd.sum())

    @property
    def carbon_total_kg(self) -> float:
        """Total grid purchase emissions."""
        return float(self.carbon_kg.sum())

    @property
    def final_soc_mwh(self) -> float:
        """Battery state of charge at the end of the run."""
        if len(self.soc_mwh) == 0:
            return 0.0
        return float(self.soc_mwh[-1])

    def summary(self) -> dict:
        """JSON-ready totals (the ``supply`` block of result summaries)."""
        return {
            "charge_mwh": self.charge_total_mwh,
            "discharge_mwh": self.discharge_total_mwh,
            "grid_import_mwh": self.grid_import_total_mwh,
            "curtailed_mwh": self.curtailed_total_mwh,
            "final_soc_mwh": self.final_soc_mwh,
            "cost_usd": self.cost_total_usd,
            "carbon_kg": self.carbon_total_kg,
        }

    def emit_metrics(self, **attrs) -> None:
        """Emit the run's supply counters through :mod:`repro.obs`."""
        obs.count("supply.charge_mwh", self.charge_total_mwh, **attrs)
        obs.count("supply.discharge_mwh", self.discharge_total_mwh, **attrs)
        obs.count("supply.curtailed_mwh", self.curtailed_total_mwh, **attrs)
        if self.grid_import_total_mwh:
            obs.count(
                "supply.grid_import_mwh",
                self.grid_import_total_mwh,
                **attrs,
            )
        if self.cost_total_usd:
            obs.count("supply.cost_usd", self.cost_total_usd, **attrs)
        if self.carbon_total_kg:
            obs.count("supply.carbon_kg", self.carbon_total_kg, **attrs)
        obs.gauge("supply.final_soc_mwh", self.final_soc_mwh, **attrs)


class SupplyDispatcher:
    """Closed-loop per-step dispatch of one stack against one trace.

    Created by :meth:`SupplyStack.dispatcher`; the simulator calls
    :meth:`dispatch` once per processed step, in step order, with its
    current normalized demand.  All telemetry accumulates into
    :attr:`evaluation`.
    """

    def __init__(self, stack: "SupplyStack", trace: PowerTrace):
        self._components: tuple[SupplyComponent, ...] = stack.components
        self._states = [c.initial_state() for c in stack.components]
        self._values = trace.values
        self._capacity_mw = trace.capacity_mw
        self._step_hours = trace.grid.step_hours
        # Un-dispatched steps (none, in a full run) default to base.
        self.evaluation = SupplyEvaluation(np.array(trace.values))
        # Span kernel support: the scalar window loop specializes the
        # shipped component types; anything else (subclasses too —
        # their ``step`` may differ) falls back to per-step dispatch.
        self._span_specialized = all(
            type(c) in (BatteryDispatch, GridFirmPower, PricedGridPower)
            for c in stack.components
        )
        n = trace.grid.n
        self._priced_series: dict[int, tuple[list | None, list | None]] = {}
        for k, c in enumerate(stack.components):
            if isinstance(c, PricedGridPower):
                for series in (c.price_per_mwh, c.carbon_per_mwh):
                    if series is not None and len(series) < n:
                        raise ConfigurationError(
                            f"priced grid series has {len(series)} steps"
                            f" but the trace has {n}"
                        )
        self._rebuild_priced_series()
        self._values_list: list[float] | None = None

    def _rebuild_priced_series(self) -> None:
        # Python-float copies for the span kernel's inner loop (same
        # values bit for bit, no ndarray item overhead).
        self._priced_series.clear()
        for k, c in enumerate(self._components):
            if isinstance(c, PricedGridPower):
                self._priced_series[k] = (
                    None if c.price_per_mwh is None
                    else c.price_per_mwh.tolist(),
                    None if c.carbon_per_mwh is None
                    else c.carbon_per_mwh.tolist(),
                )

    @property
    def components(self) -> tuple[SupplyComponent, ...]:
        """The stack's components, in dispatch order."""
        return self._components

    def invalidate_base_cache(self) -> None:
        """Drop caches derived from the base trace values or the
        priced components' signal series.

        The dispatcher reads generation through a live view of the
        trace's value array, and the span kernel reads price/carbon
        through Python-float copies of the component series; callers
        that mutate either in place (session blackout or spot-price
        injections) must invalidate so subsequent dispatches see the
        new values.
        """
        self._values_list = None
        self._rebuild_priced_series()

    @property
    def states(self) -> list[object]:
        """Mutable per-component dispatch states (same order)."""
        return self._states

    def dispatch(self, step: int, demand_norm: float) -> float:
        """Deliver power for one step given the site's current demand.

        Args:
            step: Grid index being processed.
            demand_norm: Normalized power the site could productively
                use this step (running + resumable + launchable cores,
                through the power model's inverse).

        Returns:
            Normalized delivered power: base generation minus charging
            plus discharge / grid import.
        """
        h = self._step_hours
        capacity = self._capacity_mw
        base_mw = float(self._values[step]) * capacity
        demand_norm = max(demand_norm, 0.0)
        demand_mw = demand_norm * capacity
        balance_mw = base_mw - demand_mw
        covered = balance_mw >= 0.0
        delivered_mw = base_mw
        ev = self.evaluation
        soc_mwh = 0.0
        for component, state in zip(self._components, self._states):
            priced = type(component) is PricedGridPower
            if priced:
                cost_before = state.cost_usd
                carbon_before = state.carbon_kg
            delta_mw = component.step(state, balance_mw, h, step)
            balance_mw += delta_mw
            delivered_mw += delta_mw
            if isinstance(component, BatteryDispatch):
                if delta_mw < 0.0:
                    ev.charge_mwh[step] -= delta_mw * h
                elif delta_mw > 0.0:
                    ev.discharge_mwh[step] += delta_mw * h
                soc_mwh += state.soc_mwh
            elif isinstance(component, GridFirmPower) and delta_mw > 0.0:
                ev.grid_import_mwh[step] += delta_mw * h
                if priced:
                    # Snapshot-diff, not draw*price recomputed: every
                    # engine forms the identical cumulative sequence,
                    # so the per-step series match bit for bit.
                    ev.cost_usd[step] += state.cost_usd - cost_before
                    ev.carbon_kg[step] += state.carbon_kg - carbon_before
        ev.soc_mwh[step] = soc_mwh
        if balance_mw > 0.0:
            ev.curtailed_mwh[step] = balance_mw * h
        delivered = delivered_mw / capacity
        if covered and delivered < demand_norm:
            # Components only absorb on a surplus step, never below the
            # demand — but the MW round trip (base - (base - demand),
            # then / capacity) can land one ulp under demand_norm,
            # which would floor away a powered core the site is owed.
            delivered = demand_norm
        ev.delivered[step] = delivered
        return delivered

    def advance_span(
        self,
        start: int,
        stop: int,
        demand_norm: float,
        lo_norm: float | None,
        up_norm: float | None,
    ) -> tuple[list[float], bool]:
        """Dispatch a constant-demand window, halting at a wake crossing.

        The closed-loop event engines know demand is constant between
        site events, so a whole window of dispatches differs only in
        the base generation — a tight scalar loop with the component
        arithmetic inlined, instead of one :meth:`dispatch` call (and
        five attribute hops) per step.  Steps ``start .. stop-1`` are
        dispatched in order; the loop stops *after* the first step
        whose clipped delivered power crosses the wake thresholds
        (``< lo_norm``: the budget would drop below running cores;
        ``>= up_norm``: it could resume or launch work).  Telemetry for
        every dispatched step — including the crossing step — is
        written exactly as :meth:`dispatch` would.

        Args:
            start: First step to dispatch (inclusive).
            stop: One past the last step the window may cover.
            demand_norm: The window's constant normalized demand.
            lo_norm: Wake when clipped delivered drops below this
                (``None`` disables — nothing is running).
            up_norm: Wake when clipped delivered reaches this (``None``
                disables — nothing can resume or launch).

        Returns:
            ``(deliveries, crossed)``: the raw delivered values (before
            the engine's [0, 1] clip) for the dispatched prefix, and
            whether the last one crossed a threshold (making its step a
            wake the caller must process).  A prefix shorter than the
            window with ``crossed=False`` means the stack went *idle* —
            pinned for the sign it was dispatching — and the caller
            should resume after the prefix, where :meth:`pinned` now
            holds and whole windows can vectorize.
        """
        if stop <= start:
            return [], False
        demand_norm = max(demand_norm, 0.0)
        lo = -np.inf if lo_norm is None else lo_norm
        up = np.inf if up_norm is None else up_norm
        if not self._span_specialized:
            return self._advance_span_generic(
                start, stop, demand_norm, lo, up
            )
        h = self._step_hours
        capacity = self._capacity_mw
        demand_mw = demand_norm * capacity
        vals = self._values_list
        if vals is None:
            vals = self._values_list = np.asarray(
                self._values, dtype=float
            ).tolist()
        # (kind, mutable energy state, params...): battery rows carry
        # [0, soc_mwh, capacity_mwh, max_power_mw, efficiency]; grid
        # rows [1, remaining_mwh, max_power_mw-or-inf]; priced grid
        # rows [2, remaining_mwh, max_power_mw-or-inf, policy_code,
        # prices-or-None, carbons-or-None, price_threshold,
        # carbon_threshold, theta_lo, virtual_mwh, vcap, cost_usd,
        # carbon_kg].  min(x, inf) returns x bit-for-bit, so an
        # unlimited grid needs no branch.
        plan: list[list] = []
        for k, (component, state) in enumerate(
            zip(self._components, self._states)
        ):
            if type(component) is BatteryDispatch:
                plan.append([
                    0, state.soc_mwh, component.capacity_mwh,
                    component.max_power_mw, component.efficiency,
                ])
            elif type(component) is PricedGridPower:
                limit = component.max_power_mw
                prices, carbons = self._priced_series[k]
                plan.append([
                    2, state.remaining_mwh,
                    np.inf if limit is None else limit,
                    _GRID_POLICY_CODES[component.policy],
                    prices, carbons,
                    component.price_threshold,
                    component.carbon_threshold,
                    component.dvb_theta_lo,
                    state.virtual_mwh,
                    component.dvb_capacity_mwh,
                    state.cost_usd,
                    state.carbon_kg,
                ])
            else:
                limit = component.max_power_mw
                plan.append([
                    1, state.remaining_mwh,
                    np.inf if limit is None else limit,
                ])
        del_buf: list[float] = []
        soc_buf: list[float] = []
        chg_buf: list[float] = []
        dis_buf: list[float] = []
        imp_buf: list[float] = []
        cur_buf: list[float] = []
        cst_buf: list[float] = []
        car_buf: list[float] = []
        crossed = False
        for t in range(start, stop):
            base_mw = vals[t] * capacity
            balance = base_mw - demand_mw
            covered = balance >= 0.0
            delivered_mw = base_mw
            soc_t = 0.0
            chg_t = 0.0
            dis_t = 0.0
            imp_t = 0.0
            cst_t = 0.0
            car_t = 0.0
            for row in plan:
                if row[0] == 0:
                    # BatteryDispatch.step, inlined operation for
                    # operation (bit-identical accounting).
                    soc = row[1]
                    if balance >= 0.0:
                        surplus_mw = min(balance, row[3])
                        headroom_mwh = row[2] - soc
                        charge_mwh = min(surplus_mw * h, headroom_mwh)
                        row[1] = soc + charge_mwh
                        delta = -charge_mwh / h
                    else:
                        deficit_mw = min(-balance, row[3])
                        deliverable_mwh = soc * row[4]
                        discharge_mwh = min(deficit_mw * h, deliverable_mwh)
                        row[1] = soc - discharge_mwh / row[4]
                        delta = discharge_mwh / h
                    balance += delta
                    delivered_mw += delta
                    if delta < 0.0:
                        chg_t -= delta * h
                    elif delta > 0.0:
                        dis_t += delta * h
                    soc_t += row[1]
                elif row[0] == 1:
                    # GridFirmPower.step, inlined.
                    remaining = row[1]
                    if balance >= 0.0 or remaining <= 0.0:
                        continue
                    draw_mw = min(-balance, row[2])
                    draw_mwh = min(draw_mw * h, remaining)
                    row[1] = remaining - draw_mwh
                    delta = draw_mwh / h
                    balance += delta
                    delivered_mw += delta
                    if delta > 0.0:
                        imp_t += delta * h
                else:
                    # PricedGridPower.step, inlined (policy gate, then
                    # the GridFirmPower draw plus the ledger updates).
                    remaining = row[1]
                    if balance >= 0.0 or remaining <= 0.0:
                        continue
                    price = 0.0 if row[4] is None else row[4][t]
                    carbon = 0.0 if row[5] is None else row[5][t]
                    pol = row[3]
                    if pol == 0:
                        buy = True
                    elif pol == 1:
                        buy = price <= row[6] and carbon <= row[7]
                    else:
                        theta = row[8] + (row[6] - row[8]) * (
                            1.0 - row[9] / row[10]
                        )
                        buy = price <= theta
                    if not buy:
                        if pol == 2:
                            row[9] = max(row[9] - (-balance) * h, 0.0)
                        continue
                    draw_mw = min(-balance, row[2])
                    draw_mwh = min(draw_mw * h, remaining)
                    row[1] = remaining - draw_mwh
                    cost0 = row[11]
                    carbon0 = row[12]
                    row[11] = cost0 + draw_mwh * price
                    row[12] = carbon0 + draw_mwh * carbon
                    if pol == 2:
                        row[9] = min(row[9] + draw_mwh, row[10])
                    delta = draw_mwh / h
                    balance += delta
                    delivered_mw += delta
                    if delta > 0.0:
                        imp_t += delta * h
                        # Snapshot-diff, as dispatch() accounts it.
                        cst_t += row[11] - cost0
                        car_t += row[12] - carbon0
            soc_buf.append(soc_t)
            chg_buf.append(chg_t)
            dis_buf.append(dis_t)
            imp_buf.append(imp_t)
            cst_buf.append(cst_t)
            car_buf.append(car_t)
            cur_buf.append(balance * h if balance > 0.0 else 0.0)
            delivered = delivered_mw / capacity
            if covered and delivered < demand_norm:
                delivered = demand_norm  # the ulp clamp, as dispatch()
            del_buf.append(delivered)
            clipped = delivered
            if clipped < 0.0:
                clipped = 0.0
            elif clipped > 1.0:
                clipped = 1.0
            if clipped < lo or clipped >= up:
                crossed = True
                break
            if delivered_mw == base_mw and t + 1 < stop:
                # Idle probe: no component moved this step (deltas
                # never cancel — charging and importing cannot coexist
                # in one step — so an unchanged delivered power means
                # every delta was zero).  If on top of that every
                # component is *pinned* for this step's balance sign,
                # all further dispatches of that sign are provable
                # no-ops: return the prefix early (not a crossing) so
                # the engine's vectorized pinned-window path skips the
                # rest of the window instead of grinding it here.  The
                # bound tests mirror ``pinned()`` exactly, so the
                # engine's re-check agrees and cannot bounce back.
                for row in plan:
                    if row[0] == 0:
                        if covered:
                            if row[2] - row[1] != 0.0:
                                break
                        elif row[1] * row[4] != 0.0 or row[1] < 0.0:
                            break
                    elif not covered and row[1] > 0.0:
                        break
                else:
                    break
        # Sync the component states the inlined loop advanced.
        for row, state in zip(plan, self._states):
            if row[0] == 0:
                state.soc_mwh = row[1]
            elif row[0] == 1:
                state.remaining_mwh = row[1]
            else:
                state.remaining_mwh = row[1]
                state.virtual_mwh = row[9]
                state.cost_usd = row[11]
                state.carbon_kg = row[12]
        end = start + len(del_buf)
        ev = self.evaluation
        ev.delivered[start:end] = del_buf
        ev.soc_mwh[start:end] = soc_buf
        ev.charge_mwh[start:end] = chg_buf
        ev.discharge_mwh[start:end] = dis_buf
        ev.grid_import_mwh[start:end] = imp_buf
        ev.curtailed_mwh[start:end] = cur_buf
        ev.cost_usd[start:end] = cst_buf
        ev.carbon_kg[start:end] = car_buf
        return del_buf, crossed

    def _advance_span_generic(
        self, start: int, stop: int, demand_norm: float,
        lo: float, up: float,
    ) -> tuple[list[float], bool]:
        """Per-step :meth:`dispatch` fallback for exotic components.

        Same contract as :meth:`advance_span`; used when a component is
        not exactly one of the two shipped types (subclasses included —
        an overridden ``step`` would invalidate the inlined arithmetic).
        """
        del_buf: list[float] = []
        dispatch = self.dispatch
        for t in range(start, stop):
            delivered = dispatch(t, demand_norm)
            del_buf.append(delivered)
            clipped = min(max(delivered, 0.0), 1.0)
            if clipped < lo or clipped >= up:
                return del_buf, True
        return del_buf, False

    # ------------------------------------------------------------------
    # Skip-ahead support (the closed-loop event engines)
    # ------------------------------------------------------------------

    @property
    def capacity_mw(self) -> float:
        """The bound trace's capacity scale (MW at normalized 1.0)."""
        return self._capacity_mw

    @property
    def step_hours(self) -> float:
        """The bound grid's step length in hours."""
        return self._step_hours

    def base_mw_series(self) -> np.ndarray:
        """Base generation in MW per step, computed elementwise.

        ``values[t] * capacity`` under IEEE double arithmetic — the
        exact product :meth:`dispatch` forms scalar-by-scalar, so
        window fills derived from this series are bit-identical to the
        per-step path.
        """
        return np.asarray(self._values, dtype=float) * self._capacity_mw

    def pinned(self, surplus: bool) -> bool:
        """True when *every* component is a provable no-op for the sign.

        While this holds, a dispatch at any step whose balance has the
        given sign returns exactly ``base / capacity`` (modulo the
        covered-demand ulp clamp), mutates no component state, and
        accrues no charge/discharge/import telemetry — the condition
        the closed-loop engines need to skip the step wholesale.
        """
        for component, state in zip(self._components, self._states):
            check = getattr(component, "pinned", None)
            if check is None or not check(state, surplus):
                return False
        return True

    def battery_soc_mwh(self) -> float:
        """Total battery state of charge right now (the SoC column fill)."""
        total = 0.0
        for component, state in zip(self._components, self._states):
            if isinstance(component, BatteryDispatch):
                total += state.soc_mwh
        return total

    def fill_skipped(
        self,
        start: int,
        stop: int,
        balance_mw: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        """Write the telemetry a pinned window would have accumulated.

        Args:
            start: First skipped step (inclusive).
            stop: One past the last skipped step.
            balance_mw: ``base_mw - demand_mw`` for the window (length
                ``stop - start``) — with every component pinned the
                final balance equals the initial one bit-for-bit.
            delivered: Normalized delivered power for the window (after
                the covered-demand clamp, before the engine's [0, 1]
                clip — matching what :meth:`dispatch` records).
        """
        ev = self.evaluation
        ev.delivered[start:stop] = delivered
        ev.soc_mwh[start:stop] = self.battery_soc_mwh()
        h = self._step_hours
        positive = balance_mw > 0.0
        if positive.any():
            curtailed = ev.curtailed_mwh[start:stop]
            np.multiply(balance_mw, h, out=curtailed, where=positive)


@dataclass(frozen=True)
class SupplyStack:
    """An ordered composition of supply components over base generation.

    Attributes:
        components: Top-up stages, dispatched in order (each sees the
            balance left by the previous).  Empty means pass-through:
            the delivered series is the base trace, bit for bit.
        target_fraction: Open-loop firming target as a fraction of mean
            generation (the :func:`smooth_with_battery` convention).
    """

    components: tuple[SupplyComponent, ...] = field(default_factory=tuple)
    target_fraction: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        if not 0.0 < self.target_fraction <= 2.0:
            raise ConfigurationError(
                f"target fraction must be in (0,2]: {self.target_fraction}"
            )

    @property
    def stateless(self) -> bool:
        """True when the stack is a pure pass-through (no components)."""
        return not self.components

    # ------------------------------------------------------------------
    # Open loop
    # ------------------------------------------------------------------

    def evaluate_open_loop(self, trace: PowerTrace) -> SupplyEvaluation:
        """Precompute the delivered series against the firming target.

        With no components this returns the trace's own value array as
        ``delivered`` (no arithmetic touches it — the bit-identity the
        golden tests pin).  Otherwise every step offers the balance
        against ``target_fraction × mean generation`` to the
        components; surplus the components do not absorb passes
        through to the cluster (curtailment stays zero — unallocated
        cores power down, the paper's absorption mechanism).
        """
        if not self.components:
            return SupplyEvaluation(trace.values)
        with obs.span(
            "supply.evaluate",
            n_steps=trace.grid.n,
            n_components=len(self.components),
        ):
            h = trace.grid.step_hours
            capacity = trace.capacity_mw
            generation = trace.power_mw()
            target_mw = self.target_fraction * float(generation.mean())
            states = [c.initial_state() for c in self.components]
            delivered_mw = np.empty(len(generation))
            ev = SupplyEvaluation(delivered_mw)  # filled below
            batteries = [
                isinstance(c, BatteryDispatch) for c in self.components
            ]
            grids = [isinstance(c, GridFirmPower) for c in self.components]
            priced = [
                type(c) is PricedGridPower for c in self.components
            ]
            for i, gen in enumerate(generation):
                balance_mw = gen - target_mw
                out_mw = gen
                soc_mwh = 0.0
                for j, (component, state) in enumerate(
                    zip(self.components, states)
                ):
                    if priced[j]:
                        cost_before = state.cost_usd
                        carbon_before = state.carbon_kg
                    delta_mw = component.step(state, balance_mw, h, i)
                    balance_mw += delta_mw
                    out_mw += delta_mw
                    if batteries[j]:
                        if delta_mw < 0.0:
                            ev.charge_mwh[i] -= delta_mw * h
                        elif delta_mw > 0.0:
                            ev.discharge_mwh[i] += delta_mw * h
                        soc_mwh += state.soc_mwh
                    elif grids[j] and delta_mw > 0.0:
                        ev.grid_import_mwh[i] += delta_mw * h
                        if priced[j]:
                            ev.cost_usd[i] += state.cost_usd - cost_before
                            ev.carbon_kg[i] += (
                                state.carbon_kg - carbon_before
                            )
                ev.soc_mwh[i] = soc_mwh
                delivered_mw[i] = out_mw
            ev.delivered = np.clip(delivered_mw / capacity, 0.0, 1.0)
        return ev

    def apply(self, trace: PowerTrace) -> PowerTrace:
        """Open-loop delivered power as a new trace (``+supply`` suffix).

        Pass-through stacks return the trace unchanged (same object).
        """
        if not self.components:
            return trace
        evaluation = self.evaluate_open_loop(trace)
        return PowerTrace(
            trace.grid,
            evaluation.delivered,
            f"{trace.name}+supply",
            trace.kind,
            trace.capacity_mw,
        )

    # ------------------------------------------------------------------
    # Closed loop
    # ------------------------------------------------------------------

    def dispatcher(self, trace: PowerTrace) -> SupplyDispatcher:
        """Fresh closed-loop dispatch state bound to ``trace``."""
        return SupplyDispatcher(self, trace)


def supply_stack(
    components: Sequence[SupplyComponent] = (),
    target_fraction: float = 0.5,
) -> SupplyStack:
    """Convenience constructor accepting any component sequence."""
    return SupplyStack(tuple(components), target_fraction)
