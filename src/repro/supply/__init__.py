"""Composable power-supply layer: generation, top-ups, dispatch.

Every layer that previously converted a raw renewable trace to core
budgets through its own path now shares this one:

- :class:`SupplyStack` — ordered :class:`SupplyComponent` composition
  over a base :class:`~repro.traces.PowerTrace`, with open-loop
  (precomputed series) and closed-loop (per-step demand-driven)
  evaluation producing :class:`SupplyEvaluation` telemetry.
- :class:`BatteryDispatch` / :class:`GridFirmPower` /
  :class:`PricedGridPower` — stateful top-ups with SoC / budget /
  cost-and-carbon dynamics.
- :class:`BatchedDispatch` — the fleet engine's vectorized closed-loop
  dispatch: S same-length sites advanced in one array program per
  step, bit-identical to S scalar dispatchers.
- :class:`SupplySpec` — the serializable, content-hashable form used
  by `experiments.Scenario` and the CLI.
"""

from .batch import BatchedDispatch
from .components import (
    GRID_POLICIES,
    BatteryDispatch,
    BatteryState,
    GridBudgetState,
    GridFirmPower,
    PricedGridPower,
    PricedGridState,
    SupplyComponent,
)
from .spec import DEFAULT_BATTERY_HOURS, NO_SUPPLY, SUPPLY_MODES, SupplySpec
from .stack import (
    SupplyDispatcher,
    SupplyEvaluation,
    SupplyStack,
    supply_stack,
)

__all__ = [
    "BatchedDispatch",
    "BatteryDispatch",
    "BatteryState",
    "DEFAULT_BATTERY_HOURS",
    "GRID_POLICIES",
    "GridBudgetState",
    "GridFirmPower",
    "NO_SUPPLY",
    "PricedGridPower",
    "PricedGridState",
    "SUPPLY_MODES",
    "SupplyComponent",
    "SupplyDispatcher",
    "SupplyEvaluation",
    "SupplySpec",
    "SupplyStack",
    "supply_stack",
]
