"""Composable power-supply layer: generation, top-ups, dispatch.

Every layer that previously converted a raw renewable trace to core
budgets through its own path now shares this one:

- :class:`SupplyStack` — ordered :class:`SupplyComponent` composition
  over a base :class:`~repro.traces.PowerTrace`, with open-loop
  (precomputed series) and closed-loop (per-step demand-driven)
  evaluation producing :class:`SupplyEvaluation` telemetry.
- :class:`BatteryDispatch` / :class:`GridFirmPower` — stateful top-ups
  with SoC / budget dynamics.
- :class:`BatchedDispatch` — the fleet engine's vectorized closed-loop
  dispatch: S same-length sites advanced in one array program per
  step, bit-identical to S scalar dispatchers.
- :class:`SupplySpec` — the serializable, content-hashable form used
  by `experiments.Scenario` and the CLI.
"""

from .batch import BatchedDispatch
from .components import (
    BatteryDispatch,
    BatteryState,
    GridBudgetState,
    GridFirmPower,
    SupplyComponent,
)
from .spec import DEFAULT_BATTERY_HOURS, NO_SUPPLY, SUPPLY_MODES, SupplySpec
from .stack import (
    SupplyDispatcher,
    SupplyEvaluation,
    SupplyStack,
    supply_stack,
)

__all__ = [
    "BatchedDispatch",
    "BatteryDispatch",
    "BatteryState",
    "DEFAULT_BATTERY_HOURS",
    "GridBudgetState",
    "GridFirmPower",
    "NO_SUPPLY",
    "SUPPLY_MODES",
    "SupplyComponent",
    "SupplyDispatcher",
    "SupplyEvaluation",
    "SupplySpec",
    "SupplyStack",
    "supply_stack",
]
