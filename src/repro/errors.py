"""Exception hierarchy for the repro (Virtual Battery) library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subclasses are kept
deliberately flat: one class per failure domain, not per failure site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TimeGridError(ReproError):
    """A time-grid operation was invalid (mismatched grids, bad bounds)."""


class TraceError(ReproError):
    """A power trace was malformed or used inconsistently."""


class ForecastError(ReproError):
    """A forecast was requested or constructed with invalid parameters."""


class CapacityError(ReproError):
    """A resource request exceeded available capacity."""


class AllocationError(ReproError):
    """VM placement onto a server failed or was inconsistent."""


class SchedulingError(ReproError):
    """The co-scheduler could not produce a valid assignment."""


class SolverError(SchedulingError):
    """The MIP/LP solver failed or returned an infeasible status.

    Carries enough structured context to diagnose a failure from logs
    alone, which matters once solves are decomposed into windows:

    Attributes:
        status: The solver's status code (``scipy.optimize.milp``
            status int, or the HiGHS model-status name), when known.
        window: Index of the decomposition window that failed, when the
            failure happened inside a windowed solve.
        shape: ``(n_rows, n_cols)`` of the constraint matrix that was
            being solved, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | str | None = None,
        window: int | None = None,
        shape: tuple[int, int] | None = None,
    ):
        parts = [message]
        if status is not None:
            parts.append(f"status={status}")
        if window is not None:
            parts.append(f"window={window}")
        if shape is not None:
            parts.append(f"shape={shape[0]}x{shape[1]}")
        composed = message
        if len(parts) > 1:
            composed = f"{parts[0]} [{', '.join(parts[1:])}]"
        super().__init__(composed)
        self.message = message
        self.status = status
        self.window = window
        self.shape = shape

    def __reduce__(self):
        # Keyword-only context would be lost by the default exception
        # pickling (used when a parallel window solve re-raises across
        # a process pool), so rebuild through a helper.
        return (
            _rebuild_solver_error,
            (self.message, self.status, self.window, self.shape),
        )


def _rebuild_solver_error(message, status, window, shape):
    return SolverError(
        message, status=status, window=window, shape=shape
    )


class ConfigurationError(ReproError):
    """A simulation or model was configured with invalid parameters."""


class SessionError(ReproError):
    """A live simulation session was used invalidly (bad tick, bad
    checkpoint blob, unknown session id, malformed injection)."""
