"""Exception hierarchy for the repro (Virtual Battery) library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Subclasses are kept
deliberately flat: one class per failure domain, not per failure site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TimeGridError(ReproError):
    """A time-grid operation was invalid (mismatched grids, bad bounds)."""


class TraceError(ReproError):
    """A power trace was malformed or used inconsistently."""


class ForecastError(ReproError):
    """A forecast was requested or constructed with invalid parameters."""


class CapacityError(ReproError):
    """A resource request exceeded available capacity."""


class AllocationError(ReproError):
    """VM placement onto a server failed or was inconsistent."""


class SchedulingError(ReproError):
    """The co-scheduler could not produce a valid assignment."""


class SolverError(SchedulingError):
    """The MIP/LP solver failed or returned an infeasible status."""


class ConfigurationError(ReproError):
    """A simulation or model was configured with invalid parameters."""
