"""Statistics and reporting helpers shared by benches and examples."""

from .stats import (
    empirical_cdf,
    nonzero_cdf,
    percentile_ratio,
    rolling_min,
    series_cov,
)
from .report import format_table, format_cdf_points, format_series_sample

__all__ = [
    "empirical_cdf",
    "nonzero_cdf",
    "percentile_ratio",
    "rolling_min",
    "series_cov",
    "format_table",
    "format_cdf_points",
    "format_series_sample",
]
