"""Statistical helpers used across the evaluation."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) of an empirical CDF.

    Probabilities are ``i / n`` for the i-th smallest value (right-
    continuous convention), matching how the paper's CDF figures read.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot build a CDF from no samples")
    ordered = np.sort(values)
    probabilities = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, probabilities


def nonzero_cdf(
    values: np.ndarray, threshold: float = 1e-12
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of the non-zero samples only.

    Figure 4b "only includes non-zero overhead values"; this helper
    applies the same filter.

    Raises:
        ConfigurationError: if every sample is (numerically) zero.
    """
    values = np.asarray(values, dtype=float)
    nonzero = values[values > threshold]
    if nonzero.size == 0:
        raise ConfigurationError("no non-zero samples for CDF")
    return empirical_cdf(nonzero)


def percentile_ratio(
    values: np.ndarray, upper: float = 99.0, lower: float = 50.0
) -> float:
    """p_upper / p_lower of a sample (the paper's spikiness metric).

    Returns ``inf`` when the lower percentile is zero but the upper is
    not, and 1.0 when both are zero.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot take percentiles of no samples")
    high = float(np.percentile(values, upper))
    low = float(np.percentile(values, lower))
    if low <= 0:
        return 1.0 if high <= 0 else float("inf")
    return high / low


def rolling_min(values: np.ndarray, window: int) -> np.ndarray:
    """Minimum over consecutive non-overlapping windows.

    The trailing partial window (if any) contributes its own minimum.
    Used for stable-power floors.
    """
    values = np.asarray(values, dtype=float)
    if window <= 0:
        raise ConfigurationError(f"window must be positive: {window}")
    if values.size == 0:
        return np.empty(0)
    return np.array(
        [
            values[start : start + window].min()
            for start in range(0, len(values), window)
        ]
    )


def series_cov(values: np.ndarray) -> float:
    """Coefficient of variation of an arbitrary series (std / mean)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot take cov of no samples")
    mean = float(values.mean())
    if mean <= 0:
        return float("inf")
    return float(values.std() / mean)
