"""Fixed-width text rendering for bench output.

The benchmark harness prints the same rows and series the paper's
tables and figures report; these helpers keep the formatting in one
place so every bench reads the same way.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned fixed-width table.

    Numbers format with thousands separators; floats get two decimals.
    """
    if not headers:
        raise ConfigurationError("table needs headers")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        if isinstance(value, (int, np.integer)):
            return f"{value:,}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def format_cdf_points(
    values: np.ndarray,
    probabilities: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
    unit: str = "",
) -> str:
    """Quantile summary of a distribution, one line per probability."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("no samples to summarize")
    lines = []
    for p in probabilities:
        quantile = float(np.quantile(values, p))
        lines.append(f"  p{int(p * 100):>2d}: {quantile:,.2f} {unit}".rstrip())
    return "\n".join(lines)


def format_series_sample(
    values: np.ndarray, n_points: int = 12, unit: str = ""
) -> str:
    """Evenly-spaced sample of a long series, as ``index: value`` lines."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("no samples to render")
    if n_points <= 0:
        raise ConfigurationError(f"n_points must be positive: {n_points}")
    indices = np.linspace(0, len(values) - 1, min(n_points, len(values)))
    lines = []
    for index in indices.astype(int):
        lines.append(f"  [{index:>6d}] {values[index]:,.3f} {unit}".rstrip())
    return "\n".join(lines)
