"""The wide-area network substrate (§3's "new networking challenge").

The paper sizes migration bursts against WAN capacity: a 10 TB spike
must finish within ~5 minutes, needing ~200 Gbps — roughly 40% of a
site's share of a 50 Tbps aggregate WAN split across ~100 sites.  This
subpackage makes those back-of-envelope numbers simulable:

- :class:`~repro.wan.topology.WanTopology` — per-site access links plus
  a shared backbone.
- :class:`~repro.wan.flows.MigrationFlow` — one VM-group transfer.
- :class:`~repro.wan.simulator.WanSimulator` — fluid max-min fair
  bandwidth sharing, producing completion times, link utilization, and
  deadline violations.
- :func:`~repro.wan.simulator.flows_from_execution` — turns a
  co-scheduler execution's per-site migration series into flows between
  group members.
"""

from .topology import WanTopology
from .flows import FlowResult, MigrationFlow
from .simulator import WanSimulator, flows_from_execution

__all__ = [
    "WanTopology",
    "MigrationFlow",
    "FlowResult",
    "WanSimulator",
    "flows_from_execution",
]
