"""Fluid max-min fair WAN simulation.

Flows share the topology's links with max-min fairness (progressive
filling), the standard fluid model of TCP-fair bulk transfers.  The
simulator is event-driven: between releases and completions, rates are
constant, so it advances directly to the next event instead of ticking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import ExecutionResult
from ..units import TimeGrid
from .flows import FlowResult, MigrationFlow
from .topology import WanTopology


def _max_min_rates(
    flows: Sequence[MigrationFlow], topology: WanTopology
) -> np.ndarray:
    """Max-min fair rates (bytes/s) for the active flows.

    Progressive filling: raise every unfrozen flow's rate uniformly
    until a link saturates, freeze that link's flows, repeat.
    """
    n = len(flows)
    rates = np.zeros(n)
    if n == 0:
        return rates
    # Build constraints: (capacity, member flow indices).
    constraints: list[tuple[float, list[int]]] = []
    sites = set()
    for flow in flows:
        sites.add(flow.src)
        sites.add(flow.dst)
    for site in sites:
        up = [i for i, f in enumerate(flows) if f.src == site]
        down = [i for i, f in enumerate(flows) if f.dst == site]
        capacity = topology.access_bytes_per_second(site)
        if up:
            constraints.append((capacity, up))
        if down:
            constraints.append((capacity, down))
    constraints.append(
        (topology.backbone_bytes_per_second, list(range(n)))
    )

    frozen = np.zeros(n, dtype=bool)
    residual = [capacity for capacity, _ in constraints]
    while not frozen.all():
        # Smallest equal increment that saturates some constraint.
        increment = np.inf
        for c, (capacity, members) in enumerate(constraints):
            active = [i for i in members if not frozen[i]]
            if active:
                increment = min(increment, residual[c] / len(active))
        if not np.isfinite(increment):
            break
        newly_frozen: set[int] = set()
        for c, (capacity, members) in enumerate(constraints):
            active = [i for i in members if not frozen[i]]
            if not active:
                continue
            residual[c] -= increment * len(active)
            if residual[c] <= 1e-9:
                newly_frozen.update(active)
        rates[~frozen] += increment
        if not newly_frozen:
            break
        for i in newly_frozen:
            frozen[i] = True
    return rates


class WanSimulator:
    """Event-driven fluid transfer simulation over a topology.

    Args:
        topology: Link capacities.
        step_seconds: Duration of one scheduler step (flow release
            times are given in steps).
    """

    def __init__(self, topology: WanTopology, step_seconds: float):
        if step_seconds <= 0:
            raise ConfigurationError(
                f"step duration must be positive: {step_seconds}"
            )
        self.topology = topology
        self.step_seconds = step_seconds

    def run(
        self,
        flows: Sequence[MigrationFlow],
        horizon_seconds: float | None = None,
    ) -> list[FlowResult]:
        """Simulate until every flow finishes (or the horizon ends).

        Returns:
            One :class:`FlowResult` per input flow, in input order.
        """
        ids = [flow.flow_id for flow in flows]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate flow ids")
        for flow in flows:
            if flow.src not in self.topology.site_names:
                raise ConfigurationError(f"unknown site {flow.src!r}")
            if flow.dst not in self.topology.site_names:
                raise ConfigurationError(f"unknown site {flow.dst!r}")
        order = sorted(
            range(len(flows)),
            key=lambda i: (flows[i].release_step, flows[i].flow_id),
        )
        remaining = {i: flows[i].size_bytes for i in order}
        release_time = {
            i: flows[i].release_step * self.step_seconds for i in order
        }
        start_time: dict[int, float] = {}
        finish_time: dict[int, float] = {}
        active: list[int] = []
        pending = list(order)
        now = 0.0

        while remaining and (
            horizon_seconds is None or now < horizon_seconds
        ):
            # Admit released flows.
            while pending and release_time[pending[0]] <= now + 1e-12:
                index = pending.pop(0)
                active.append(index)
                start_time[index] = max(now, release_time[index])
            if not active:
                if not pending:
                    break
                now = release_time[pending[0]]
                continue
            rates = _max_min_rates(
                [flows[i] for i in active], self.topology
            )
            # Time to the next completion or release at these rates.
            dt = np.inf
            for position, index in enumerate(active):
                if rates[position] > 0:
                    dt = min(dt, remaining[index] / rates[position])
            if pending:
                dt = min(dt, release_time[pending[0]] - now)
            if horizon_seconds is not None:
                dt = min(dt, horizon_seconds - now)
            if not np.isfinite(dt) or dt <= 0:
                dt = max(dt, 1e-9) if np.isfinite(dt) else (
                    horizon_seconds - now if horizon_seconds else 0.0
                )
                if dt <= 0:
                    break
            # Advance.
            still_active: list[int] = []
            for position, index in enumerate(active):
                moved = rates[position] * dt
                remaining[index] -= moved
                if remaining[index] <= 1e-6:
                    finish_time[index] = now + dt
                    del remaining[index]
                else:
                    still_active.append(index)
            active = still_active
            now += dt

        results: list[FlowResult] = []
        for i, flow in enumerate(flows):
            started = start_time.get(i, release_time[i])
            if i in finish_time:
                results.append(
                    FlowResult(flow, started, finish_time[i], True)
                )
            else:
                results.append(
                    FlowResult(flow, started, float("inf"), False)
                )
        return results


def flows_from_execution(
    execution: ExecutionResult, grid: TimeGrid, min_bytes: float = 1e9
) -> list[MigrationFlow]:
    """Derive WAN flows from a multi-site execution.

    Each step, a site's out-migration bytes become one flow to the
    group member with the most spare capacity at that step (where the
    displaced VMs would land), and its in-migration bytes one flow from
    that member back.  Transfers below ``min_bytes`` are ignored as
    control-plane noise.
    """
    names = [site.name for site in execution.sites]
    if len(names) < 2:
        raise ConfigurationError(
            "need at least two sites to generate WAN flows"
        )
    spare = {
        site.name: site.capacity - site.total_load
        for site in execution.sites
    }
    flows: list[MigrationFlow] = []
    flow_id = 0
    for site in execution.sites:
        out_bytes = site.out_bytes
        in_bytes = site.in_bytes
        for step in range(grid.n):
            total = out_bytes[step] + in_bytes[step]
            if total < min_bytes:
                continue
            others = [n for n in names if n != site.name]
            peer = max(others, key=lambda n: spare[n][step])
            if out_bytes[step] >= min_bytes:
                flows.append(
                    MigrationFlow(
                        flow_id, site.name, peer, float(out_bytes[step]),
                        step,
                    )
                )
                flow_id += 1
            if in_bytes[step] >= min_bytes:
                flows.append(
                    MigrationFlow(
                        flow_id, peer, site.name, float(in_bytes[step]),
                        step,
                    )
                )
                flow_id += 1
    return flows
