"""Migration flows and their completion records."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MigrationFlow:
    """One bulk transfer between two sites.

    Attributes:
        flow_id: Unique id.
        src: Source site name.
        dst: Destination site name.
        size_bytes: Bytes to move.
        release_step: Scheduler step at which the flow becomes ready
            (migrations triggered at step t start transferring at t).
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    release_step: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(
                f"flow {self.flow_id} has identical endpoints {self.src!r}"
            )
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"flow size must be positive: {self.size_bytes}"
            )
        if self.release_step < 0:
            raise ConfigurationError(
                f"negative release step: {self.release_step}"
            )


@dataclass(frozen=True)
class FlowResult:
    """Completion record of one flow.

    Attributes:
        flow: The transferred flow.
        start_seconds: Simulation time the first byte moved.
        finish_seconds: Simulation time the last byte arrived; ``inf``
            when the horizon ended first.
        completed: True if all bytes arrived within the horizon.
    """

    flow: MigrationFlow
    start_seconds: float
    finish_seconds: float
    completed: bool

    @property
    def duration_seconds(self) -> float:
        """Transfer latency from release to completion."""
        return self.finish_seconds - self.start_seconds

    def meets_deadline(self, deadline_seconds: float) -> bool:
        """True if the flow finished within ``deadline_seconds``."""
        return self.completed and self.duration_seconds <= deadline_seconds
