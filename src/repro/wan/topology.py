"""WAN topology: site access links and a shared backbone."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigurationError
from ..units import gbps_to_bytes_per_second


@dataclass(frozen=True)
class WanTopology:
    """A hub-style WAN: every site hangs off a shared backbone.

    A flow from site A to site B is constrained by A's uplink, B's
    downlink (both ``access_gbps``, full-duplex), and the backbone's
    aggregate capacity shared by *all* flows — the paper's "100 sites
    share an aggregate WAN link with 50 terabits/sec capacity" model.

    Attributes:
        site_names: The participating sites.
        access_gbps: Per-site access link capacity (paper: ~200 Gbps
            share per site).
        backbone_gbps: Aggregate backbone capacity across all flows.
        per_site_access: Optional per-site overrides of ``access_gbps``.
    """

    site_names: tuple[str, ...]
    access_gbps: float = 200.0
    backbone_gbps: float = 50_000.0
    per_site_access: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.site_names:
            raise ConfigurationError("topology needs at least one site")
        if len(set(self.site_names)) != len(self.site_names):
            raise ConfigurationError(
                f"duplicate site names: {self.site_names}"
            )
        if self.access_gbps <= 0 or self.backbone_gbps <= 0:
            raise ConfigurationError("link capacities must be positive")
        unknown = set(self.per_site_access) - set(self.site_names)
        if unknown:
            raise ConfigurationError(
                f"access overrides for unknown sites: {sorted(unknown)}"
            )
        for name, gbps in self.per_site_access.items():
            if gbps <= 0:
                raise ConfigurationError(
                    f"access capacity for {name} must be positive: {gbps}"
                )

    def access_bytes_per_second(self, site: str) -> float:
        """Access-link rate of ``site``, bytes/second."""
        if site not in self.site_names:
            raise ConfigurationError(f"unknown site: {site!r}")
        gbps = self.per_site_access.get(site, self.access_gbps)
        return gbps_to_bytes_per_second(gbps)

    @property
    def backbone_bytes_per_second(self) -> float:
        """Backbone aggregate rate, bytes/second."""
        return gbps_to_bytes_per_second(self.backbone_gbps)
