"""Comparing availability strategies against a site's power profile."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..traces import PowerTrace
from .strategies import (
    AppProfile,
    ColdStandby,
    HotStandby,
    MigrationOnDemand,
    StrategyCost,
)


@dataclass(frozen=True)
class DisplacementEvent:
    """One contiguous interval during which the app cannot run locally.

    Attributes:
        start_step: First step below the threshold.
        end_step: First step back above it (exclusive).
    """

    start_step: int
    end_step: int

    @property
    def duration_steps(self) -> int:
        """Steps the app spends displaced."""
        return self.end_step - self.start_step


def displacement_events(
    trace: PowerTrace, threshold: float
) -> list[DisplacementEvent]:
    """Intervals where normalized power sits below ``threshold``.

    The threshold represents the power level at which the app's share
    of the site can no longer be powered — an app occupying the top
    30% of a site's cores is displaced whenever generation falls below
    0.7, for instance.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError(
            f"threshold must be in [0,1]: {threshold}"
        )
    below = trace.values < threshold
    events: list[DisplacementEvent] = []
    start = None
    for step, is_below in enumerate(below):
        if is_below and start is None:
            start = step
        elif not is_below and start is not None:
            events.append(DisplacementEvent(start, step))
            start = None
    if start is not None:
        events.append(DisplacementEvent(start, len(below)))
    return events


def compare_strategies(
    trace: PowerTrace,
    app: AppProfile,
    threshold: float = 0.5,
    strategies: Sequence[object] | None = None,
) -> dict[str, StrategyCost]:
    """Bill every strategy for keeping ``app`` available at this site.

    Args:
        trace: The home site's generation profile.
        app: The application's availability-relevant shape.
        threshold: Normalized power below which the app is displaced.
        strategies: Strategy instances to compare; defaults to hot
            standby, cold standby, and on-demand migration with their
            default parameters.

    Returns:
        Mapping from strategy name to its :class:`StrategyCost`.
    """
    if strategies is None:
        strategies = [HotStandby(), ColdStandby(), MigrationOnDemand()]
    events = displacement_events(trace, threshold)
    horizon_seconds = trace.grid.n * trace.grid.step_seconds
    event_seconds = sum(e.duration_steps for e in events) * (
        trace.grid.step_seconds
    )
    costs: dict[str, StrategyCost] = {}
    for strategy in strategies:
        cost = strategy.cost(
            app, horizon_seconds, len(events), event_seconds
        )
        costs[cost.strategy] = cost
    return costs
