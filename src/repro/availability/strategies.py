"""The three availability mechanisms and their cost models.

Each strategy answers: given an application and a set of power-dip
events at its home site, what does keeping the application available
cost in (a) WAN bytes, (b) downtime, and (c) standby resources held at
a remote site?

- **Hot standby**: a live replica at another site receives a continuous
  stream of state updates (the app's write rate).  Failover is nearly
  instant, but the stream runs all the time and the replica pins cores
  around the clock.
- **Cold standby**: periodic snapshots ship to the remote site.  Cheap
  on the wire and no standing cores, but failover must restore the
  last snapshot and replay/lose the interval since (RPO), giving the
  longest downtime.
- **Migration on demand**: nothing moves until power actually dips;
  then the VM live-migrates out (pre-copy model) and back when power
  returns.  Network cost scales with the *number of events*, which is
  what makes the §3 trade-off interesting: frequently-dipping sites
  favour replication, steady sites favour migration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.livemigration import LiveMigrationModel, estimate_migration
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AppProfile:
    """What the availability strategies need to know about an app.

    Attributes:
        memory_bytes: Working-set size (migration / snapshot volume).
        write_rate_bytes_per_s: State-update rate a hot standby must
            absorb (also the dirty rate seen by live migration).
        cores: Cores the app (and any hot standby) pins.
        boot_seconds: Time to start the app from an image.
    """

    memory_bytes: float
    write_rate_bytes_per_s: float
    cores: int
    boot_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(
                f"memory must be positive: {self.memory_bytes}"
            )
        if self.write_rate_bytes_per_s < 0:
            raise ConfigurationError(
                f"write rate must be >= 0: {self.write_rate_bytes_per_s}"
            )
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive: {self.cores}")
        if self.boot_seconds < 0:
            raise ConfigurationError(
                f"boot time must be >= 0: {self.boot_seconds}"
            )


@dataclass(frozen=True)
class StrategyCost:
    """One strategy's bill over an evaluation horizon.

    Attributes:
        strategy: Label, e.g. ``"hot-standby"``.
        network_bytes: Total WAN traffic.
        downtime_seconds: Application unavailability summed over events.
        standby_core_seconds: Remote core-seconds pinned by replicas.
    """

    strategy: str
    network_bytes: float
    downtime_seconds: float
    standby_core_seconds: float


class HotStandby:
    """Continuous replication to a warm replica.

    Args:
        sync_overhead: Protocol amplification on the write stream
            (acks, metadata, resends); 1.2 means 20% overhead.
    """

    name = "hot-standby"

    def __init__(self, sync_overhead: float = 1.2):
        if sync_overhead < 1.0:
            raise ConfigurationError(
                f"sync overhead must be >= 1: {sync_overhead}"
            )
        self.sync_overhead = sync_overhead

    def cost(
        self,
        app: AppProfile,
        horizon_seconds: float,
        n_events: int,
        event_seconds: float,
    ) -> StrategyCost:
        """Bill: stream all the time, fail over instantly, pin cores."""
        if horizon_seconds < 0:
            raise ConfigurationError(
                f"horizon must be >= 0: {horizon_seconds}"
            )
        # Initial full sync plus the continuous update stream.
        network = app.memory_bytes + (
            app.write_rate_bytes_per_s * horizon_seconds
            * self.sync_overhead
        )
        # Failover is a connection hand-off per event.
        downtime = 1.0 * n_events
        return StrategyCost(
            self.name, network, downtime, app.cores * horizon_seconds
        )


class ColdStandby:
    """Periodic snapshots to a remote image store.

    Args:
        snapshot_interval_s: Time between snapshots (the RPO).
        incremental_fraction: Snapshot size relative to memory after
            the first (changed-block tracking); 1.0 = full images.
    """

    name = "cold-standby"

    def __init__(
        self,
        snapshot_interval_s: float = 3600.0,
        incremental_fraction: float = 0.3,
    ):
        if snapshot_interval_s <= 0:
            raise ConfigurationError(
                f"interval must be positive: {snapshot_interval_s}"
            )
        if not 0.0 < incremental_fraction <= 1.0:
            raise ConfigurationError(
                "incremental fraction must be in (0,1]:"
                f" {incremental_fraction}"
            )
        self.snapshot_interval_s = snapshot_interval_s
        self.incremental_fraction = incremental_fraction

    def cost(
        self,
        app: AppProfile,
        horizon_seconds: float,
        n_events: int,
        event_seconds: float,
    ) -> StrategyCost:
        """Bill: snapshots on schedule; slow failover (boot + lost work)."""
        if horizon_seconds < 0:
            raise ConfigurationError(
                f"horizon must be >= 0: {horizon_seconds}"
            )
        n_snapshots = int(horizon_seconds / self.snapshot_interval_s)
        network = app.memory_bytes  # initial full image
        network += n_snapshots * app.memory_bytes * self.incremental_fraction
        # Per event: boot the image, plus half an interval of lost work
        # on average (the RPO cost counted as downtime-equivalent).
        downtime = n_events * (
            app.boot_seconds + self.snapshot_interval_s / 2.0
        )
        return StrategyCost(self.name, network, downtime, 0.0)


class MigrationOnDemand:
    """Live-migrate out on each power dip, back when power returns.

    Args:
        model: Pre-copy migration model; the app's write rate is used
            as the dirty rate.
    """

    name = "migration"

    def __init__(self, model: LiveMigrationModel | None = None):
        self._base_model = model or LiveMigrationModel()

    def cost(
        self,
        app: AppProfile,
        horizon_seconds: float,
        n_events: int,
        event_seconds: float,
    ) -> StrategyCost:
        """Bill: two migrations per event (out and back), brief blackouts."""
        if horizon_seconds < 0:
            raise ConfigurationError(
                f"horizon must be >= 0: {horizon_seconds}"
            )
        from dataclasses import replace

        model = replace(
            self._base_model,
            dirty_rate_bytes_per_s=app.write_rate_bytes_per_s,
        )
        estimate = estimate_migration(app.memory_bytes, model)
        moves = 2 * n_events  # out at dip start, back at dip end
        network = moves * estimate.total_bytes
        downtime = moves * estimate.downtime_s
        return StrategyCost(self.name, network, downtime, 0.0)
