"""Availability strategies for multi-VB applications (§3).

"Applications ... must rely on either hot/cold standbys using
continuous replication or migration."  This subpackage implements all
three mechanisms with their network, downtime, and spare-resource
costs, plus an evaluator that compares them against a site's power
profile — quantifying the §3 trade-off the paper describes but does
not evaluate.
"""

from .strategies import (
    AppProfile,
    ColdStandby,
    HotStandby,
    MigrationOnDemand,
    StrategyCost,
)
from .evaluator import (
    DisplacementEvent,
    compare_strategies,
    displacement_events,
)

__all__ = [
    "AppProfile",
    "ColdStandby",
    "HotStandby",
    "MigrationOnDemand",
    "StrategyCost",
    "DisplacementEvent",
    "compare_strategies",
    "displacement_events",
]
