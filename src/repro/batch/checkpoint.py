"""Checkpointing policy and the Young-Daly optimum.

A job checkpoints every ``interval_steps`` of its own execution, paying
``overhead_fraction`` of a step's work per checkpoint.  On preemption
it rolls back to the last checkpoint, losing everything since.  The
classic trade-off: frequent checkpoints waste overhead, rare ones risk
large roll-backs; Young's approximation puts the optimum at
``sqrt(2 * checkpoint_cost * MTBF)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing parameters.

    Attributes:
        interval_steps: Steps of useful execution between checkpoints.
        overhead_fraction: Share of one step's work consumed by writing
            a checkpoint (e.g. 0.1 = the job stalls 10% of a step).
    """

    interval_steps: int = 8
    overhead_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.interval_steps < 1:
            raise ConfigurationError(
                f"interval must be >= 1 step: {self.interval_steps}"
            )
        if not 0.0 <= self.overhead_fraction < 1.0:
            raise ConfigurationError(
                f"overhead must be in [0,1): {self.overhead_fraction}"
            )


def young_daly_interval(
    mean_steps_between_preemptions: float, overhead_fraction: float
) -> int:
    """Young's optimal checkpoint interval, in steps.

    ``interval = sqrt(2 * C * MTBF)`` with the checkpoint cost ``C``
    expressed in steps (the overhead fraction of one step).  Clamped
    to at least one step.

    Args:
        mean_steps_between_preemptions: Observed or predicted MTBF of
            the variable-capacity supply, in steps.
        overhead_fraction: Checkpoint cost as a fraction of a step.
    """
    if mean_steps_between_preemptions <= 0:
        raise ConfigurationError(
            "MTBF must be positive:"
            f" {mean_steps_between_preemptions}"
        )
    if overhead_fraction <= 0:
        return 1
    interval = math.sqrt(
        2.0 * overhead_fraction * mean_steps_between_preemptions
    )
    return max(1, round(interval))
