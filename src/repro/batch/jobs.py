"""Batch job objects for the harvest scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class JobState(enum.Enum):
    """Lifecycle of a batch job."""

    WAITING = "waiting"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


@dataclass
class BatchJob:
    """A preemptible unit of work (batch / ML training style).

    Work is measured in core-steps: a job needing ``work_core_steps``
    of 100 with ``cores`` of 4 runs for 25 uninterrupted steps.

    Attributes:
        job_id: Unique id.
        arrival_step: When the job enters the queue.
        cores: Cores the job occupies while running (gang-scheduled).
        work_core_steps: Total core-steps of useful work required.
        state: Lifecycle state.
        progress_core_steps: Useful work completed *and checkpointed or
            still valid* — preemption rolls uncommitted progress back.
        committed_core_steps: Work protected by the latest checkpoint.
        finish_step: Step at which the job completed, if it has.
        preemptions: How many times the job lost its cores.
        lost_core_steps: Work discarded by preemption roll-backs.
        checkpoint_core_steps: Overhead core-steps spent writing
            checkpoints (not useful work).
    """

    job_id: int
    arrival_step: int
    cores: int
    work_core_steps: float
    state: JobState = JobState.WAITING
    progress_core_steps: float = 0.0
    committed_core_steps: float = 0.0
    finish_step: int | None = None
    preemptions: int = 0
    lost_core_steps: float = 0.0
    checkpoint_core_steps: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_step < 0:
            raise ConfigurationError(
                f"negative arrival step: {self.arrival_step}"
            )
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive: {self.cores}")
        if self.work_core_steps <= 0:
            raise ConfigurationError(
                f"work must be positive: {self.work_core_steps}"
            )

    @property
    def remaining_core_steps(self) -> float:
        """Useful work still owed."""
        return max(0.0, self.work_core_steps - self.progress_core_steps)

    @property
    def is_done(self) -> bool:
        """True once all work is complete."""
        return self.state is JobState.FINISHED
