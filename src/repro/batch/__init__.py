"""Degradable (harvest) workloads: batch jobs on variable energy.

§2.3's second application class: "batch or ML training jobs" run as
degradable VMs on the *variable* share of a VB site's energy — the
power above the stable floor that cannot back availability guarantees.
When generation dips, these jobs are preempted in place and lose any
work since their last checkpoint (the paper's §4 cites CheckFreq-style
checkpointing as the enabling mechanism).

This subpackage provides:

- :class:`~repro.batch.jobs.BatchJob` — a unit of preemptible work.
- :class:`~repro.batch.checkpoint.CheckpointPolicy` — periodic
  checkpointing with overhead, plus the Young-Daly optimal interval.
- :class:`~repro.batch.scheduler.HarvestScheduler` — runs a job queue
  on a site's variable capacity and accounts for goodput, checkpoint
  overhead, and work lost to preemptions.
"""

from .jobs import BatchJob, JobState
from .checkpoint import CheckpointPolicy, young_daly_interval
from .scheduler import HarvestResult, HarvestScheduler, variable_capacity_series

__all__ = [
    "BatchJob",
    "JobState",
    "CheckpointPolicy",
    "young_daly_interval",
    "HarvestResult",
    "HarvestScheduler",
    "variable_capacity_series",
]
