"""The harvest scheduler: batch jobs on a VB site's variable capacity.

Each step, the variable capacity is whatever powered cores remain above
the stable reservation.  Waiting jobs are gang-admitted FIFO; when
capacity drops, the most-recently-started jobs are preempted first
(LIFO eviction keeps old jobs converging) and roll back to their last
checkpoint.  The accounting separates useful work, checkpoint overhead,
and work lost to roll-backs — the quantities that decide whether
"degradable VMs absorb the variability" is actually cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..traces import PowerTrace
from .checkpoint import CheckpointPolicy
from .jobs import BatchJob, JobState


def variable_capacity_series(
    trace: PowerTrace,
    total_cores: int,
    stable_reservation_fraction: float = 0.0,
) -> np.ndarray:
    """Cores available to degradable work per step.

    The stable reservation (cores promised to stable VMs, §2.3's
    windowed floor) is served first; batch jobs harvest the rest.
    """
    if total_cores <= 0:
        raise ConfigurationError(
            f"total cores must be positive: {total_cores}"
        )
    if not 0.0 <= stable_reservation_fraction <= 1.0:
        raise ConfigurationError(
            "stable reservation must be in [0,1]:"
            f" {stable_reservation_fraction}"
        )
    powered = np.floor(trace.values * total_cores)
    reserved = stable_reservation_fraction * total_cores
    return np.clip(powered - reserved, 0.0, None)


@dataclass
class HarvestResult:
    """Outcome of running a job queue over variable capacity.

    Attributes:
        jobs: The jobs, with final accounting on each.
        capacity: The variable-capacity series supplied.
        used_cores: Cores actually running batch work per step.
    """

    jobs: list[BatchJob]
    capacity: np.ndarray
    used_cores: np.ndarray

    @property
    def finished_jobs(self) -> list[BatchJob]:
        """Jobs that completed within the horizon."""
        return [job for job in self.jobs if job.is_done]

    @property
    def useful_core_steps(self) -> float:
        """Committed useful work across all jobs."""
        return sum(job.progress_core_steps for job in self.jobs)

    @property
    def lost_core_steps(self) -> float:
        """Work destroyed by preemption roll-backs."""
        return sum(job.lost_core_steps for job in self.jobs)

    @property
    def checkpoint_core_steps(self) -> float:
        """Core-steps burnt writing checkpoints."""
        return sum(job.checkpoint_core_steps for job in self.jobs)

    @property
    def total_preemptions(self) -> int:
        """Preemption events across all jobs."""
        return sum(job.preemptions for job in self.jobs)

    def goodput_fraction(self) -> float:
        """Useful work over all core-steps consumed.

        Consumed = useful + checkpoints + lost; 1.0 means the variable
        energy turned entirely into committed progress.
        """
        consumed = (
            self.useful_core_steps
            + self.checkpoint_core_steps
            + self.lost_core_steps
        )
        if consumed <= 0:
            return 1.0
        return self.useful_core_steps / consumed

    def harvest_utilization(self) -> float:
        """Share of offered variable core-steps actually used."""
        offered = float(self.capacity.sum())
        if offered <= 0:
            return 0.0
        return float(self.used_cores.sum()) / offered

    def mean_completion_steps(self) -> float:
        """Mean queue-to-finish latency of completed jobs."""
        finished = self.finished_jobs
        if not finished:
            return float("nan")
        return float(
            np.mean(
                [job.finish_step - job.arrival_step for job in finished]
            )
        )


class HarvestScheduler:
    """FIFO gang scheduler with LIFO preemption and checkpoint rollback.

    Args:
        policy: Checkpoint policy applied to every job.
    """

    def __init__(self, policy: CheckpointPolicy | None = None):
        self.policy = policy or CheckpointPolicy()

    def run(
        self, jobs: Sequence[BatchJob], capacity: np.ndarray
    ) -> HarvestResult:
        """Execute ``jobs`` against a variable-capacity series.

        Jobs must have distinct ids; their ``arrival_step`` values are
        interpreted on the capacity series' index space.
        """
        capacity = np.asarray(capacity, dtype=float)
        if capacity.ndim != 1:
            raise ConfigurationError(
                f"capacity must be 1-D, got shape {capacity.shape}"
            )
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate job ids")
        queue: list[BatchJob] = []
        running: list[BatchJob] = []  # in start order (oldest first)
        pending = sorted(jobs, key=lambda j: (j.arrival_step, j.job_id))
        arrival_index = 0
        used = np.zeros(len(capacity))
        # Per-job steps executed since the last checkpoint.
        since_checkpoint: dict[int, int] = {}

        for step in range(len(capacity)):
            # Arrivals join the queue.
            while (
                arrival_index < len(pending)
                and pending[arrival_index].arrival_step <= step
            ):
                queue.append(pending[arrival_index])
                arrival_index += 1

            budget = capacity[step]
            running_cores = sum(job.cores for job in running)

            # Preempt newest-first while over budget.
            while running and running_cores > budget:
                victim = running.pop()  # LIFO
                rollback = (
                    victim.progress_core_steps
                    - victim.committed_core_steps
                )
                victim.lost_core_steps += rollback
                victim.progress_core_steps = victim.committed_core_steps
                victim.preemptions += 1
                victim.state = JobState.PREEMPTED
                since_checkpoint.pop(victim.job_id, None)
                running_cores -= victim.cores
                queue.insert(0, victim)

            # Admit FIFO while capacity allows (gang: all-or-nothing,
            # but keep scanning for smaller jobs behind a blocked head).
            still_waiting: list[BatchJob] = []
            for job in queue:
                if job.cores <= budget - running_cores:
                    job.state = JobState.RUNNING
                    running.append(job)
                    running_cores += job.cores
                    since_checkpoint[job.job_id] = 0
                else:
                    still_waiting.append(job)
            queue = still_waiting

            # Execute one step.
            finished: list[BatchJob] = []
            for job in running:
                used[step] += job.cores
                executed = since_checkpoint.get(job.job_id, 0) + 1
                if executed >= self.policy.interval_steps:
                    # Checkpoint step: part of the step goes to the
                    # checkpoint write, the rest to useful work, and
                    # everything so far becomes committed.
                    overhead = job.cores * self.policy.overhead_fraction
                    job.checkpoint_core_steps += overhead
                    job.progress_core_steps += job.cores - overhead
                    job.committed_core_steps = job.progress_core_steps
                    since_checkpoint[job.job_id] = 0
                else:
                    job.progress_core_steps += job.cores
                    since_checkpoint[job.job_id] = executed
                if job.progress_core_steps >= job.work_core_steps - 1e-9:
                    job.progress_core_steps = job.work_core_steps
                    job.committed_core_steps = job.work_core_steps
                    job.state = JobState.FINISHED
                    job.finish_step = step
                    finished.append(job)
                    since_checkpoint.pop(job.job_id, None)
            for job in finished:
                running.remove(job)

        return HarvestResult(list(jobs), capacity, used)
