"""Ablation: hot/cold standby vs migration (§3's mechanism menu).

The paper notes multi-VB applications "must rely on either hot/cold
standbys using continuous replication or migration" and that the right
choice depends on the site's dip pattern.  This bench (a) sweeps dip
frequency on a controlled square-wave site to locate the crossover —
migration wins when displacements are rare, continuous replication wins
when they are frequent — and (b) bills the strategies on real synthetic
sites, whose event structure (long nightly solar outages vs short
frequent wind dips) drives the choice.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.analysis import format_table
from repro.availability import (
    AppProfile,
    compare_strategies,
    displacement_events,
)
from repro.traces import PowerTrace, synthesize_catalog_traces
from repro.units import TimeGrid, grid_days

from conftest import SEED, START

GIB = 2**30


def square_site(n_dips: int, days: int = 30) -> PowerTrace:
    """A site whose power dips ``n_dips`` times over ``days``."""
    n = days * 96
    values = np.full(n, 0.9)
    if n_dips:
        dip_len = 8  # 2-hour dips
        starts = np.linspace(0, n - dip_len - 1, n_dips).astype(int)
        for start in starts:
            values[start : start + dip_len] = 0.05
    grid = TimeGrid(START, timedelta(minutes=15), n)
    return PowerTrace(grid, values, f"square-{n_dips}", "wind")


@pytest.fixture(scope="module")
def site_traces(catalog):
    grid = grid_days(START, 30)
    subset = catalog.subset(["ES-solar", "FI-wind"])
    return synthesize_catalog_traces(subset, grid, seed=SEED + 70)


def test_strategy_crossover(benchmark, report_writer):
    """Dip-frequency sweep: migration -> replication crossover."""
    app = AppProfile(
        memory_bytes=16 * GIB, write_rate_bytes_per_s=1e6, cores=4
    )

    def run():
        results = {}
        for n_dips in (2, 20, 100, 300):
            costs = compare_strategies(
                square_site(n_dips), app, threshold=0.3
            )
            results[n_dips] = {
                name: cost.network_bytes / 1e9
                for name, cost in costs.items()
            }
        return results

    results = benchmark(run)
    rows = [
        [
            n_dips,
            round(costs["hot-standby"]),
            round(costs["cold-standby"]),
            round(costs["migration"]),
            min(costs, key=costs.get),
        ]
        for n_dips, costs in results.items()
    ]
    table = format_table(
        ["Dips / 30 days", "Hot (GB)", "Cold (GB)", "Migration (GB)",
         "Cheapest"],
        rows,
        title="Availability strategy crossover vs dip frequency"
        " (16 GiB app, 1 MB/s writes)",
    )
    report_writer("ablation_availability_crossover", table)

    # Migration cost scales with events; replication is flat.
    assert results[300]["migration"] > results[2]["migration"] * 50
    assert results[300]["hot-standby"] == pytest.approx(
        results[2]["hot-standby"], rel=0.01
    )
    # The crossover exists: rare dips -> migration cheapest; very
    # frequent dips -> a replication strategy wins.
    assert min(results[2], key=results[2].get) == "migration"
    cheapest_at_300 = min(results[300], key=results[300].get)
    assert cheapest_at_300 in ("hot-standby", "cold-standby")


def test_write_rate_flips_replication(benchmark, report_writer):
    """Write-heavy apps make continuous replication prohibitive."""
    site = square_site(200)

    def run():
        results = {}
        for label, rate in (("1 MB/s", 1e6), ("200 MB/s", 200e6)):
            app = AppProfile(
                memory_bytes=16 * GIB,
                write_rate_bytes_per_s=rate,
                cores=4,
            )
            costs = compare_strategies(site, app, threshold=0.3)
            results[label] = {
                name: cost.network_bytes / 1e9
                for name, cost in costs.items()
            }
        return results

    results = benchmark(run)
    rows = [
        [label, round(costs["hot-standby"]), round(costs["migration"])]
        for label, costs in results.items()
    ]
    report_writer(
        "ablation_availability_write_rate",
        format_table(
            ["Write rate", "Hot standby (GB)", "Migration (GB)"],
            rows,
            title="Write rate vs replication viability (200 dips/month)",
        ),
    )
    light, heavy = results["1 MB/s"], results["200 MB/s"]
    # Heavy writes blow up the replication stream far faster than they
    # amplify pre-copy migration.
    assert heavy["hot-standby"] > 50 * light["hot-standby"]
    assert heavy["migration"] < 3 * light["migration"]


def test_event_statistics(benchmark, site_traces, report_writer):
    """Real sites: solar outages are long and nightly, wind dips short."""

    def run():
        stats = {}
        for name, trace in site_traces.items():
            events = displacement_events(trace, 0.3)
            mean_steps = sum(e.duration_steps for e in events) / max(
                len(events), 1
            )
            stats[name] = (len(events), mean_steps)
        return stats

    stats = benchmark(run)
    rows = [
        [name, count, f"{mean_steps * 0.25:.1f} h"]
        for name, (count, mean_steps) in stats.items()
    ]
    table = format_table(
        ["Site", "Events (30 days)", "Mean duration"],
        rows,
        title="Displacement events below 30% capacity",
    )
    report_writer("ablation_availability_events", table)
    # Solar has (at least) a nightly outage, each far longer than a
    # wind dip.
    assert stats["ES-solar"][0] >= 25
    assert stats["ES-solar"][1] > 2 * stats["FI-wind"][1]
