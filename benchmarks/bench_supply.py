"""Benchmarks of the supply-stack plumbing at fleet scale.

Not a paper figure — these gate the supply layer's cost on the paths
every run takes.  The composition point sits inside ``Datacenter.run``
for all runs, supply-backed or not, so the empty-stack (pass-through)
case must stay free: a year-horizon fleet run with an empty
``SupplyStack`` may not regress more than 5% against the legacy
no-supply call (plus a small absolute floor so a loaded runner doesn't
flake on sub-second noise), and must stay result-identical.

The battery closed-loop bench carries a second hard gate: with the
span-kernel dispatch windows and the SoA step kernel
(``engine="soa"``), a battery-backed closed-loop site-year must stay
within 4x of the legacy open-loop event run of the same site —
closed-loop dispatch is stateful at every step, but the per-step cost
is a handful of float operations in a tight loop, not an object-graph
walk.  The open-loop evaluation throughput is recorded without a
gate.

The carbon leg carries the third hard gate: swapping the flat-budget
``GridFirmPower`` for its priced twin (constant-price ``always``-policy
``PricedGridPower``, which is result-identical by the degenerate
contract) must cost at most 10% extra wall clock on a closed-loop
site-year — the cost/carbon ledger is two multiply-adds per import
step, not a second dispatch pass.

Every run writes machine-readable ``BENCH_supply.json`` at the repo
root; CI uploads it as an artifact and fails the bench-smoke job if the
empty-stack gate trips.
"""

from __future__ import annotations

import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import Datacenter, DatacenterConfig
from repro.experiments.defaults import YEAR_START
from repro.supply import (
    BatteryDispatch,
    GridFirmPower,
    PricedGridPower,
    SupplyStack,
)
from repro.traces import synthesize_wind
from repro.units import grid_days
from repro.workload import VMClass, VMRequest, VMType

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON_PATH = REPO_ROOT / "BENCH_supply.json"

_RESULTS: dict[str, dict] = {}

_VM_TYPES = (
    VMType("D2", 2, 8.0),
    VMType("D4", 4, 16.0),
    VMType("D8", 8, 32.0),
)


def _record(name: str, **extra) -> None:
    _RESULTS[name] = extra


def _time_once(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer():
    """Write ``BENCH_supply.json`` after the module's benches ran."""
    yield
    if not _RESULTS:
        return
    cpus = os.cpu_count() or 1
    machine = {
        "cpus": cpus,
        "python": sys.version.split()[0],
    }
    if cpus <= 2:
        # Recorded timings from constrained runners are directional
        # only — treat the intra-run ratios as the signal.
        machine["caveat"] = (
            "recorded on a single-core (or near-single-core) runner; "
            "absolute seconds are pessimistic, compare ratios only"
        )
    payload = {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine,
        "benches": dict(sorted(_RESULTS.items())),
    }
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )
    print(f"\n[supply trajectory written to {BENCH_JSON_PATH}]")


def _fleet_site(site_seed: int, grid) -> tuple:
    """One fleet site-year: three sparse week-scale batch campaigns.

    Mirrors ``bench_sim_sched._fleet_site`` — the shape whose skipped
    steps make the event engine fast, i.e. where added per-run
    composition overhead would show up proportionally largest.
    """
    rng = np.random.default_rng(site_seed)
    trace = synthesize_wind(grid, seed=site_seed, name=f"site{site_seed}")
    requests = []
    vm_id = 0
    for campaign in range(3):
        day = int(rng.integers(campaign * 120, campaign * 120 + 60))
        arrival = day * 96
        for _ in range(400):
            lifetime = int(rng.integers(96, 3 * 96))
            vm_type = _VM_TYPES[rng.integers(0, len(_VM_TYPES))]
            vm_class = (
                VMClass.STABLE if rng.random() < 0.5 else VMClass.DEGRADABLE
            )
            requests.append(
                VMRequest(
                    vm_id,
                    arrival + int(rng.integers(0, 48)),
                    lifetime,
                    vm_type,
                    vm_class,
                )
            )
            vm_id += 1
    return trace, requests


def test_supply_empty_stack_overhead():
    """Year-fleet event run: empty supply stack vs the legacy call.

    The CI gate.  An empty stack is a pass-through — ``Datacenter.run``
    must detect it and take the exact legacy precomputed-budget path,
    so the comparison is plumbing cost only: results identical, wall
    clock within 5% (+0.5s noise floor).
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    sites = [_fleet_site(seed, grid) for seed in range(4)]

    def run(supply):
        return [
            Datacenter(config, trace, supply=supply, supply_mode="open").run(
                requests, engine="event"
            )
            for trace, requests in sites
        ]

    legacy, legacy_s = _time_once(lambda: run(None))
    stacked, stacked_s = _time_once(lambda: run(SupplyStack()))
    for legacy_result, stacked_result in zip(legacy, stacked):
        assert legacy_result.records == stacked_result.records
        assert stacked_result.supply is None
    _record(
        "supply_empty_stack_year_fleet",
        n_steps=grid.n,
        n_sites=len(sites),
        legacy_s=legacy_s,
        empty_stack_s=stacked_s,
        overhead=stacked_s / legacy_s - 1.0,
    )
    assert stacked_s <= legacy_s * 1.05 + 0.5


def test_supply_battery_closed_loop_year():
    """One battery-backed site-year, closed loop, all three engines.

    The second CI gate: the fastest closed-loop path
    (``engine="soa"`` — span-kernel dispatch windows over the SoA step
    kernel) must stay within 4x of the legacy open-loop event run of
    the same site (+0.5s noise floor).  Dispatch is stateful at every
    step, so some multiple is inherent; an order of magnitude would
    mean the per-step work regressed to object-graph walking.  The
    engines stay result-identical.
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    trace, requests = _fleet_site(11, grid)
    stack = SupplyStack(
        (BatteryDispatch(capacity_mwh=800.0, max_power_mw=200.0),)
    )

    _, legacy_s = _time_once(
        lambda: Datacenter(config, trace).run(requests, engine="event")
    )
    soa, soa_s = _time_once(
        lambda: Datacenter(config, trace, supply=stack).run(
            requests, engine="soa"
        )
    )
    event, event_s = _time_once(
        lambda: Datacenter(config, trace, supply=stack).run(
            requests, engine="event"
        )
    )
    dense, dense_s = _time_once(
        lambda: Datacenter(config, trace, supply=stack).run(
            requests, engine="dense"
        )
    )
    assert event.records == dense.records
    assert soa.records == dense.records
    np.testing.assert_array_equal(
        event.supply.soc_mwh, dense.supply.soc_mwh
    )
    np.testing.assert_array_equal(
        soa.supply.soc_mwh, dense.supply.soc_mwh
    )
    _record(
        "supply_battery_closed_loop_year",
        n_steps=grid.n,
        legacy_event_s=legacy_s,
        closed_soa_s=soa_s,
        closed_event_s=event_s,
        closed_dense_s=dense_s,
        closed_soa_vs_legacy=soa_s / legacy_s,
        charge_mwh=event.supply.charge_total_mwh,
        discharge_mwh=event.supply.discharge_total_mwh,
    )
    # Hard gate: a closed-loop battery year on the fastest path stays
    # within 4x of the legacy open-loop event run.
    assert soa_s <= legacy_s * 4.0 + 0.5


def test_supply_priced_grid_closed_loop_year():
    """Carbon leg: priced closed-loop site-year vs the flat budget.

    The third CI gate.  A constant-price ``always``-policy
    ``PricedGridPower`` is the bitwise degenerate twin of
    ``GridFirmPower`` (pinned in ``tests/test_supply_pricing.py``), so
    the runs are result-identical and the comparison isolates the
    ledger cost: accumulating cost/carbon alongside the budget draw
    must stay within 10% of the flat-budget closed-loop year
    (+0.5s noise floor).
    """
    grid = grid_days(YEAR_START, 365)
    config = DatacenterConfig()
    trace, requests = _fleet_site(11, grid)
    price = np.full(grid.n, 42.0)
    carbon = np.full(grid.n, 210.0)

    def stack(grid_component):
        # Battery small enough that wind lulls spill onto the grid —
        # the ledger only costs anything on steps that actually import.
        return SupplyStack(
            (
                BatteryDispatch(capacity_mwh=50.0, max_power_mw=15.0),
                grid_component,
            )
        )

    def run(grid_component):
        return Datacenter(
            config,
            trace,
            supply=stack(grid_component),
            supply_mode="closed",
        ).run(requests, engine="soa")

    flat, flat_s = _time_once(
        lambda: run(GridFirmPower(budget_mwh=2000.0, max_power_mw=50.0))
    )
    priced, priced_s = _time_once(
        lambda: run(
            PricedGridPower(
                budget_mwh=2000.0,
                max_power_mw=50.0,
                price_per_mwh=price,
                carbon_per_mwh=carbon,
                policy="always",
            )
        )
    )
    assert flat.records == priced.records
    np.testing.assert_array_equal(
        flat.supply.grid_import_mwh, priced.supply.grid_import_mwh
    )
    imports = priced.supply.grid_import_total_mwh
    assert imports > 0.0
    assert np.isclose(priced.supply.cost_total_usd, imports * 42.0)
    assert np.isclose(priced.supply.carbon_total_kg, imports * 210.0)
    _record(
        "supply_priced_grid_closed_loop_year",
        n_steps=grid.n,
        flat_budget_s=flat_s,
        priced_s=priced_s,
        priced_vs_flat=priced_s / flat_s,
        grid_import_mwh=imports,
        cost_usd=priced.supply.cost_total_usd,
        carbon_kg=priced.supply.carbon_total_kg,
    )
    # Hard gate: the cost/carbon ledger is within 10% of flat budget.
    assert priced_s <= flat_s * 1.10 + 0.5


def test_supply_open_loop_evaluation_year():
    """Open-loop battery evaluation over a year trace (35,040 steps).

    The per-step Python dispatch loop is the cost of a non-empty
    open-loop stack (empty stacks never enter it); the bench records
    its throughput.  No gate — this is new capability, not a refactor
    of a hot path.
    """
    grid = grid_days(YEAR_START, 365)
    trace = synthesize_wind(grid, seed=5, name="site")
    stack = SupplyStack(
        (BatteryDispatch(capacity_mwh=800.0, max_power_mw=200.0),)
    )
    evaluation, eval_s = _time_once(lambda: stack.evaluate_open_loop(trace))
    assert len(evaluation.delivered) == grid.n
    _record(
        "supply_open_loop_eval_year",
        n_steps=grid.n,
        eval_s=eval_s,
        steps_per_s=grid.n / eval_s,
        charge_mwh=evaluation.charge_total_mwh,
        discharge_mwh=evaluation.discharge_total_mwh,
    )
