"""Performance benchmarks of the library's hot kernels.

Not a paper figure — these keep the substrate fast enough that the
3-month Figure-4 simulation and the Table-1 MIP stay interactive.
pytest-benchmark tracks regressions run-over-run, and every run also
writes a machine-readable ``BENCH_perf_kernels.json`` at the repo root
(per-kernel timings, loop-vs-vectorized speedups, parallel-sweep wall
clocks, CPU count) so the perf trajectory accrues per PR — CI uploads
the file as an artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import Datacenter, DatacenterConfig
from repro.experiments import (
    ArtifactCache,
    Scenario,
    WorkloadSpec,
    run_scenarios,
)
from repro.forecast import NoisyOracleForecaster
from repro.sched import MIPScheduler, problem_from_forecasts
from repro.traces import synthesize_solar, synthesize_wind, synthesize_catalog_traces
from repro.traces.weather import _intraday_ar1_loop, intraday_ar1
from repro.traces.wind import WindConfig, _ou_speed_path_loop, ou_speed_path
from repro.units import grid_days
from repro.workload import generate_vm_requests, workload_matched_to_power

from conftest import SEED, START

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON_PATH = REPO_ROOT / "BENCH_perf_kernels.json"

#: One year of 15-minute steps — the paper's Figure-2b synthesis span.
YEAR_STEPS = 365 * 96

_RESULTS: dict[str, dict] = {}


def _stats_dict(benchmark) -> dict:
    """Extract pytest-benchmark stats defensively (empty when the
    benchmark machinery is disabled)."""
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", None)
    if stats is None:
        return {}
    out = {}
    for field in ("mean", "min", "max", "stddev"):
        value = getattr(stats, field, None)
        if value is not None:
            out[f"{field}_s"] = float(value)
    rounds = getattr(stats, "rounds", None)
    if rounds:
        out["rounds"] = int(rounds)
    return out


def _record(name: str, benchmark=None, **extra) -> None:
    """Stash one kernel's timings for the JSON trajectory file."""
    entry = _stats_dict(benchmark) if benchmark is not None else {}
    entry.update(extra)
    _RESULTS[name] = entry


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def bench_json_writer():
    """Write ``BENCH_perf_kernels.json`` after the module's benches ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "python": sys.version.split()[0],
        },
        "kernels": dict(sorted(_RESULTS.items())),
    }
    BENCH_JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n"
    )
    print(f"\n[perf trajectory written to {BENCH_JSON_PATH}]")


def test_perf_solar_synthesis_year(benchmark):
    grid = grid_days(START, 365)
    trace = benchmark(lambda: synthesize_solar(grid, seed=1))
    assert len(trace) == YEAR_STEPS
    _record("solar_synthesis_year", benchmark)


def test_perf_wind_synthesis_year(benchmark):
    grid = grid_days(START, 365)
    trace = benchmark(lambda: synthesize_wind(grid, seed=1))
    assert len(trace) == YEAR_STEPS
    _record("wind_synthesis_year", benchmark)


def test_perf_ou_kernel_year(benchmark):
    """Vectorized OU wind-speed kernel vs. the reference Python loop."""
    config = WindConfig()
    targets = np.full(YEAR_STEPS, config.mean_speed_ms)

    result = benchmark(
        lambda: ou_speed_path(
            targets, 0.25, config, np.random.default_rng(3)
        )
    )
    assert len(result) == YEAR_STEPS
    loop_seconds = _time_once(
        lambda: _ou_speed_path_loop(
            targets, 0.25, config, np.random.default_rng(3)
        )
    )
    stats = _stats_dict(benchmark)
    speedup = loop_seconds / stats["mean_s"] if stats.get("mean_s") else None
    _record(
        "ou_speed_path_year", benchmark,
        loop_seconds=loop_seconds, speedup_vs_loop=speedup,
    )
    if speedup is not None:
        assert speedup >= 5.0


def test_perf_ar1_kernel_year(benchmark):
    """Vectorized AR(1) weather kernel vs. the reference Python loop."""
    result = benchmark(
        lambda: intraday_ar1(
            YEAR_STEPS, 0.28, 0.45, np.random.default_rng(4)
        )
    )
    assert len(result) == YEAR_STEPS
    loop_seconds = _time_once(
        lambda: _intraday_ar1_loop(
            YEAR_STEPS, 0.28, 0.45, np.random.default_rng(4)
        )
    )
    stats = _stats_dict(benchmark)
    speedup = loop_seconds / stats["mean_s"] if stats.get("mean_s") else None
    _record(
        "intraday_ar1_year", benchmark,
        loop_seconds=loop_seconds, speedup_vs_loop=speedup,
    )
    if speedup is not None:
        assert speedup >= 5.0


def test_perf_parallel_sweep(tmp_path_factory):
    """8-scenario sweep, jobs=1 vs jobs=4, cold caches both times.

    Results must be identical; the wall-clock ratio is the measured
    batch speedup.  The assertion threshold follows the CPUs actually
    available — a single-core container can only record ~1x.
    """
    scenarios = [
        Scenario(
            name=f"bench-sweep-{seed}",
            sites=("BE-wind",),
            grid=grid_days(START, 21),
            workload=WorkloadSpec(kind="vm_requests"),
            seed=seed,
        )
        for seed in range(8)
    ]
    serial_cache = tmp_path_factory.mktemp("sweep-cache-serial")
    parallel_cache = tmp_path_factory.mktemp("sweep-cache-parallel")

    serial = run_scenarios(
        scenarios, jobs=1, backend="serial",
        cache=ArtifactCache(serial_cache),
    )
    parallel = run_scenarios(
        scenarios, jobs=4, backend="process",
        cache=ArtifactCache(parallel_cache),
    )

    assert serial.summaries() == parallel.summaries()
    speedup = serial.fleet.wall_seconds / parallel.fleet.wall_seconds
    cpus = os.cpu_count() or 1
    _record(
        "parallel_sweep_8x21d",
        jobs1_wall_s=serial.fleet.wall_seconds,
        jobs4_wall_s=parallel.fleet.wall_seconds,
        speedup=speedup,
        cpus=cpus,
        workers=sorted({task.worker for task in parallel.fleet.tasks}),
    )
    if cpus >= 4:
        assert speedup >= 2.0
    elif cpus >= 2:
        assert speedup >= 1.2


def test_perf_datacenter_week(benchmark):
    grid = grid_days(START, 7)
    trace = synthesize_wind(grid, seed=2, name="site")
    config = DatacenterConfig()
    workload = workload_matched_to_power(
        float(trace.values.mean()), config.cluster.total_cores
    )
    requests = generate_vm_requests(grid, workload, seed=3)

    def run():
        return Datacenter(config, trace).run(requests)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.records) == grid.n
    _record("datacenter_week", benchmark)


def test_perf_forecast_issue(benchmark):
    grid = grid_days(START, 30)
    trace = synthesize_wind(grid, seed=4, name="site")
    model = NoisyOracleForecaster(seed=5)

    def run():
        return model.forecast(trace, 0, 96 * 7)

    forecast = benchmark(run)
    assert len(forecast) == 96 * 7
    _record("forecast_issue_week", benchmark)


def test_perf_mip_solve(benchmark, catalog, hourly_week_grid):
    from repro.workload import generate_applications

    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(trio, hourly_week_grid, seed=SEED)
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 100, seed=SEED,
        mean_vm_count=30, mean_duration_days=2.0,
    )
    problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps,
        NoisyOracleForecaster(seed=SEED),
    )

    def run():
        return MIPScheduler(time_limit_s=120.0).schedule(problem)

    placement = benchmark.pedantic(run, rounds=2, iterations=1)
    placement.validate_complete(problem)
    _record("mip_solve_week", benchmark)
