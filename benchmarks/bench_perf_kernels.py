"""Performance benchmarks of the library's hot kernels.

Not a paper figure — these keep the substrate fast enough that the
3-month Figure-4 simulation and the Table-1 MIP stay interactive.
pytest-benchmark tracks regressions run-over-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Datacenter, DatacenterConfig
from repro.forecast import NoisyOracleForecaster
from repro.sched import MIPScheduler, problem_from_forecasts
from repro.traces import synthesize_solar, synthesize_wind, synthesize_catalog_traces
from repro.units import grid_days
from repro.workload import generate_vm_requests, workload_matched_to_power

from conftest import SEED, START


def test_perf_solar_synthesis_year(benchmark):
    grid = grid_days(START, 365)
    trace = benchmark(lambda: synthesize_solar(grid, seed=1))
    assert len(trace) == 365 * 96


def test_perf_wind_synthesis_year(benchmark):
    grid = grid_days(START, 365)
    trace = benchmark(lambda: synthesize_wind(grid, seed=1))
    assert len(trace) == 365 * 96


def test_perf_datacenter_week(benchmark):
    grid = grid_days(START, 7)
    trace = synthesize_wind(grid, seed=2, name="site")
    config = DatacenterConfig()
    workload = workload_matched_to_power(
        float(trace.values.mean()), config.cluster.total_cores
    )
    requests = generate_vm_requests(grid, workload, seed=3)

    def run():
        return Datacenter(config, trace).run(requests)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.records) == grid.n


def test_perf_forecast_issue(benchmark):
    grid = grid_days(START, 30)
    trace = synthesize_wind(grid, seed=4, name="site")
    model = NoisyOracleForecaster(seed=5)

    def run():
        return model.forecast(trace, 0, 96 * 7)

    forecast = benchmark(run)
    assert len(forecast) == 96 * 7


def test_perf_mip_solve(benchmark, catalog, hourly_week_grid):
    from repro.workload import generate_applications

    trio = catalog.subset(["NO-solar", "UK-wind", "PT-wind"])
    traces = synthesize_catalog_traces(trio, hourly_week_grid, seed=SEED)
    total_cores = {name: 28000 for name in traces}
    apps = generate_applications(
        hourly_week_grid, 100, seed=SEED,
        mean_vm_count=30, mean_duration_days=2.0,
    )
    problem = problem_from_forecasts(
        hourly_week_grid, traces, total_cores, apps,
        NoisyOracleForecaster(seed=SEED),
    )

    def run():
        return MIPScheduler(time_limit_s=120.0).schedule(problem)

    placement = benchmark.pedantic(run, rounds=2, iterations=1)
    placement.validate_complete(problem)
